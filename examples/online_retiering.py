"""Online re-tiering under workload drift: crossfade, flash crowd, cross-kind.

Run with::

    python examples/online_retiering.py

Three seeded, fully deterministic studies drive the :mod:`repro.online`
subsystem on the paper's Box 1:

1. **Crossfade** -- a 12-epoch smoothstep crossfade from the modified
   (random-I/O, ODS-style) TPC-H workload to the original (scan-heavy,
   analytical) one.  Each epoch the online advisor watches per-object I/O
   telemetry, re-profiles *from those measurements* (the estimator replay
   only runs at the cold start), re-runs DOT warm-started from the deployed
   layout when drift is detected, and re-tiers only when the projected TOC
   saving amortises the migration cost.  The baseline is the same sequence
   of epochs served by the *frozen* epoch-0 layout.
2. **Flash crowd** -- an analytical spike interrupts the transactional
   stream; the predictive controller (trend extrapolation over the
   telemetry window) re-tiers *before* the crowd peaks and is compared
   against the reactive controller on cumulative migration-aware cost.
3. **Cross-kind drift** -- the TPC-C transaction mix (throughput metric)
   crossfades into the TPC-H query stream (response-time metric) over one
   merged catalog; blended epochs mix the two TOC metrics by the phase
   weights.

The script exits non-zero if any acceptance property fails.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.drift import (
    crosskind_drift_experiment,
    online_drift_experiment,
    predictive_drift_experiment,
)
from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.online_retiering")

NUM_EPOCHS = 12
SLA_RATIO = 0.25
SEED = 2024


def any_failed(checks) -> bool:
    """Print one [ok]/[FAIL] line per check; True when any check failed."""
    log.info("\nAcceptance checks:")
    failed = False
    for label, passed in checks.items():
        log.info(f"  [{'ok' if passed else 'FAIL'}] {label}")
        failed = failed or not passed
    return failed


def main() -> None:
    failed = False

    log.info("=" * 72)
    log.info("1. OLTP-to-OLAP crossfade: online vs frozen")
    log.info("=" * 72)
    result = online_drift_experiment(
        scale_factor=4.0,
        num_epochs=NUM_EPOCHS,
        sla_ratio=SLA_RATIO,
        seed=SEED,
    )
    log.info(result["text"])
    summary = result["summary"]
    failed |= any_failed({
        f"ran at least 10 epochs ({summary['num_epochs']})":
            summary["num_epochs"] >= 10,
        "online cumulative TOC (incl. migration) below the frozen layout's":
            summary["online_cumulative_cents"] < summary["frozen_cumulative_cents"],
        f"online PSR >= SLA ratio {SLA_RATIO:g} at every epoch "
        f"(min {summary['online_min_psr']:.2f})":
            summary["online_min_psr"] >= SLA_RATIO,
        "at least one migration actually happened":
            len(summary["retier_epochs"]) >= 1,
        "migration charges stayed below the achieved saving":
            summary["migration_cents"] < summary["saving_cents"],
    })

    log.info("")
    log.info("=" * 72)
    log.info("2. Flash crowd: predictive vs reactive re-tiering")
    log.info("=" * 72)
    predictive = predictive_drift_experiment(seed=SEED, sla_ratio=SLA_RATIO)
    log.info(predictive["text"])
    p_summary = predictive["summary"]
    failed |= any_failed({
        "predictive cumulative TOC beats the reactive controller's":
            p_summary["predictive_cumulative_cents"]
            < p_summary["reactive_cumulative_cents"],
        "at least one re-tier was trend-triggered (before the peak)":
            len(p_summary["predicted_retier_epochs"]) >= 1,
        f"the trend-triggered re-tier fired at or before the spike epoch "
        f"({p_summary['spike_epoch']})":
            all(epoch <= p_summary["spike_epoch"]
                for epoch in p_summary["predicted_retier_epochs"]),
        "both controllers kept every epoch SLA-feasible (PSR 100 %)":
            p_summary["predictive_min_psr"] == 1.0
            and p_summary["reactive_min_psr"] == 1.0,
    })

    log.info("")
    log.info("=" * 72)
    log.info("3. Cross-kind drift: TPC-C transactions fade into TPC-H queries")
    log.info("=" * 72)
    crosskind = crosskind_drift_experiment(seed=SEED, sla_ratio=SLA_RATIO)
    log.info(crosskind["text"])
    c_summary = crosskind["summary"]
    failed |= any_failed({
        f"kind-mixed epochs were actually served ({c_summary['mixed_epochs']})":
            c_summary["mixed_epochs"] >= 2,
        "online blended cost below the frozen layout's":
            c_summary["online_cumulative_cents"]
            < c_summary["frozen_cumulative_cents"],
        "at least one migration actually happened":
            len(c_summary["retier_epochs"]) >= 1,
        f"blended PSR stayed above the SLA ratio {SLA_RATIO:g} "
        f"(min {c_summary['online_min_psr']:.2f})":
            c_summary["online_min_psr"] >= SLA_RATIO,
    })

    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
