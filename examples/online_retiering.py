"""Online re-tiering under workload drift: an OLTP-to-OLAP crossfade.

Run with::

    python examples/online_retiering.py

The example drives the :mod:`repro.online` subsystem over a 12-epoch
smoothstep crossfade from the modified (random-I/O, ODS-style) TPC-H
workload to the original (scan-heavy, analytical) one on the paper's Box 1.
Each epoch the online advisor watches per-object I/O telemetry, re-runs DOT
warm-started from the deployed layout when drift is detected, and re-tiers
only when the projected TOC saving amortises the migration cost.  The
baseline is the same sequence of epochs served by the *frozen* epoch-0
layout.

The run is deterministic: a fixed drift seed and a noise-free estimator
make every printed digit bitwise reproducible.  The script exits non-zero
if any acceptance property fails (online cheaper than frozen net of
migration charges, PSR meeting the SLA at every epoch).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.drift import online_drift_experiment

NUM_EPOCHS = 12
SLA_RATIO = 0.25
SEED = 2024


def main() -> None:
    result = online_drift_experiment(
        scale_factor=4.0,
        num_epochs=NUM_EPOCHS,
        sla_ratio=SLA_RATIO,
        seed=SEED,
    )
    print(result["text"])

    summary = result["summary"]
    checks = {
        f"ran at least 10 epochs ({summary['num_epochs']})":
            summary["num_epochs"] >= 10,
        "online cumulative TOC (incl. migration) below the frozen layout's":
            summary["online_cumulative_cents"] < summary["frozen_cumulative_cents"],
        f"online PSR >= SLA ratio {SLA_RATIO:g} at every epoch "
        f"(min {summary['online_min_psr']:.2f})":
            summary["online_min_psr"] >= SLA_RATIO,
        "at least one migration actually happened":
            len(summary["retier_epochs"]) >= 1,
        "migration charges stayed below the achieved saving":
            summary["migration_cents"] < summary["saving_cents"],
    }
    print("\nAcceptance checks:")
    failed = False
    for label, passed in checks.items():
        print(f"  [{'ok' if passed else 'FAIL'}] {label}")
        failed = failed or not passed
    if failed:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
