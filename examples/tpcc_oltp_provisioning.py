"""OLTP provisioning: throughput-SLA-driven placement for a TPC-C style workload.

Reproduces, at a reduced warehouse count, the paper's Figure 8 / Table 3
experiment: DOT layouts for the TPC-C transaction mix under progressively
looser throughput SLAs, compared with the all-on-one-class layouts.  Run
with::

    python examples/tpcc_oltp_provisioning.py [warehouses]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DOTOptimizer, WorkloadProfiler
from repro.core.simple_layouts import simple_layouts
from repro.dbms import BufferPool, WorkloadEstimator
from repro.experiments.reporting import format_evaluations, format_layout_assignment
from repro.experiments.runner import ExperimentRunner
from repro.sla import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.workloads import tpcc


def main(warehouses: int = 30) -> None:
    catalog = tpcc.build_catalog(warehouses)
    objects = catalog.database_objects()
    workload = tpcc.oltp_workload(warehouses, concurrency=100)
    estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
    system = storage_catalog.box2()
    runner = ExperimentRunner(objects, system, estimator)

    # TPC-C plans never change with the layout (all random I/O), so a single
    # test-run profile on the all-H-SSD baseline suffices -- exactly the
    # pruning the paper applies in Section 4.5.1.
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(
        workload, mode="testrun", patterns=[profiler.single_baseline_pattern()]
    )

    layouts = dict(simple_layouts(objects, system))
    for ratio in (0.5, 0.25, 0.125):
        constraint = runner.resolve_constraint(
            workload, RelativeSLA(ratio, metric="throughput"), mode="estimate"
        )
        outcome = DOTOptimizer(objects, system, estimator, constraint=constraint).optimize(
            workload, profiles
        )
        if outcome.feasible:
            name = f"DOT (SLA {ratio:g})"
            layouts[name] = outcome.layout.renamed(name)
            print(f"\n=== DOT layout at relative SLA {ratio:g} ===")
            print(format_layout_assignment(outcome.layout))
        else:
            print(f"\nRelative SLA {ratio:g}: no feasible layout found")

    evaluations = runner.evaluate_layouts(layouts, workload)
    evaluations.sort(key=lambda evaluation: -(evaluation.transactions_per_minute or 0))
    print("\nMeasured comparison (simulated runs):")
    print(format_evaluations(evaluations, metric_label="tpmC"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
