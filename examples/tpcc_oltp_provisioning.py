"""OLTP provisioning: throughput-SLA-driven placement for a TPC-C style workload.

Reproduces, at a reduced warehouse count, the paper's Figure 8 / Table 3
experiment: DOT layouts for the TPC-C transaction mix under progressively
looser throughput SLAs, compared with the all-on-one-class layouts.  Run
with::

    python examples/tpcc_oltp_provisioning.py [warehouses]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import scenarios
from repro.core import DOTSolver
from repro.core.simple_layouts import simple_layouts
from repro.experiments.reporting import format_evaluations, format_layout_assignment
from repro.experiments.runner import ExperimentRunner
from repro.sla import RelativeSLA

from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.tpcc_oltp_provisioning")


def main(warehouses: int = 30) -> None:
    bundle = scenarios.build("tpcc_fig8", warehouses=warehouses, concurrency=100)
    workload, estimator, objects = bundle.workload, bundle.estimator, bundle.objects
    system = scenarios.box_system("Box 2")
    runner = ExperimentRunner(objects, system, estimator)

    # TPC-C plans never change with the layout (all random I/O), so a single
    # test-run profile on the all-H-SSD baseline suffices -- exactly the
    # pruning the paper applies in Section 4.5.1.  That convention travels
    # with the scenario, so the context profiles itself correctly on demand.
    profiles = None
    layouts = dict(simple_layouts(objects, system))
    for ratio in (0.5, 0.25, 0.125):
        constraint = runner.resolve_constraint(
            workload, RelativeSLA(ratio, metric="throughput"), mode="estimate"
        )
        context = bundle.context(system=system, sla=constraint, profiles=profiles)
        outcome = DOTSolver().solve(context)
        profiles = context.get_profiles()  # reused across SLA ratios
        if outcome.feasible:
            name = f"DOT (SLA {ratio:g})"
            layouts[name] = outcome.layout.renamed(name)
            log.info(f"\n=== DOT layout at relative SLA {ratio:g} ===")
            log.info(format_layout_assignment(outcome.layout))
        else:
            log.info(f"\nRelative SLA {ratio:g}: no feasible layout found")

    evaluations = runner.evaluate_layouts(layouts, workload)
    evaluations.sort(key=lambda evaluation: -(evaluation.transactions_per_minute or 0))
    log.info("\nMeasured comparison (simulated runs):")
    log.info(format_evaluations(evaluations, metric_label="tpmC"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
