"""Parallel pruned exhaustive search: lifting the ES enumeration ceiling.

Run with::

    python examples/parallel_es.py            # 12-object space, a few seconds
    python examples/parallel_es.py --objects 14 --workers 8
    python examples/parallel_es.py --checkpoint /tmp/es.json   # resumable

The paper uses exhaustive search (ES) as the quality yardstick for DOT but
only on reduced object sets, because ``M^N`` enumeration is exponential.
This example runs ES over a TPC-H object set through both the serial batch
path and the sharded, pruned parallel engine
(:mod:`repro.core.parallel_search`), verifies the results are bitwise
identical, and prints the pruning statistics.  Scaling ``--objects`` to 19
with enough ``--workers`` reproduces the full ``3^19`` TPC-H space of
Section 4.4.3 (see EXPERIMENTS.md for wall-clock expectations).

With ``--checkpoint PATH`` the parallel run goes through the engine's
JSON-persisted :class:`~repro.core.parallel_search.SearchProgress`: an
interrupted (or deliberately re-run) invocation picks up from the completed
shards on disk instead of starting over -- the resumability story for
multi-hour full-space runs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import scenarios
from repro.core import ExhaustiveSolver, make_batch_evaluator
from repro.core.parallel_search import (
    EnumerationSpec,
    ParallelEnumerationEngine,
    SearchProgress,
)
from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.parallel_es")


def run_checkpointed(bundle, objects, pinned, system, workers: int, path: Path):
    """Drive the parallel engine directly with a JSON checkpoint on disk."""
    estimator = bundle.fresh_estimator()
    pinned_class = system.cheapest().name
    evaluator = make_batch_evaluator(
        objects, system, estimator, bundle.workload,
        pinned=[(obj, pinned_class) for obj in pinned],
    )
    spec = EnumerationSpec(
        variable_objects=evaluator.variable_objects,
        system=system,
        estimator=estimator,
        workload=bundle.workload,
        pinned=[(obj, pinned_class) for obj in pinned],
        constraint=None,
        cache=evaluator.cache,
    )
    engine = ParallelEnumerationEngine.from_evaluator(evaluator, spec, workers=workers)
    progress = None
    if path.exists():
        progress = SearchProgress.load(path)
        log.info(f"Resuming from {path}: {len(progress.completed)}/{progress.total_shards} "
              f"shards done, incumbent TOC {progress.best_toc:.6g} cents")
    # checkpoint_path persists after every completed shard, so killing the
    # run mid-way loses at most one shard of work.
    progress = engine.run(progress, checkpoint_path=path)
    log.info(f"Checkpoint saved to {path}: {len(progress.completed)}/{progress.total_shards} "
          f"shards, {progress.evaluated:,} layouts evaluated")
    if progress.best_row is not None:
        assignment = evaluator.assignment_for_row(np.array(progress.best_row, dtype=np.int64))
        log.info(f"Best TOC {progress.best_toc:.6g} cents; fast-class objects: "
              + ", ".join(sorted(name for name, cls in assignment.items()
                                 if cls == system.most_expensive().name)))
    return progress


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=12,
                        help="objects to enumerate (19 = the full TPC-H set)")
    parser.add_argument("--workers", type=int, default=2,
                        help="parallel worker processes")
    parser.add_argument("--scale-factor", type=float, default=4.0)
    parser.add_argument("--skip-serial", action="store_true",
                        help="skip the serial reference run (for huge spaces)")
    parser.add_argument("--checkpoint", type=Path, default=None,
                        help="JSON checkpoint path: save progress there and "
                             "resume from it when it exists")
    args = parser.parse_args()

    bundle = scenarios.build("tpch_es_subset", scale_factor=args.scale_factor,
                             repetitions=1)
    # Largest objects first, so growing --objects widens the enumerated set
    # the way the paper's reduced studies did; everything else stays pinned to
    # the cheapest class so every query keeps a full placement.
    by_size = sorted(bundle.objects, key=lambda obj: -obj.size_gb)
    objects = by_size[: args.objects]
    pinned = by_size[args.objects:]

    # A binding fast-class limit gives the capacity bound real work.
    total_gb = sum(obj.size_gb for obj in objects)
    system = scenarios.box_system("Box 1", {"H-SSD": total_gb * 0.4})
    space = len(system) ** len(objects)
    log.info(f"Search space: {len(objects)} objects x {len(system)} classes = "
          f"{space:,} layouts ({len(pinned)} objects pinned to "
          f"{system.cheapest().name})")

    if args.checkpoint is not None:
        run_checkpointed(bundle, objects, pinned, system, args.workers, args.checkpoint)
        return

    def build_solver(**kwargs):
        return ExhaustiveSolver(
            objects=objects, pinned_objects=pinned,
            pinned_class=system.cheapest().name, max_layouts=space, **kwargs,
        )

    def solve(solver):
        # Fresh estimator per arm; sla=None -- the study is unconstrained.
        context = bundle.context(system=system, sla=None,
                                 estimator=bundle.fresh_estimator())
        return solver.solve(context)

    serial = None
    if not args.skip_serial:
        serial = solve(build_solver())
        log.info(f"\nSerial batch ES:   {serial.elapsed_s:8.2f} s, "
              f"{serial.evaluated_layouts:,} layouts evaluated, "
              f"TOC {serial.toc_cents:.6g} cents")

    parallel = solve(build_solver(workers=args.workers))
    stats = parallel.stats.batch
    log.info(f"Parallel ES (x{args.workers}): {parallel.elapsed_s:8.2f} s "
          f"(+ {stats.build_s:.2f} s build/warm-up), "
          f"{parallel.evaluated_layouts:,} layouts evaluated, "
          f"TOC {parallel.toc_cents:.6g} cents")
    log.info(f"Pruning: {stats.pruned_subtrees:,} subtrees "
          f"({stats.pruned_subtree_layouts:,} layouts) by the capacity bound, "
          f"{stats.pruned_chunks:,} chunks ({stats.pruned_chunk_layouts:,} layouts) "
          f"by the incumbent-TOC bound "
          f"({100.0 * stats.pruned_layouts / space:.1f} % of the space)")

    if serial is not None:
        identical = (parallel.layout == serial.layout
                     and parallel.toc_cents == serial.toc_cents)
        log.info(f"\nBitwise-identical to the serial search: {identical}")
        if not identical:
            raise SystemExit("parallel ES diverged from the serial reference")
        if serial.elapsed_s > 0:
            log.info(f"Speedup vs serial enumeration: "
                  f"{serial.elapsed_s / parallel.elapsed_s:.2f}x")


if __name__ == "__main__":
    main()
