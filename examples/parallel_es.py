"""Parallel pruned exhaustive search: lifting the ES enumeration ceiling.

Run with::

    python examples/parallel_es.py            # 12-object space, a few seconds
    python examples/parallel_es.py --objects 14 --workers 8

The paper uses exhaustive search (ES) as the quality yardstick for DOT but
only on reduced object sets, because ``M^N`` enumeration is exponential.
This example runs ES over a TPC-H object set through both the serial batch
path and the sharded, pruned parallel engine
(:mod:`repro.core.parallel_search`), verifies the results are bitwise
identical, and prints the pruning statistics.  Scaling ``--objects`` to 19
with enough ``--workers`` reproduces the full ``3^19`` TPC-H space of
Section 4.4.3 (see EXPERIMENTS.md for wall-clock expectations).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.exhaustive import ExhaustiveSearch
from repro.dbms import BufferPool, WorkloadEstimator
from repro.workloads import tpch


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=12,
                        help="objects to enumerate (19 = the full TPC-H set)")
    parser.add_argument("--workers", type=int, default=2,
                        help="parallel worker processes")
    parser.add_argument("--scale-factor", type=float, default=4.0)
    parser.add_argument("--skip-serial", action="store_true",
                        help="skip the serial reference run (for huge spaces)")
    args = parser.parse_args()

    catalog = tpch.build_catalog(scale_factor=args.scale_factor)
    workload = tpch.es_subset_workload(args.scale_factor, repetitions=1)
    all_objects = catalog.database_objects()
    # Largest objects first, so growing --objects widens the enumerated set
    # the way the paper's reduced studies did; everything else stays pinned to
    # the cheapest class so every query keeps a full placement.
    by_size = sorted(all_objects, key=lambda obj: -obj.size_gb)
    objects = by_size[: args.objects]
    pinned = by_size[args.objects:]
    from repro.storage import catalog as storage_catalog

    system = storage_catalog.box1()
    # A binding fast-class limit gives the capacity bound real work.
    total_gb = sum(obj.size_gb for obj in objects)
    system = system.with_capacity_limits({"H-SSD": total_gb * 0.4})
    space = len(system) ** len(objects)
    print(f"Search space: {len(objects)} objects x {len(system)} classes = "
          f"{space:,} layouts ({len(pinned)} objects pinned to "
          f"{system.cheapest().name})")

    def build_search(**kwargs):
        estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
        return ExhaustiveSearch(objects, system, estimator, max_layouts=space,
                                pinned_objects=pinned, **kwargs)

    serial = None
    if not args.skip_serial:
        search = build_search()
        serial = search.search(workload)
        print(f"\nSerial batch ES:   {serial.elapsed_s:8.2f} s, "
              f"{serial.evaluated_layouts:,} layouts evaluated, "
              f"TOC {serial.toc_cents:.6g} cents")

    search = build_search(workers=args.workers)
    parallel = search.search(workload)
    stats = search.last_batch_stats
    print(f"Parallel ES (x{args.workers}): {parallel.elapsed_s:8.2f} s "
          f"(+ {stats.build_s:.2f} s build/warm-up), "
          f"{parallel.evaluated_layouts:,} layouts evaluated, "
          f"TOC {parallel.toc_cents:.6g} cents")
    print(f"Pruning: {stats.pruned_subtrees:,} subtrees "
          f"({stats.pruned_subtree_layouts:,} layouts) by the capacity bound, "
          f"{stats.pruned_chunks:,} chunks ({stats.pruned_chunk_layouts:,} layouts) "
          f"by the incumbent-TOC bound "
          f"({100.0 * stats.pruned_layouts / space:.1f} % of the space)")

    if serial is not None:
        identical = (parallel.layout == serial.layout
                     and parallel.toc_cents == serial.toc_cents)
        print(f"\nBitwise-identical to the serial search: {identical}")
        if not identical:
            raise SystemExit("parallel ES diverged from the serial reference")
        if serial.elapsed_s > 0:
            print(f"Speedup vs serial enumeration: "
                  f"{serial.elapsed_s / parallel.elapsed_s:.2f}x")


if __name__ == "__main__":
    main()
