"""Server purchase planning: the generalized provisioning problem (Section 5.1).

Given several candidate storage configurations (the paper's Box 1 and Box 2
plus a hypothetical box exposing all five storage classes), run the DOT
pipeline for each and pick the configuration + layout with the lowest TOC
that still meets the SLA.  Also demonstrates the discrete-sized storage cost
model of Section 5.2.  Run with::

    python examples/server_purchase_planning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import DOTOptimizer, WorkloadProfiler
from repro.core.discrete_cost import DiscreteCostModel
from repro.core.provisioning import GeneralizedProvisioner, ProvisioningOption
from repro.dbms import BufferPool, WorkloadEstimator
from repro.sla import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.workloads import tpch


def main(scale_factor: float = 2.0) -> None:
    catalog = tpch.build_catalog(scale_factor)
    objects = catalog.database_objects()
    workload = tpch.original_workload(scale_factor, repetitions=1)
    estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))

    # --- Section 5.1: which box should we buy? ---------------------------
    options = [
        ProvisioningOption("Box 1", storage_catalog.box1(), "HDD RAID 0 + L-SSD + H-SSD"),
        ProvisioningOption("Box 2", storage_catalog.box2(), "HDD + L-SSD RAID 0 + H-SSD"),
        ProvisioningOption("All classes", storage_catalog.full_system(),
                           "hypothetical box exposing all five classes"),
    ]
    provisioner = GeneralizedProvisioner(objects, estimator)
    decision = provisioner.decide(workload, options, sla=RelativeSLA(0.5))
    print(decision.describe())
    if decision.feasible:
        print(f"\nChosen configuration: {decision.chosen.name} "
              f"({decision.chosen.description})")
        print(decision.recommendation.layout.describe())

    # --- Section 5.2: discrete-sized storage cost model ------------------
    print("\nDiscrete-sized cost model (alpha sweep on Box 1):")
    system = storage_catalog.box1()
    profiler = WorkloadProfiler(objects, system, estimator)
    profiles = profiler.profile(workload, mode="estimate")
    for alpha in (0.0, 0.5, 1.0):
        dot = DOTOptimizer(objects, system, estimator,
                           cost_override=DiscreteCostModel(alpha=alpha))
        outcome = dot.optimize(workload, profiles)
        classes_used = sum(1 for _, gb in outcome.layout.space_used_gb().items() if gb > 0)
        print(f"  alpha={alpha:.1f}: TOC {outcome.toc_cents:.5f} cents, "
              f"{classes_used} storage classes in use")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
