"""Server purchase planning: the generalized provisioning problem (Section 5.1).

Given several candidate storage configurations (the paper's Box 1 and Box 2
plus a hypothetical box exposing all five storage classes), run the DOT
pipeline for each and pick the configuration + layout with the lowest TOC
that still meets the SLA.  Also demonstrates the discrete-sized storage cost
model of Section 5.2.  Run with::

    python examples/server_purchase_planning.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import scenarios
from repro.core import DOTSolver
from repro.core.discrete_cost import DiscreteCostModel
from repro.core.provisioning import GeneralizedProvisioner, ProvisioningOption
from repro.sla import RelativeSLA

from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.server_purchase_planning")


def main(scale_factor: float = 2.0) -> None:
    bundle = scenarios.build("tpch_original", scale_factor=scale_factor, repetitions=1)
    workload, estimator, objects = bundle.workload, bundle.estimator, bundle.objects

    # --- Section 5.1: which box should we buy? ---------------------------
    options = [
        ProvisioningOption("Box 1", scenarios.box_system("Box 1"),
                           "HDD RAID 0 + L-SSD + H-SSD"),
        ProvisioningOption("Box 2", scenarios.box_system("Box 2"),
                           "HDD + L-SSD RAID 0 + H-SSD"),
        ProvisioningOption("All classes", scenarios.box_system("All classes"),
                           "hypothetical box exposing all five classes"),
    ]
    provisioner = GeneralizedProvisioner(objects, estimator)
    decision = provisioner.decide(workload, options, sla=RelativeSLA(0.5))
    log.info(decision.describe())
    if decision.feasible:
        log.info(f"\nChosen configuration: {decision.chosen.name} "
              f"({decision.chosen.description})")
        log.info(decision.recommendation.layout.describe())

    # --- Section 5.2: discrete-sized storage cost model ------------------
    log.info("\nDiscrete-sized cost model (alpha sweep on Box 1):")
    system = scenarios.box_system("Box 1")
    profiles = None
    for alpha in (0.0, 0.5, 1.0):
        # sla=None: the alpha sweep runs unconstrained, as in Section 5.2.
        context = bundle.context(system=system, sla=None, profiles=profiles,
                                 cost_override=DiscreteCostModel(alpha=alpha))
        outcome = DOTSolver().solve(context)
        profiles = context.get_profiles()  # shared across the alpha sweep
        classes_used = sum(1 for _, gb in outcome.layout.space_used_gb().items() if gb > 0)
        log.info(f"  alpha={alpha:.1f}: TOC {outcome.toc_cents:.5f} cents, "
              f"{classes_used} storage classes in use")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
