"""Fleet walkthrough: the fault-tolerant multi-tenant advisor service.

Run with::

    python examples/fleet_service.py

One seeded, fully deterministic session of :mod:`repro.service` end to end:

1. **Register a fleet** -- four tenants with different drift shapes
   (crossfade, flash crowd, steady) and one tenant on a deliberately tiny
   wall-clock budget, all advised by one shared breaker-guarded solver.
2. **Storm it** -- a seeded chaos plan (`FaultPlan.chaos_service`) injects
   worker kills, an overload burst and slow solves into the tick loop while
   the service schedules tenants fair-share under admission control.
3. **Crash it** -- after a few ticks the daemon is hard-stopped mid-run
   (journal closed, process state dropped on the floor).
4. **Recover it** -- :meth:`AdvisorService.recover` reloads the checksummed
   write-ahead journal and the latest snapshot, re-executes every committed
   epoch through the same code path while verifying each replayed layout
   bitwise against the journaled assignment, and resumes the tick clock so
   the same fault plan continues where it stopped.
5. **Verify convergence** -- the resumed run must land every unbudgeted
   tenant on the bitwise-identical final layout of a fault-free twin run,
   with every kill/shed/replay in the tenant provenance trail and the
   counts in the ``service.*`` metrics.

The script exits non-zero if any acceptance property fails.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.resilience import FaultInjector, FaultPlan
from repro.service import AdvisorService, ServiceConfig, TenantSpec

obs_log.configure()
log = obs_log.get_logger("examples.fleet_service")

SEED = 2026
NUM_EPOCHS = 4
RESTART_AFTER_TICKS = 3
CONFIG = ServiceConfig(workers=2, queue_depth=4)


def build_fleet(state_dir, injector=None):
    """A four-tenant drifting fleet plus one budget-capped tenant."""
    service = AdvisorService(state_dir, CONFIG, fault_injector=injector)
    service.register(TenantSpec(tenant_id="erp", num_epochs=NUM_EPOCHS,
                                drift="crossfade"))
    service.register(TenantSpec(tenant_id="analytics", num_epochs=NUM_EPOCHS,
                                drift="flash"))
    service.register(TenantSpec(tenant_id="archive", num_epochs=NUM_EPOCHS,
                                drift="steady"))
    service.register(TenantSpec(tenant_id="freeloader", num_epochs=NUM_EPOCHS,
                                drift="steady", budget_s=1e-4))
    return service


def any_failed(checks) -> bool:
    failed = False
    for label, ok in checks.items():
        log.info("%s %s", "PASS" if ok else "FAIL", label)
        failed |= not ok
    return failed


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="fleet-service-"))
    try:
        # -- the fault-free twin ---------------------------------------
        clean = build_fleet(root / "clean")
        clean_report = clean.run(max_ticks=64)
        clean.shutdown()
        log.info("fault-free run: %d ticks, %d epochs committed",
                 clean_report.ticks, clean_report.completed_epochs)

        # -- the stormed run, hard-stopped mid-flight ------------------
        plan = FaultPlan.chaos_service(
            seed=SEED, num_ticks=16, kill_fraction=0.2, kill_count=1,
            burst_fraction=0.2, burst_slots=4, slow_fraction=0.1, slow_s=0.001,
        )
        state = root / "stormed"
        stormed = build_fleet(state, injector=FaultInjector(plan))
        for _ in range(RESTART_AFTER_TICKS):
            stormed.tick()
        stormed.save_snapshot()
        stormed.journal.close()
        log.info("hard stop at tick %d (%d epochs committed, %d kills so far)",
                 stormed.ticks, stormed.completed_epochs, stormed.supervisor.kills)

        # -- recovery: journal replay + bitwise verification -----------
        resumed = AdvisorService.recover(state, CONFIG,
                                         fault_injector=FaultInjector(plan))
        chaos_report = resumed.run(max_ticks=64)
        resumed.shutdown()
        log.info("recovered run: %d epochs replayed, %d total kills, sheds %s",
                 chaos_report.replayed_epochs,
                 chaos_report.worker_kills, chaos_report.shed)

        # -- acceptance ------------------------------------------------
        clean_layouts = clean_report.layouts()
        chaos_layouts = chaos_report.layouts()
        provenance = [line for status in chaos_report.tenants.values()
                      for line in status.provenance]
        snapshot = obs_metrics.get_metrics().snapshot()
        freeloader = chaos_report.tenants["freeloader"]
        failed = any_failed({
            "every tenant finished in both runs":
                clean_report.all_done and chaos_report.all_done,
            "chaos + restart converged to the bitwise fault-free layouts":
                chaos_layouts == clean_layouts,
            "the storm actually injected worker kills":
                chaos_report.worker_kills >= 1,
            "killed workers were restarted with backoff":
                chaos_report.worker_restarts >= 1,
            "recovery replayed the journaled epochs":
                chaos_report.replayed_epochs >= 1,
            "kills and replays left tenant provenance":
                any("killed holding" in line for line in provenance)
                and any("recovery: replayed" in line for line in provenance),
            "the budget-capped tenant was stopped with a reasoned shed":
                freeloader.exhausted
                and chaos_report.shed.get("budget_exhausted", 0) >= 1,
            "service.* metrics carry the session counts":
                snapshot.get("service.recoveries", {}).get("value") == 1
                and "service.completed_epochs" in snapshot,
        })
        if failed:
            raise SystemExit(1)
        log.info("fleet service walkthrough: all acceptance properties hold")
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    main()
