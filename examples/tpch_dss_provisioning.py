"""DSS provisioning: how the SLA and workload shape change DOT's layouts.

Reproduces, at a reduced scale factor, the comparison behind the paper's
Figures 3-7: the original (sequential-read heavy) and modified (random-read
heavy) TPC-H workloads, each under a tight (0.5) and a loose (0.25) relative
SLA.  Run with::

    python examples/tpch_dss_provisioning.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import scenarios
from repro.core import ProvisioningAdvisor
from repro.experiments.reporting import format_layout_assignment
from repro.sla import RelativeSLA

from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.tpch_dss_provisioning")


def main(scale_factor: float = 2.0) -> None:
    # Both workload flavours come from the scenario registry (each build
    # constructs its own catalog; queries reference objects by name, so the
    # original bundle's estimator serves both workloads).
    original = scenarios.build("tpch_original", scale_factor=scale_factor, repetitions=1)
    modified = scenarios.build("tpch_modified", scale_factor=scale_factor, repetitions=4)
    objects = original.objects
    estimator = original.estimator
    system = scenarios.box_system("Box 2")

    workloads = {
        "original (SR-dominated)": original.workload,
        "modified (mixed random/sequential)": modified.workload,
    }
    for workload_label, workload in workloads.items():
        for ratio in (0.5, 0.25):
            advisor = ProvisioningAdvisor(objects, system, estimator)
            recommendation = advisor.recommend(workload, sla=RelativeSLA(ratio))
            report = recommendation.measured_report
            hssd_gb = recommendation.layout.space_used_gb().get("H-SSD", 0.0)
            log.info(f"\n=== {workload_label}, relative SLA {ratio} ===")
            log.info(f"TOC: {report.toc_cents:.4f} cents/run, "
                  f"storage: {report.layout_cost_cents_per_hour:.4f} c/h, "
                  f"PSR: {recommendation.psr * 100:.0f}%, "
                  f"H-SSD usage: {hssd_gb:.2f} GB")
            log.info(format_layout_assignment(recommendation.layout))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
