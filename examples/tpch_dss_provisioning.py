"""DSS provisioning: how the SLA and workload shape change DOT's layouts.

Reproduces, at a reduced scale factor, the comparison behind the paper's
Figures 3-7: the original (sequential-read heavy) and modified (random-read
heavy) TPC-H workloads, each under a tight (0.5) and a loose (0.25) relative
SLA.  Run with::

    python examples/tpch_dss_provisioning.py [scale_factor]
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ProvisioningAdvisor
from repro.dbms import BufferPool, WorkloadEstimator
from repro.experiments.reporting import format_layout_assignment
from repro.sla import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.workloads import tpch


def main(scale_factor: float = 2.0) -> None:
    catalog = tpch.build_catalog(scale_factor)
    objects = catalog.database_objects()
    estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
    system = storage_catalog.box2()

    workloads = {
        "original (SR-dominated)": tpch.original_workload(scale_factor, repetitions=1),
        "modified (mixed random/sequential)": tpch.modified_workload(scale_factor, repetitions=4),
    }
    for workload_label, workload in workloads.items():
        for ratio in (0.5, 0.25):
            advisor = ProvisioningAdvisor(objects, system, estimator)
            recommendation = advisor.recommend(workload, sla=RelativeSLA(ratio))
            report = recommendation.measured_report
            hssd_gb = recommendation.layout.space_used_gb().get("H-SSD", 0.0)
            print(f"\n=== {workload_label}, relative SLA {ratio} ===")
            print(f"TOC: {report.toc_cents:.4f} cents/run, "
                  f"storage: {report.layout_cost_cents_per_hour:.4f} c/h, "
                  f"PSR: {recommendation.psr * 100:.0f}%, "
                  f"H-SSD usage: {hssd_gb:.2f} GB")
            print(format_layout_assignment(recommendation.layout))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 2.0)
