"""Quickstart: recommend a TOC-minimising layout for a small TPC-H workload.

Run with::

    python examples/quickstart.py

The example builds a scale-factor-2 TPC-H database, the paper's Box 1 storage
system (HDD RAID 0 + L-SSD + H-SSD), and asks the DOT advisor for a layout
that may be at most 2x slower than keeping everything on the high-end SSD
(relative SLA 0.5).  It then compares the recommendation against the simple
all-on-one-class layouts.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core import ProvisioningAdvisor
from repro.core.simple_layouts import simple_layouts
from repro.dbms import BufferPool, WorkloadEstimator
from repro.experiments.reporting import format_evaluations
from repro.experiments.runner import ExperimentRunner
from repro.sla import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.workloads import tpch


def main() -> None:
    # 1. The database: schema + statistics (no real rows are needed).
    catalog = tpch.build_catalog(scale_factor=2)
    objects = catalog.database_objects()
    print(f"Database: {catalog.name}, {len(objects)} objects, "
          f"{catalog.total_size_gb():.1f} GB")

    # 2. The workload: the 22 original TPC-H templates, one repetition.
    workload = tpch.original_workload(scale_factor=2, repetitions=1)
    print(f"Workload: {workload.description}")

    # 3. The storage system: the paper's Box 1.
    system = storage_catalog.box1()
    estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))

    # 4. Ask DOT for a layout under a relative SLA of 0.5.
    advisor = ProvisioningAdvisor(objects, system, estimator)
    recommendation = advisor.recommend(workload, sla=RelativeSLA(0.5))
    print("\n" + recommendation.describe())

    # 5. Compare against the simple layouts.
    runner = ExperimentRunner(objects, system, estimator)
    layouts = dict(simple_layouts(objects, system))
    layouts["DOT"] = recommendation.layout
    evaluations = runner.evaluate_layouts(layouts, workload, sla=RelativeSLA(0.5))
    evaluations.sort(key=lambda evaluation: evaluation.toc_cents)
    print("\nMeasured comparison (simulated runs):")
    print(format_evaluations(evaluations, metric_label="Response time (s)"))


if __name__ == "__main__":
    main()
