"""Quickstart: recommend a TOC-minimising layout for a small TPC-H workload.

Run with::

    python examples/quickstart.py

The example builds a scale-factor-2 TPC-H database, the paper's Box 1 storage
system (HDD RAID 0 + L-SSD + H-SSD), and asks the DOT advisor for a layout
that may be at most 2x slower than keeping everything on the high-end SSD
(relative SLA 0.5).  It then compares the recommendation against the simple
all-on-one-class layouts.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import scenarios
from repro.core import ProvisioningAdvisor
from repro.core.simple_layouts import simple_layouts
from repro.experiments.reporting import format_evaluations
from repro.experiments.runner import ExperimentRunner
from repro.sla import RelativeSLA

from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.quickstart")


def main() -> None:
    # 1 + 2. Database and workload: one scenario-registry lookup builds the
    # TPC-H catalog (schema + statistics, no real rows needed), the 22
    # original query templates and a ready-to-use workload estimator.
    bundle = scenarios.build("tpch_original", scale_factor=2.0, repetitions=1)
    catalog, workload, estimator = bundle.catalog, bundle.workload, bundle.estimator
    objects = bundle.objects
    log.info(f"Database: {catalog.name}, {len(objects)} objects, "
          f"{catalog.total_size_gb():.1f} GB")
    log.info(f"Workload: {workload.description}")

    # 3. The storage system: the paper's Box 1.
    system = scenarios.box_system("Box 1")

    # 4. Ask DOT for a layout under a relative SLA of 0.5.
    advisor = ProvisioningAdvisor(objects, system, estimator)
    recommendation = advisor.recommend(workload, sla=RelativeSLA(0.5))
    log.info("\n" + recommendation.describe())

    # 5. Compare against the simple layouts.
    runner = ExperimentRunner(objects, system, estimator)
    layouts = dict(simple_layouts(objects, system))
    layouts["DOT"] = recommendation.layout
    evaluations = runner.evaluate_layouts(layouts, workload, sla=RelativeSLA(0.5))
    evaluations.sort(key=lambda evaluation: evaluation.toc_cents)
    log.info("\nMeasured comparison (simulated runs):")
    log.info(format_evaluations(evaluations, metric_label="Response time (s)"))


if __name__ == "__main__":
    main()
