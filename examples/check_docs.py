"""Docs smoke check: every ``python`` code fence in the docs must execute.

Run with::

    python examples/check_docs.py [README.md EXPERIMENTS.md ...]

The CI docs job runs this against ``README.md`` and ``EXPERIMENTS.md``:
each fenced ```` ```python ```` block is extracted and executed in a fresh
namespace (doctest-style -- the block must run top to bottom without
raising), so the quickstart snippets shown to new users can never rot.
Shell fences are checked only for referencing files that exist.  Exits
non-zero listing every failing block.
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs import log as obs_log

obs_log.configure()
log = obs_log.get_logger("examples.check_docs")

FENCE = re.compile(r"^```(\w*)\s*$")

#: Commands a shell fence may reference; checked for file existence only.
SH_FILE = re.compile(r"(?:python|pytest)\s+(?:-m\s+pytest\s+)?([\w./-]+\.py)")


def extract_fences(path: Path):
    """Yield ``(language, first_line_number, code)`` for every code fence.

    Raises :class:`ValueError` on an unterminated fence -- a missing (or
    stray) ``` line flips the open/close state for the rest of the file and
    would otherwise silently swallow the very snippets this check guards.
    """
    language = None
    start = 0
    lines: list[str] = []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        match = FENCE.match(line)
        if match is None:
            if language is not None:
                lines.append(line)
            continue
        if language is None:
            language = match.group(1) or "text"
            start = number + 1
            lines = []
        else:
            yield language, start, "\n".join(lines)
            language = None
    if language is not None:
        raise ValueError(
            f"{path.name}: code fence opened at line {start - 1} is never closed"
        )


def check_python(code: str) -> str | None:
    """Execute one python fence in a fresh namespace; returns the error."""
    try:
        exec(compile(code, "<docs fence>", "exec"), {"__name__": "__docs__"})
    except Exception:
        return traceback.format_exc(limit=3)
    return None


def check_sh(code: str) -> str | None:
    """A shell fence may only reference scripts reachable from its own cwd.

    ``cd`` lines are tracked (relative to the repo root, where every
    documented command starts), so a fence saying ``cd benchmarks`` may
    reference bench files bare -- but a repo-root fence naming a script
    without its directory prefix is flagged, because a user copy-pasting it
    would hit "No such file or directory".
    """
    cwd = ROOT
    missing = []
    for line in code.splitlines():
        cd_match = re.match(r"^\s*cd\s+(\S+)", line)
        if cd_match:
            cwd = (cwd / cd_match.group(1)).resolve()
            continue
        missing.extend(
            candidate for candidate in SH_FILE.findall(line)
            if not (cwd / candidate).exists()
        )
    if missing:
        return f"referenced files do not exist: {', '.join(missing)}"
    return None


def main(argv: list[str]) -> int:
    documents = [Path(arg) for arg in argv] or [ROOT / "README.md", ROOT / "EXPERIMENTS.md"]
    failures = 0
    checked = 0
    for document in documents:
        try:
            for language, line, code in extract_fences(document):
                if language == "python":
                    error = check_python(code)
                elif language == "sh":
                    error = check_sh(code)
                else:
                    continue
                checked += 1
                label = f"{document.name}:{line} [{language}]"
                if error is None:
                    log.info(f"ok    {label}")
                else:
                    failures += 1
                    log.info(f"FAIL  {label}\n{error}")
        except ValueError as malformed:
            failures += 1
            log.info(f"FAIL  {malformed}")
    log.info(f"\n{checked} fenced blocks checked, {failures} failing")
    return 1 if failures or not checked else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
