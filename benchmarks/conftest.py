"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at (or near)
paper scale, asserts the qualitative shape of the result, and attaches the
rendered text table to the benchmark's ``extra_info`` so the numbers can be
compared against the paper after a run (see EXPERIMENTS.md).
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
