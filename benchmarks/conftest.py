"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at (or near)
paper scale, asserts the qualitative shape of the result, and attaches the
rendered text table to the benchmark's ``extra_info`` so the numbers can be
compared against the paper after a run (see EXPERIMENTS.md).

Besides the human-readable tables, each benchmark emits a machine-readable
``BENCH_<name>.json`` into ``benchmarks/out/`` (or ``$BENCH_JSON_DIR``) via
:func:`write_bench_json`, so successive runs accumulate a perf trajectory
(elapsed seconds, evaluated layouts, speedups, TOCs) that scripts and CI
artifact consumers can diff without scraping stdout.  Fresh JSONs never land
in ``benchmarks/`` itself -- only the curated copies under
``benchmarks/baselines/`` are committed, and the perf gate
(``python -m repro.obs.report --check-regressions``) compares the two.

Every payload is stamped with the process-wide metrics snapshot
(``repro.obs.metrics``), and -- when ``REPRO_OBS_TRACE`` is on -- with the
span trees the run produced, so one artifact carries both the headline
numbers and the breakdown that explains them.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs import log as obs_log  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.obs import trace as obs_trace  # noqa: E402

obs_log.configure()

_STORE = None


def experiment_store():
    """The session-shared experiment results store (fresh per pytest run).

    Lives at ``benchmarks/out/experiments.sqlite`` (or ``$BENCH_STORE``); the
    first access of a session deletes any stale file so every benchmark run
    records numbers produced by the current code, while benchmarks within
    the session share runs -- Figure 4 assembles from the rows the Figure 3
    benchmark already recorded instead of re-running the solvers.
    """
    global _STORE
    if _STORE is None:
        from repro.experiments.store import ResultsStore

        path = Path(
            os.environ.get(
                "BENCH_STORE",
                Path(__file__).resolve().parent / "out" / "experiments.sqlite",
            )
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        _STORE = ResultsStore(path)
    return _STORE


def orchestrate(figure, scale="paper", workers=2):
    """Populate the store with one figure's missing specs and assemble it.

    This is the single path every figure benchmark goes through: declare the
    figure, let the orchestrator diff its spec matrix against the session
    store and execute only what is missing, then reassemble the figure from
    stored payloads -- so the numbers a benchmark asserts on are exactly the
    numbers the store (and the CI artifact built from it) carries.
    """
    from repro.experiments import orchestrator, specs

    store = experiment_store()
    report = orchestrator.run_figures([figure], store, scale=scale, workers=workers)
    assert report.complete, (
        f"orchestrated sweep for {figure} failed: {report.failed}"
    )
    return specs.assemble_figure(figure, orchestrator.store_lookup(store), scale)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The wall time of the (single) run is recorded both on the benchmark's
    ``extra_info`` and as ``run_once.last_elapsed_s`` so benchmarks can put
    it into their ``BENCH_*.json`` payload without re-measuring.
    """

    def timed(*inner_args, **inner_kwargs):
        started = time.perf_counter()
        result = function(*inner_args, **inner_kwargs)
        run_once.last_elapsed_s = time.perf_counter() - started
        return result

    result = benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)
    benchmark.extra_info["elapsed_s"] = run_once.last_elapsed_s
    return result


run_once.last_elapsed_s = None


def _jsonable(value):
    """Best-effort coercion for numpy scalars, dataclasses and exotica."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    for caster in (float, str):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return repr(value)


def write_bench_json(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` with the benchmark's headline numbers.

    ``payload`` holds the benchmark-specific metrics (elapsed seconds,
    evaluated layouts, speedups, TOCs, ...); the helper adds the benchmark
    name, a timestamp, the current metrics snapshot and any span trees the
    tracer accumulated, and keeps the file deterministic-ish (sorted keys)
    so diffs between runs stay readable.  The target directory defaults to
    ``benchmarks/out/`` (never the committed benchmarks/ root) and can be
    redirected with ``$BENCH_JSON_DIR`` (created on demand), which is how
    CI collects the artifacts.
    """
    directory = Path(
        os.environ.get("BENCH_JSON_DIR", Path(__file__).resolve().parent / "out")
    )
    directory.mkdir(parents=True, exist_ok=True)
    record = {"bench": name, "generated_unix_s": time.time()}
    record["metrics"] = obs_metrics.get_metrics().snapshot()
    spans = obs_trace.get_tracer().drain_roots()
    if spans:
        record["spans"] = spans
    record.update(payload)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True, default=_jsonable) + "\n")
    return path
