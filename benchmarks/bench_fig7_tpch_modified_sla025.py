"""Figure 7: modified TPC-H workload at the looser relative SLA of 0.25.

A thin spec declaration over the experiment orchestrator.  The SLA-0.5
comparison it contrasts against comes from the same session store -- when
the Figure 5 benchmark already ran, those rows are reused as-is.
"""

import pytest

from conftest import orchestrate, run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig7_tpch_modified_sla025")


def test_fig7_modified_tpch_sla025(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig7")
    sla05 = orchestrate("fig5")
    write_bench_json(
        "fig7_tpch_modified_sla025",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "boxes": {
                box_name: {
                    evaluation["layout_name"]: {
                        "toc_cents": evaluation["toc_cents"],
                        "psr": evaluation["psr"],
                    }
                    for evaluation in arm["data"]["evaluations"]
                }
                for box_name, arm in assembled.items()
            },
        },
    )
    for box_name, arm in assembled.items():
        log.info(f"\n=== {box_name} ===\n{arm['text']}")
        benchmark.extra_info[box_name] = arm["text"]
        by_name = {e["layout_name"]: e for e in arm["data"]["evaluations"]}
        by_name_05 = {
            e["layout_name"]: e for e in sla05[box_name]["data"]["evaluations"]
        }

        # Paper: relaxing the SLA from 0.5 to 0.25 lets DOT move bulk data to
        # cheaper classes, widening the saving against All H-SSD (up to ~5x).
        assert by_name["DOT"]["toc_cents"] < by_name["All H-SSD"]["toc_cents"]
        assert by_name["DOT"]["toc_cents"] <= by_name_05["DOT"]["toc_cents"] * 1.05
        # The measured PSR dips below 100 % because the validation run sees
        # buffer-pool and noise effects the optimizer's estimates do not
        # (recorded as a known deviation in EXPERIMENTS.md); it must stay at
        # least as good as the SLA-violating cheap simple layouts.
        hdd_like = "All HDD" if "All HDD" in by_name else "All HDD RAID 0"
        assert by_name["DOT"]["psr"] >= by_name[hdd_like]["psr"]
        assert by_name["DOT"]["psr"] >= 0.5
