"""Benchmark: throughput and recovery cost of the multi-tenant advisor service.

Not a paper figure -- this benchmark tracks :mod:`repro.service`, answering
the questions an operator asks before putting the advisor daemon in front
of a fleet: *how many tenants does one service instance advise per second,
what recommendation latency do tenants see at the tail, and how long does a
crashed service take to come back to its exact pre-crash state?*  Two arms,
both seeded and deterministic:

* **fleet** -- ``TENANTS`` concurrently drifting tenants (a mix of
  crossfade, flash-crowd and steady workloads) run to completion through
  the tick loop; headline numbers are tenants/sec, epochs/sec and the p99
  per-step recommendation latency (from the daemon's own step accounting);
* **recovery** -- the same fleet under a seeded worker-kill storm is
  hard-stopped mid-run; the arm times :meth:`AdvisorService.recover`
  (journal replay + bitwise layout verification) and asserts the resumed
  run converges every tenant to the bitwise-identical layouts of the
  fault-free arm.

The summary lands in ``BENCH_service.json``; the perf gate pins the
machine-independent fields (tenant/epoch counts, convergence, replay and
kill counts) exactly and the timings within the usual factor.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from conftest import run_once, write_bench_json

from repro.resilience import FaultInjector, FaultPlan
from repro.service import AdvisorService, ServiceConfig, TenantSpec

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_service")

TENANTS = 6
EPOCHS_PER_TENANT = 5
RESTART_AFTER_TICKS = 4

_bench_payload = {}


def _record(section, entry):
    _bench_payload[section] = entry
    write_bench_json("service", _bench_payload)


def _specs():
    drifts = ("crossfade", "flash", "steady")
    return [
        TenantSpec(tenant_id=f"tenant-{i}", num_epochs=EPOCHS_PER_TENANT,
                   drift=drifts[i % len(drifts)], drift_seed=2011 + i)
        for i in range(TENANTS)
    ]


def _service(state_dir, injector=None):
    service = AdvisorService(
        state_dir,
        ServiceConfig(workers=2, queue_depth=TENANTS, sync_journal=False),
        fault_injector=injector,
    )
    for spec in _specs():
        service.register(spec)
    return service


def _p99(samples):
    if not samples:
        return None
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.99 * (len(ordered) - 1) + 0.999))]


def fleet_run():
    state_dir = Path(tempfile.mkdtemp(prefix="bench-service-"))
    try:
        service = _service(state_dir / "state")
        started = time.perf_counter()
        report = service.run(max_ticks=256)
        elapsed = time.perf_counter() - started
        service.shutdown()
        assert report.all_done, "fleet run left tenants unfinished"
        layouts = report.layouts()
        assert all(layouts.values()), "fleet run produced empty layouts"
        return {
            "tenants": TENANTS,
            "epochs_per_tenant": EPOCHS_PER_TENANT,
            "completed_epochs": report.completed_epochs,
            "ticks": report.ticks,
            "converged": report.all_done and all(layouts.values()),
            "fleet_s": elapsed,
            "tenants_per_s": TENANTS / elapsed if elapsed > 0 else None,
            "epochs_per_s": (
                report.completed_epochs / elapsed if elapsed > 0 else None
            ),
            "p99_step_s": _p99(service.step_s),
            "_layouts": layouts,  # consumed by the recovery arm, then dropped
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def recovery_run(reference_layouts):
    plan = FaultPlan.chaos_service(
        seed=2026, num_ticks=24, kill_fraction=0.25, kill_count=1,
        burst_fraction=0.0, slow_fraction=0.0,
    )
    state_dir = Path(tempfile.mkdtemp(prefix="bench-service-"))
    try:
        state = state_dir / "state"
        stormed = _service(state, injector=FaultInjector(plan))
        for _ in range(RESTART_AFTER_TICKS):
            stormed.tick()
        stormed.save_snapshot()
        stormed.journal.close()  # hard mid-run process stop

        started = time.perf_counter()
        resumed = AdvisorService.recover(
            state,
            ServiceConfig(workers=2, queue_depth=TENANTS, sync_journal=False),
            fault_injector=FaultInjector(plan),
        )
        recovery_s = time.perf_counter() - started
        report = resumed.run(max_ticks=256)
        resumed.shutdown()

        assert report.all_done, "recovered run left tenants unfinished"
        converged = report.layouts() == reference_layouts
        assert converged, "recovered run diverged from the fault-free layouts"
        return {
            "tenants": TENANTS,
            "worker_kills": stormed.supervisor.kills + resumed.supervisor.kills,
            "replayed_epochs": report.replayed_epochs,
            "recovery_s": recovery_s,
            "converged": converged,
            "torn_tail": report.torn_tail_note is not None,
        }
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)


def test_fleet_throughput(benchmark):
    outcome = run_once(benchmark, fleet_run)
    test_fleet_throughput.layouts = outcome.pop("_layouts")
    benchmark.extra_info["summary"] = outcome
    _record("fleet", dict(outcome, elapsed_s=run_once.last_elapsed_s))
    log.info(
        f"\nfleet: {outcome['tenants']} tenants x {outcome['epochs_per_tenant']} "
        f"epochs in {outcome['fleet_s']:.2f}s "
        f"({outcome['tenants_per_s']:.2f} tenants/s, "
        f"p99 step {outcome['p99_step_s'] * 1e3:.1f}ms)"
    )


def test_recovery_after_seeded_kill(benchmark):
    reference = getattr(test_fleet_throughput, "layouts", None)
    if reference is None:
        reference = fleet_run().pop("_layouts")
    outcome = run_once(benchmark, recovery_run, reference)
    benchmark.extra_info["summary"] = outcome
    _record("recovery", dict(outcome, elapsed_s=run_once.last_elapsed_s))
    log.info(
        f"\nrecovery: {outcome['worker_kills']} kills, "
        f"{outcome['replayed_epochs']} epochs replayed in "
        f"{outcome['recovery_s']:.2f}s, layouts bitwise identical"
    )
