"""Figure 9 / Section 4.5.3: ES vs DOT for TPC-C under H-SSD capacity limits.

A thin spec declaration over the experiment orchestrator: each capacity-limit
arm is one content-addressed spec, executed only when missing from the
session store and reassembled from its stored payload.
"""

import pytest

from conftest import orchestrate, run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig9_es_vs_dot_tpcc")


def test_fig9_es_vs_dot_tpcc(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig9")
    write_bench_json(
        "fig9_es_vs_dot_tpcc",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "configurations": {
                label: {
                    "dot_toc_cents": arm["data"]["dot"]["toc_cents"],
                    "es_toc_cents": arm["data"]["es"]["toc_cents"],
                    "dot_elapsed_s": arm["timing"]["dot_elapsed_s"],
                    "es_elapsed_s": arm["timing"]["es_elapsed_s"],
                    "es_evaluated": arm["data"]["es"]["evaluated_layouts"],
                }
                for label, arm in assembled.items()
            },
        },
    )
    for label, arm in assembled.items():
        log.info(f"\n=== {label} ===\n{arm['text']}")
        benchmark.extra_info[label] = arm["text"]
        data = arm["data"]
        assert data["es"]["feasible"]
        assert data["dot"]["feasible"]
        dot_eval = data["dot_evaluation"]
        es_eval = data["es_evaluation"]
        # Paper: ES and DOT achieve almost the same tpmC and TOC.
        assert dot_eval["toc_cents"] <= es_eval["toc_cents"] * 1.25
        assert dot_eval["transactions_per_minute"] >= (
            es_eval["transactions_per_minute"] * 0.75
        )
        # DOT computes its layout orders of magnitude faster than ES.
        assert arm["timing"]["dot_elapsed_s"] < arm["timing"]["es_elapsed_s"]
