"""Figure 9 / Section 4.5.3: ES vs DOT for TPC-C under H-SSD capacity limits."""

import pytest

from repro.experiments import figures

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig9_es_vs_dot_tpcc")


def test_fig9_es_vs_dot_tpcc(benchmark):
    results = run_once(
        benchmark,
        figures.figure9,
        300,
        0.25,
        (None, 21.0),
        300,
        ("stock", "order_line", "customer"),
    )
    write_bench_json(
        "fig9_es_vs_dot_tpcc",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "configurations": {
                label: {
                    "dot_toc_cents": result["dot"].toc_cents,
                    "es_toc_cents": result["es"].toc_cents,
                    "dot_elapsed_s": result["dot"].elapsed_s,
                    "es_elapsed_s": result["es"].elapsed_s,
                    "es_evaluated": result["es"].evaluated_layouts,
                }
                for label, result in results.items()
            },
        },
    )
    for label, result in results.items():
        log.info(f"\n=== {label} ===\n{result['text']}")
        benchmark.extra_info[label] = result["text"]
        assert result["es"].feasible
        assert result["dot"].feasible
        dot_eval = result["dot_evaluation"]
        es_eval = result["es_evaluation"]
        # Paper: ES and DOT achieve almost the same tpmC and TOC.
        assert dot_eval.toc_cents <= es_eval.toc_cents * 1.25
        assert dot_eval.transactions_per_minute >= es_eval.transactions_per_minute * 0.75
        # DOT computes its layout orders of magnitude faster than ES.
        assert result["dot"].elapsed_s < result["es"].elapsed_s
