"""Benchmark: online re-provisioning vs the frozen layout under drift.

Three paper-adjacent drift studies (see ``repro.experiments.drift``), each
asserting the qualitative shape of its result:

* the OLTP-to-OLAP **crossfade** -- the migration-aware online advisor must
  beat the provision-once baseline net of its migration charges, keep the
  SLA satisfied at every epoch, and actually perform at least one re-tier
  (a run that never migrates is not exercising the subsystem);
* the **flash crowd** -- the predictive controller (trend extrapolation
  over the telemetry window) must fire before the crowd peaks and beat the
  reactive controller's cumulative migration-aware TOC with both arms
  SLA-feasible everywhere;
* the **cross-kind crossfade** -- TPC-C transactions fading into TPC-H
  queries over one merged catalog must serve kind-mixed epochs, re-tier,
  and beat the frozen layout on the blended cost index.

All three summaries land in ``BENCH_online_drift.json``.
"""

from __future__ import annotations

from conftest import run_once, write_bench_json

from repro.experiments.drift import (
    crosskind_drift_experiment,
    online_drift_experiment,
    predictive_drift_experiment,
)
from repro.obs import log as obs_log

log = obs_log.get_logger("benchmarks.bench_online_drift")

SLA_RATIO = 0.25

_bench_payload = {}


def _record(section, elapsed_s, summary, **extra):
    entry = {"elapsed_s": elapsed_s, "summary": summary}
    entry.update(extra)
    _bench_payload[section] = entry
    write_bench_json("online_drift", _bench_payload)


def _plain(summary):
    return {
        key: (list(value) if isinstance(value, tuple) else value)
        for key, value in summary.items()
    }


def test_online_drift_crossfade(benchmark):
    result = run_once(
        benchmark,
        online_drift_experiment,
        scale_factor=4.0,
        num_epochs=16,
        sla_ratio=SLA_RATIO,
        seed=2024,
    )
    summary = result["summary"]
    log.info(result["text"])
    benchmark.extra_info["report"] = result["text"]
    benchmark.extra_info["summary"] = {
        key: value for key, value in summary.items() if key != "retier_epochs"
    }
    _record(
        "crossfade",
        run_once.last_elapsed_s,
        {key: value for key, value in summary.items() if key != "retier_epochs"},
        retier_count=len(summary["retier_epochs"]),
    )

    assert summary["num_epochs"] == 16
    assert summary["online_cumulative_cents"] < summary["frozen_cumulative_cents"]
    assert summary["online_min_psr"] >= SLA_RATIO
    assert len(summary["retier_epochs"]) >= 1
    assert summary["migration_cents"] < summary["saving_cents"]
    # Staying online must be worth a double-digit share of the frozen cost
    # on this scenario (observed ~30 %).
    assert summary["saving_fraction"] > 0.10


def test_online_drift_predictive_flash_crowd(benchmark):
    result = run_once(
        benchmark,
        predictive_drift_experiment,
        scale_factor=4.0,
        num_epochs=16,
        spike_epoch=8,
        spike_width=4,
        sla_ratio=SLA_RATIO,
        seed=2024,
    )
    summary = result["summary"]
    log.info(result["text"])
    benchmark.extra_info["report"] = result["text"]
    benchmark.extra_info["summary"] = _plain(summary)
    _record("predictive_flash_crowd", run_once.last_elapsed_s, _plain(summary))

    # The trend trigger must fire before/at the peak, and anticipating the
    # crowd must be cheaper than reacting to it -- with both arms keeping
    # every epoch SLA-feasible (no winning by riding a violating layout).
    assert len(summary["predicted_retier_epochs"]) >= 1
    assert all(epoch <= summary["spike_epoch"]
               for epoch in summary["predicted_retier_epochs"])
    assert (summary["predictive_cumulative_cents"]
            < summary["reactive_cumulative_cents"])
    assert summary["predictive_min_psr"] == 1.0
    assert summary["reactive_min_psr"] == 1.0
    # Observed ~7 % on this configuration; guard a real margin, not noise.
    assert summary["predictive_saving_fraction"] > 0.02


def test_online_drift_crosskind(benchmark):
    result = run_once(
        benchmark,
        crosskind_drift_experiment,
        scale_factor=2.0,
        warehouses=30,
        oltp_concurrency=100,
        num_epochs=12,
        sla_ratio=SLA_RATIO,
        seed=2024,
    )
    summary = result["summary"]
    log.info(result["text"])
    benchmark.extra_info["report"] = result["text"]
    benchmark.extra_info["summary"] = _plain(summary)
    _record("crosskind", run_once.last_elapsed_s, _plain(summary))

    assert summary["mixed_epochs"] >= 2
    assert summary["online_cumulative_cents"] < summary["frozen_cumulative_cents"]
    assert len(summary["retier_epochs"]) >= 1
    assert summary["online_min_psr"] >= SLA_RATIO
