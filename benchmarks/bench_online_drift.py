"""Benchmark: online re-provisioning vs the frozen layout under drift.

Runs the OLTP-to-OLAP crossfade experiment (see
``repro.experiments.drift``) at paper-adjacent scale and asserts the
qualitative shape of the result: the migration-aware online advisor must
beat the provision-once baseline net of its migration charges, keep the
SLA satisfied at every epoch, and actually perform at least one re-tier
(a run that never migrates is not exercising the subsystem).
"""

from __future__ import annotations

from conftest import run_once, write_bench_json

from repro.experiments.drift import online_drift_experiment

SLA_RATIO = 0.25


def test_online_drift_crossfade(benchmark):
    result = run_once(
        benchmark,
        online_drift_experiment,
        scale_factor=4.0,
        num_epochs=16,
        sla_ratio=SLA_RATIO,
        seed=2024,
    )
    summary = result["summary"]
    print(result["text"])
    benchmark.extra_info["report"] = result["text"]
    benchmark.extra_info["summary"] = {
        key: value for key, value in summary.items() if key != "retier_epochs"
    }
    write_bench_json(
        "online_drift",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "summary": {
                key: value for key, value in summary.items() if key != "retier_epochs"
            },
            "retier_count": len(summary["retier_epochs"]),
        },
    )

    assert summary["num_epochs"] == 16
    assert summary["online_cumulative_cents"] < summary["frozen_cumulative_cents"]
    assert summary["online_min_psr"] >= SLA_RATIO
    assert len(summary["retier_epochs"]) >= 1
    assert summary["migration_cents"] < summary["saving_cents"]
    # Staying online must be worth a double-digit share of the frozen cost
    # on this scenario (observed ~30 %).
    assert summary["saving_fraction"] > 0.10
