"""Section 5 extensions and design ablations.

* generalized provisioning (pick the box) -- Section 5.1;
* the discrete-sized storage cost model -- Section 5.2;
* ablation: object groups vs independent per-object moves;
* ablation: DOT's greedy walk vs the exact MILP relaxation.
"""

import pytest

from repro.experiments import figures

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_extensions")


def test_generalized_provisioning_picks_a_box(benchmark):
    result = run_once(benchmark, figures.generalized_provisioning, 4.0, 0.5, 1)
    log.info("\n" + result["text"])
    benchmark.extra_info["decision"] = result["text"]
    decision = result["decision"]
    write_bench_json(
        "ext_generalized_provisioning",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "feasible": decision.feasible,
            "per_option_toc_cents": {
                name: (rec.toc_cents if rec is not None else None)
                for name, rec in decision.per_option.items()
            },
        },
    )
    assert decision.feasible
    # The chosen configuration is the cheapest feasible one.
    tocs = [rec.toc_cents for rec in decision.per_option.values() if rec is not None]
    assert decision.recommendation.toc_cents == pytest.approx(min(tocs))


def test_discrete_cost_model_consolidates_classes(benchmark):
    result = run_once(benchmark, figures.discrete_cost_experiment, 4.0, 0.5, (0.0, 0.5, 1.0), 1)
    log.info("\n" + result["text"])
    benchmark.extra_info["alpha_sweep"] = result["text"]
    outcomes = result["results"]
    write_bench_json(
        "ext_discrete_cost",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "toc_cents_by_alpha": {
                str(alpha): outcome.toc_cents for alpha, outcome in outcomes.items()
            },
        },
    )
    assert all(outcome.feasible for outcome in outcomes.values())
    used = {
        alpha: sum(1 for _, gb in outcome.layout.space_used_gb().items() if gb > 0)
        for alpha, outcome in outcomes.items()
    }
    # A fully discrete cost (alpha=1) never spreads data over more classes
    # than the fully linear cost does.
    assert used[1.0] <= used[0.0]


def test_ablation_object_grouping(benchmark):
    result = run_once(benchmark, figures.ablation_grouping, 4.0, 0.5, 4)
    log.info("\n" + result["text"])
    benchmark.extra_info["grouping"] = result["text"]
    outcomes = result["results"]
    write_bench_json(
        "ext_ablation_grouping",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "toc_cents": {
                label: (outcome.toc_cents if outcome.feasible else None)
                for label, outcome in outcomes.items()
            },
        },
    )
    grouped = outcomes["grouped (DOT)"]
    independent = outcomes["independent objects"]
    assert grouped.feasible
    # Group-aware enumeration never does worse than interaction-blind
    # per-object enumeration (the paper's argument for object groups).
    if independent.feasible:
        assert grouped.toc_cents <= independent.toc_cents * 1.001


def test_ablation_milp_reference(benchmark):
    result = run_once(benchmark, figures.ablation_ilp, 4.0, 0.5, 3)
    log.info("\n" + result["text"])
    benchmark.extra_info["milp"] = result["text"]
    outcomes = result["results"]
    write_bench_json(
        "ext_ablation_milp",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "dot_toc_cents": outcomes["dot"].toc_cents,
            "dot_elapsed_s": outcomes["dot"].elapsed_s,
            "milp_elapsed_s": outcomes["milp"].elapsed_s,
        },
    )
    assert outcomes["dot"].feasible
    assert outcomes["milp"].feasible
