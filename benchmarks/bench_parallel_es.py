"""Scaling study: the sharded, pruned parallel exhaustive-search engine.

Not a paper figure -- this benchmark tracks ``repro.core.parallel_search``,
the engine that lifts the ES enumeration ceiling toward the paper's full
``3^19`` TPC-C space.  It runs the exhaustive search over a synthetic
multi-table scenario (capacity-limited so the branch-and-bound pruning has
work to do) through the serial batch path and through the parallel engine at
growing worker counts, asserts the results are bitwise identical, and
records elapsed times, speedups and pruning rates.

Environment knobs (all optional):

* ``BENCH_ES_TABLES``  -- tables in the synthetic catalog (objects = 2x).
  Default 6 (a ``3^12 = 531441``-layout space) or 7 when >= 4 CPUs are
  available (``3^14``).
* ``BENCH_ES_WORKERS`` -- comma-separated worker counts to run, e.g. ``2,4``.
  Default: every power of two up to the CPU count (at least ``2``).

CI runs the 2-worker smoke configuration; the >= 2.5x speedup bar at 4
workers is asserted whenever a 4-worker run happens on a machine with >= 4
CPUs.
"""

from __future__ import annotations

import os

from repro import scenarios
from repro.core.solver import ExhaustiveSolver

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_parallel_es")


def _default_tables() -> int:
    return 7 if (os.cpu_count() or 1) >= 4 else 6


def _worker_counts():
    env = os.environ.get("BENCH_ES_WORKERS")
    if env:
        return [int(part) for part in env.split(",") if part.strip()]
    cpus = os.cpu_count() or 1
    counts = [workers for workers in (2, 4, 8) if workers <= cpus]
    return counts or [2]


def build_limited_scenario(num_tables: int, capacity_fraction: float = 0.45):
    """The synthetic scaling scenario with a binding H-SSD capacity limit.

    Limiting the fast class to a fraction of the total data volume makes a
    large share of the mixed-radix subtrees capacity-infeasible, which is
    exactly what the per-prefix capacity bound prunes -- the benchmark then
    reports a meaningful pruning rate instead of a trivially zero one.
    """
    return scenarios.build(
        "synthetic_scaling_limited",
        num_tables=num_tables,
        capacity_fraction=capacity_fraction,
    )


def parallel_es_run(num_tables, worker_counts):
    bundle = build_limited_scenario(num_tables)
    objects, system = bundle.objects, bundle.system
    space = len(system) ** len(objects)

    def run_search(**kwargs):
        # A fresh estimator per arm keeps the serial-vs-parallel comparison
        # free of shared plan-cache warm-up effects.
        context = bundle.context(estimator=bundle.fresh_estimator())
        return ExhaustiveSolver(max_layouts=space, **kwargs).solve(context)

    serial = run_search()
    serial_stats = serial.stats.batch
    rows = [
        {
            "workers": 1,
            "elapsed_s": serial.elapsed_s,
            "build_s": serial_stats.build_s,
            "warm_s": serial_stats.warm_s,
            "attach_s": serial_stats.attach_s,
            "steals": 0,
            "evaluated": serial.evaluated_layouts,
            "pruned_layouts": 0,
            "pruned_subtrees": 0,
            "pruned_chunks": 0,
            "speedup": 1.0,
        }
    ]
    for workers in worker_counts:
        result = run_search(workers=workers)
        assert result.layout == serial.layout, f"layout mismatch at {workers} workers"
        assert result.toc_cents == serial.toc_cents, f"TOC mismatch at {workers} workers"
        stats = result.stats.batch
        rows.append(
            {
                "workers": workers,
                "elapsed_s": result.elapsed_s,
                "build_s": stats.build_s,
                "warm_s": stats.warm_s,
                "attach_s": stats.attach_s,
                "steals": stats.steals,
                "evaluated": result.evaluated_layouts,
                "pruned_layouts": stats.pruned_layouts,
                "pruned_subtrees": stats.pruned_subtrees,
                "pruned_chunks": stats.pruned_chunks,
                "speedup": serial.elapsed_s / result.elapsed_s,
            }
        )

    # Transport/schedule contrast at the largest worker count: the
    # steal+shared-memory default against the pickle fallback and the
    # static pre-split.  Every arm must stay bitwise-equal to serial.
    contrast_workers = max(worker_counts)
    arms = {}
    for arm_name, arm_kwargs in (
        ("steal_shm", {}),
        ("steal_pickle", {"use_shared_memory": False}),
        ("static_pickle", {"schedule": "static", "use_shared_memory": False}),
    ):
        result = run_search(workers=contrast_workers, **arm_kwargs)
        assert result.layout == serial.layout, f"layout mismatch in arm {arm_name}"
        assert result.toc_cents == serial.toc_cents, f"TOC mismatch in arm {arm_name}"
        stats = result.stats.batch
        arms[arm_name] = {
            "workers": contrast_workers,
            "elapsed_s": result.elapsed_s,
            "build_s": stats.build_s,
            "warm_s": stats.warm_s,
            "attach_s": stats.attach_s,
            "steals": stats.steals,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
        }
    # Worker-boot contrast: both arms pay the coordinator warm-up once, so
    # the pickle arm's extra warm_s is the per-worker re-warm the shared
    # tables replace with attach_s.
    worker_warm_s = max(arms["steal_pickle"]["warm_s"] - arms["steal_shm"]["warm_s"], 0.0)
    attach_s = arms["steal_shm"]["attach_s"]
    boot = {
        "worker_warm_s": worker_warm_s,
        "attach_s": attach_s,
        "speedup": worker_warm_s / attach_s if attach_s > 0 else 0.0,
    }
    steal_speedup = (
        arms["static_pickle"]["elapsed_s"] / arms["steal_pickle"]["elapsed_s"]
    )
    return {
        "space": space,
        "objects": len(objects),
        "classes": len(system),
        "toc_cents": serial.toc_cents,
        "rows": rows,
        "transport_arms": arms,
        "boot": boot,
        "steal_speedup": steal_speedup,
    }


def test_parallel_es_scaling(benchmark):
    num_tables = int(os.environ.get("BENCH_ES_TABLES", _default_tables()))
    worker_counts = _worker_counts()
    outcome = run_once(benchmark, parallel_es_run, num_tables, worker_counts)

    rows = outcome["rows"]
    header = (f"{'workers':>7s} {'elapsed':>9s} {'build':>8s} {'warm':>8s} "
              f"{'attach':>8s} {'steals':>6s} {'evaluated':>10s} "
              f"{'pruned':>10s} {'prune %':>8s} {'speedup':>8s}")
    lines = [header]
    for row in rows:
        prune_pct = 100.0 * row["pruned_layouts"] / outcome["space"]
        lines.append(
            f"{row['workers']:>7d} {row['elapsed_s']:>8.2f}s {row['build_s']:>7.2f}s "
            f"{row['warm_s']:>7.3f}s {row['attach_s']:>7.3f}s {row['steals']:>6d} "
            f"{row['evaluated']:>10d} {row['pruned_layouts']:>10d} {prune_pct:>7.1f}% "
            f"{row['speedup']:>7.2f}x"
        )
    text = "\n".join(lines)
    boot = outcome["boot"]
    log.info(f"\nspace: {outcome['objects']} objects x {outcome['classes']} classes = "
          f"{outcome['space']} layouts\n{text}\n"
          f"worker boot: warm {boot['worker_warm_s']:.4f}s (pickle) vs attach "
          f"{boot['attach_s']:.4f}s (shm) = {boot['speedup']:.1f}x; "
          f"steal-vs-static speedup {outcome['steal_speedup']:.2f}x")
    benchmark.extra_info["table"] = text
    benchmark.extra_info["rows"] = rows

    write_bench_json(
        "parallel_es",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "space": outcome["space"],
            "objects": outcome["objects"],
            "classes": outcome["classes"],
            "toc_cents": outcome["toc_cents"],
            "worker_runs": rows,
            "transport_arms": outcome["transport_arms"],
            "boot": boot,
            "steal_speedup": outcome["steal_speedup"],
        },
    )

    # The smoke bar: a >= 3^12 space, every worker count bitwise-equal to the
    # serial path (asserted inside the run), and live pruning counters.
    assert outcome["space"] >= 3**12
    parallel_rows = [row for row in rows if row["workers"] > 1]
    assert parallel_rows, "no parallel configuration ran"
    assert all(row["evaluated"] + row["pruned_layouts"] == outcome["space"]
               for row in parallel_rows)
    assert any(row["pruned_layouts"] > 0 for row in parallel_rows)

    # The scaling bar: >= 2.5x at 4 workers, asserted when the machine can
    # meaningfully run it (4+ CPUs); pruning plus sharding clear it with
    # margin on dedicated hardware, and the guard keeps 1-2 core smoke
    # environments from failing on scheduler noise.
    four = next((row for row in rows if row["workers"] == 4), None)
    if four is not None and (os.cpu_count() or 1) >= 4:
        assert four["speedup"] >= 2.5

    # The raw-speed floor bars.  Structure is asserted everywhere: the shm
    # arm must actually attach (and skip the per-worker re-warm), the steal
    # arms must dispatch dynamically, the static arm must not.
    arms = outcome["transport_arms"]
    assert arms["steal_shm"]["attach_s"] > 0.0
    assert arms["steal_shm"]["steals"] > 0
    assert arms["steal_pickle"]["steals"] > 0
    assert arms["static_pickle"]["steals"] == 0
    assert arms["steal_pickle"]["warm_s"] > arms["steal_shm"]["warm_s"]
    # Magnitude bars only on machines that can resolve them: >= 5x cheaper
    # worker boot through shared memory, >= 1.3x from stealing on the
    # skew-pruned space.  1-2 core smoke runners measure but don't assert.
    if (os.cpu_count() or 1) >= 4:
        assert outcome["boot"]["speedup"] >= 5.0
        assert outcome["steal_speedup"] >= 1.3
