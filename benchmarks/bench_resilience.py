"""Benchmark: recovery overhead of the resilience layer under injected chaos.

Not a paper figure -- this benchmark tracks :mod:`repro.resilience` and the
recovery machinery it exercises, answering the question a fleet operator
asks before enabling fault tolerance: *what does surviving failures cost
when failures actually happen?*  Three arms, all seeded and deterministic:

* **search chaos** -- the parallel exhaustive search with worker kills,
  shard exceptions and stragglers injected on disjoint shard subsets must
  return the bitwise-identical fault-free optimum; the headline number is
  the wall-clock overhead of the retries and the dead-worker watchdog;
* **degraded solve** -- the ES solver under a deliberately blown budget
  must come back degraded-but-flagged within the deadline (+ scheduling
  slack), quantifying how much of the space a budgeted solve still covers;
* **online chaos** -- an epoch loop with 20% telemetry dropouts and an
  outlier glitch must complete every epoch with the *same* cumulative cost
  as the fault-free run (telemetry faults perturb observation, never
  accounting) while recording every incident.

The summary lands in ``BENCH_resilience.json``.
"""

from __future__ import annotations

import time

from conftest import run_once, write_bench_json

from repro import scenarios
from repro.core.batch_eval import BatchLayoutEvaluator
from repro.core.parallel_search import EnumerationSpec, ParallelEnumerationEngine
from repro.core.solver import ExhaustiveSolver
from repro.online.controller import OnlineAdvisor
from repro.online.monitor import DriftThresholds, OutlierPolicy
from repro.resilience import FaultInjector, FaultPlan
from repro.sla.constraints import RelativeSLA

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_resilience")

WORKERS = 2
NUM_EPOCHS = 10

_bench_payload = {}


def _record(section, entry):
    _bench_payload[section] = entry
    write_bench_json("resilience", _bench_payload)


def _shard_ids(bundle, workers):
    """The chaos plan targets the real shard geometry of the run."""
    context = bundle.context(estimator=bundle.fresh_estimator())
    evaluator = BatchLayoutEvaluator(
        context.objects, context.system, context.estimator, context.workload
    )
    spec = EnumerationSpec(
        variable_objects=context.objects, system=context.system,
        estimator=context.estimator, workload=context.workload,
        pinned=[], constraint=None, cache=evaluator.cache,
    )
    probe = ParallelEnumerationEngine.from_evaluator(evaluator, spec, workers=workers)
    return [task[0] for task in probe.shard_ranges()]


def search_chaos_run():
    bundle = scenarios.build("synthetic_small")

    def solve(**kwargs):
        context = bundle.context(estimator=bundle.fresh_estimator())
        started = time.perf_counter()
        result = ExhaustiveSolver(workers=WORKERS, **kwargs).solve(context)
        return result, time.perf_counter() - started

    baseline, baseline_s = solve()
    plan = FaultPlan.chaos_search(
        seed=2026, shard_ids=_shard_ids(bundle, WORKERS),
        crash_fraction=0.25, exception_fraction=0.25, delay_fraction=0.25,
        delay_s=0.05,
    )
    chaotic, chaotic_s = solve(fault_plan=plan, shard_timeout_s=2.0)

    assert chaotic.layout == baseline.layout, "chaos run diverged from fault-free optimum"
    assert chaotic.toc_cents == baseline.toc_cents
    assert chaotic.stats.incidents, "chaos run recorded no recovery incidents"
    return {
        "faults_injected": len(plan.shard_faults),
        "incidents": len(chaotic.stats.incidents),
        "fault_free_s": baseline_s,
        "chaos_s": chaotic_s,
        "recovery_overhead_x": chaotic_s / baseline_s if baseline_s > 0 else None,
        "toc_cents": baseline.toc_cents,
    }


def degraded_solve_run(budget_s: float = 0.05):
    # The tiny scenario solves in milliseconds and would never blow a
    # budget; the capacity-limited scaling scenario (3^12 layouts) takes
    # long enough that `budget_s` cuts the enumeration off mid-space.
    bundle = scenarios.build(
        "synthetic_scaling_limited", num_tables=6, capacity_fraction=0.45
    )
    space = len(bundle.system) ** len(bundle.objects)
    full = ExhaustiveSolver(max_layouts=space).solve(
        bundle.context(estimator=bundle.fresh_estimator())
    )
    context = bundle.context(estimator=bundle.fresh_estimator())
    started = time.perf_counter()
    degraded = ExhaustiveSolver(max_layouts=space).solve(context, budget=budget_s)
    elapsed = time.perf_counter() - started

    assert degraded.stats.degraded and degraded.stats.incidents
    assert elapsed <= budget_s * 1.1 + 0.25, (
        f"degraded solve took {elapsed:.3f}s against a {budget_s}s budget"
    )
    if degraded.feasible:
        check = context.checker().check(
            degraded.layout, context.evaluate(degraded.layout).run_result
        )
        assert check.feasible, "degraded result claimed infeasible feasibility"
    return {
        "budget_s": budget_s,
        "elapsed_s": elapsed,
        "feasible": degraded.feasible,
        "evaluated_fraction": (
            degraded.evaluated_layouts / full.evaluated_layouts
            if full.evaluated_layouts else None
        ),
        "toc_gap_cents": (
            degraded.toc_cents - full.toc_cents if degraded.feasible else None
        ),
    }


def online_chaos_run():
    bundle = scenarios.build("synthetic_small")
    context = bundle.context(estimator=bundle.fresh_estimator())
    epochs = [context.workload] * NUM_EPOCHS

    def advisor(injector=None):
        return OnlineAdvisor(
            context.objects, context.system, bundle.fresh_estimator(),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
            fault_injector=injector,
            outlier_policy=OutlierPolicy(window=5, k=6.0),
        )

    started = time.perf_counter()
    baseline = advisor().run(epochs)
    baseline_s = time.perf_counter() - started

    plan = FaultPlan.chaos_online(
        seed=2026, num_epochs=NUM_EPOCHS,
        dropout_fraction=0.2, outlier_fraction=0.1, outlier_factor=25.0,
    )
    started = time.perf_counter()
    chaotic = advisor(FaultInjector(plan)).run(epochs)
    chaotic_s = time.perf_counter() - started

    incidents = [i for record in chaotic.records for i in record.incidents]
    assert chaotic.num_epochs == NUM_EPOCHS, "chaos run dropped epochs"
    assert incidents, "chaos run recorded no incidents"
    # Telemetry faults perturb what the monitor sees, never the accounting:
    # on a steady workload the chaos run costs exactly the fault-free run.
    assert chaotic.cumulative_cost_cents == baseline.cumulative_cost_cents
    assert chaotic.min_psr >= 0.5
    return {
        "num_epochs": NUM_EPOCHS,
        "faulty_epochs": len(plan.epoch_faults),
        "incidents": len(incidents),
        "fault_free_s": baseline_s,
        "chaos_s": chaotic_s,
        "cumulative_cost_cents": chaotic.cumulative_cost_cents,
        "min_psr": chaotic.min_psr,
    }


def test_search_chaos_recovery(benchmark):
    outcome = run_once(benchmark, search_chaos_run)
    benchmark.extra_info["summary"] = outcome
    _record("search_chaos", dict(outcome, elapsed_s=run_once.last_elapsed_s))
    log.info(
        f"\nsearch chaos: {outcome['faults_injected']} faults, "
        f"{outcome['incidents']} incidents, "
        f"overhead {outcome['recovery_overhead_x']:.2f}x "
        f"({outcome['fault_free_s']:.2f}s -> {outcome['chaos_s']:.2f}s), "
        "optimum bitwise identical"
    )


def test_degraded_solve_within_budget(benchmark):
    outcome = run_once(benchmark, degraded_solve_run)
    benchmark.extra_info["summary"] = outcome
    _record("degraded_solve", dict(outcome, total_s=run_once.last_elapsed_s))
    log.info(
        f"\ndegraded solve: {outcome['elapsed_s']:.3f}s against a "
        f"{outcome['budget_s']}s budget, feasible={outcome['feasible']}"
    )


def test_online_chaos_recovery(benchmark):
    outcome = run_once(benchmark, online_chaos_run)
    benchmark.extra_info["summary"] = outcome
    _record("online_chaos", dict(outcome, elapsed_s=run_once.last_elapsed_s))
    log.info(
        f"\nonline chaos: {outcome['faulty_epochs']}/{outcome['num_epochs']} faulty "
        f"epochs, {outcome['incidents']} incidents, cost identical to fault-free, "
        f"min PSR {outcome['min_psr']:.2f}"
    )
