"""Section 4.4.3: DOT vs exhaustive search on the reduced TPC-H workload,
with and without capacity limits on the HDD-based classes."""

import pytest

from repro.experiments import figures

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_es_vs_dot_tpch")


def _payload(results):
    """Headline search metrics per box for the BENCH json."""
    return {
        "elapsed_s": run_once.last_elapsed_s,
        "boxes": {
            box_name: {
                "dot_toc_cents": result["dot"].toc_cents,
                "es_toc_cents": result["es"].toc_cents,
                "dot_evaluated": result["dot_evaluated"],
                "es_evaluated": result["es_evaluated"],
                "dot_elapsed_s": result["dot_elapsed_s"],
                "es_elapsed_s": result["es_elapsed_s"],
            }
            for box_name, result in results.items()
        },
    }


def test_es_vs_dot_tpch_no_capacity_limits(benchmark):
    results = run_once(
        benchmark,
        figures.es_vs_dot_tpch,
        20.0,
        0.5,
        {"Box 1": {}, "Box 2": {}},
        3,
    )
    write_bench_json("es_vs_dot_tpch", _payload(results))
    for box_name, result in results.items():
        log.info(f"\n=== {box_name} ===\n{result['text']}")
        benchmark.extra_info[box_name] = result["text"]
        assert result["dot"].feasible and result["es"].feasible
        # Paper: DOT's TOC within ~16 % of ES, response time within ~9 %,
        # while evaluating orders of magnitude fewer layouts.
        assert result["dot"].toc_cents <= result["es"].toc_cents * 1.20
        dot_eval = result["dot_evaluation"]
        es_eval = result["es_evaluation"]
        assert dot_eval.response_time_s <= es_eval.response_time_s * 1.15
        assert result["dot_evaluated"] * 20 < result["es_evaluated"]


def test_es_vs_dot_tpch_with_capacity_limits(benchmark):
    """The paper's capacity sweep: 24 GB on Box 1's HDD RAID 0, 8 GB on Box 2's HDD."""
    results = run_once(
        benchmark,
        figures.es_vs_dot_tpch,
        20.0,
        0.5,
        {"Box 1": {"HDD RAID 0": 24.0}, "Box 2": {"HDD": 8.0}},
        3,
    )
    write_bench_json("es_vs_dot_tpch_capacity_limited", _payload(results))
    for box_name, result in results.items():
        log.info(f"\n=== {box_name} (capacity limited) ===\n{result['text']}")
        benchmark.extra_info[box_name] = result["text"]
        assert result["es"].feasible
        assert result["dot"].feasible
        assert result["dot"].layout.satisfies_capacity()
        assert result["dot"].toc_cents <= result["es"].toc_cents * 1.25
