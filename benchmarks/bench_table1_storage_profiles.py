"""Table 1: storage prices and per-I/O-type profiles at concurrency 1 and 300.

Thin spec declarations over the experiment orchestrator; the assertions read
the store-assembled payloads.
"""

import pytest

from conftest import orchestrate, run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_table1_storage_profiles")


def test_table1_storage_profiles(benchmark):
    assembled = run_once(benchmark, orchestrate, "table1")
    data = assembled["data"]
    write_bench_json(
        "table1_storage_profiles",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "prices_cents_per_gb_hour": data["prices_cents_per_gb_hour"],
            "published_prices": data["published_prices"],
        },
    )
    benchmark.extra_info["table"] = assembled["text"]
    log.info("\n" + assembled["text"])

    # Prices match the published Table 1 within 10 %.
    for name, published in data["published_prices"].items():
        assert data["prices_cents_per_gb_hour"][name] == pytest.approx(published, rel=0.10)

    # Measured profiles reproduce the paper's ordering: the H-SSD dominates
    # random reads, the L-SSD's random writes are worse than the HDD's, and
    # RAID 0 beats the single device on sequential reads.
    rows = data["profiles"]
    assert (
        rows["H-SSD"]["1"]["rand_read_ms"]
        < rows["L-SSD"]["1"]["rand_read_ms"]
        < rows["HDD"]["1"]["rand_read_ms"]
    )
    assert rows["L-SSD"]["1"]["rand_write_ms"] > rows["HDD"]["1"]["rand_write_ms"]
    assert rows["HDD RAID 0"]["1"]["seq_read_ms"] < rows["HDD"]["1"]["seq_read_ms"]
    assert rows["L-SSD RAID 0"]["1"]["seq_read_ms"] < rows["L-SSD"]["1"]["seq_read_ms"]


def test_table2_device_specifications(benchmark):
    assembled = run_once(benchmark, orchestrate, "table2")
    devices = assembled["data"]["devices"]
    write_bench_json(
        "table2_devices",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "devices": {
                name: {
                    "capacity_gb": spec["capacity_gb"],
                    "purchase_cost_usd": spec["purchase_cost_usd"],
                    "power_watts": spec["power_watts"],
                }
                for name, spec in devices.items()
            },
        },
    )
    benchmark.extra_info["table"] = assembled["text"]
    log.info("\n" + assembled["text"])
    assert set(devices) == {"HDD", "L-SSD", "H-SSD"}
