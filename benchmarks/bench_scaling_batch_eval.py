"""Scaling study: scalar vs vectorized layout evaluation for ES and DOT.

Not a paper figure -- this benchmark tracks the repo's own batch evaluation
engine (``repro.core.batch_eval``).  It runs the exhaustive search over
growing synthetic object sets through both the scalar reference path and the
vectorized batch path (plus the DOT walk with and without the incremental
evaluator), asserts the results are bitwise identical, and records the wall
times in ``extra_info`` so ``--benchmark-json`` runs accumulate a speedup
trajectory.

The acceptance bar enforced here: >= 5x exhaustive-search speedup at
10 objects x 3 storage classes.
"""

import time

import pytest

from repro.core.dot import DOTOptimizer
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.profiler import WorkloadProfiler
from repro.dbms.datagen import SyntheticTableSpec, build_synthetic_catalog
from repro.dbms.executor import WorkloadEstimator
from repro.dbms.query import JoinSpec, Query, TableAccess
from repro.storage import catalog as storage_catalog
from repro.workloads.workload import Workload

from conftest import run_once, write_bench_json


def build_scenario(num_tables):
    """A synthetic catalog of ``num_tables`` tables (+ one pkey each, so
    ``2 * num_tables`` placeable objects) and a mixed scan/lookup/join
    workload touching all of them."""
    specs = [
        SyntheticTableSpec(
            f"t{i}", row_count=200_000 + 137_000 * i, row_width_bytes=120 + 10 * i
        )
        for i in range(num_tables)
    ]
    catalog = build_synthetic_catalog(specs, name=f"scaling-{num_tables}")
    queries = []
    for i in range(num_tables):
        queries.append(
            Query(
                name=f"scan_t{i}",
                accesses=(TableAccess(f"t{i}", selectivity=0.8),),
                aggregate_rows=100_000,
            )
        )
        queries.append(
            Query(
                name=f"lookup_t{i}",
                accesses=(
                    TableAccess(f"t{i}", selectivity=0.0001, index=f"t{i}_pkey",
                                key_lookup=True),
                ),
            )
        )
    for i in range(num_tables - 1):
        queries.append(
            Query(
                name=f"join_t{i}_t{i + 1}",
                accesses=(
                    TableAccess(f"t{i}", selectivity=0.01),
                    TableAccess(f"t{i + 1}", selectivity=1.0, index=f"t{i + 1}_pkey"),
                ),
                joins=(
                    JoinSpec(inner_position=1, rows_per_outer=3.0,
                             inner_index=f"t{i + 1}_pkey"),
                ),
                aggregate_rows=1_000,
            )
        )
    workload = Workload(name=f"scaling-{num_tables}", kind="dss",
                        queries=tuple(queries), concurrency=1)
    return catalog, workload


def timed_es(catalog, workload, batch):
    estimator = WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)
    search = ExhaustiveSearch(
        catalog.database_objects(), storage_catalog.box1(), estimator,
        max_layouts=1_000_000, batch=batch,
    )
    started = time.perf_counter()
    result = search.search(workload)
    return result, time.perf_counter() - started


def timed_dot(catalog, workload, incremental):
    estimator = WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)
    objects = catalog.database_objects()
    system = storage_catalog.box1()
    profiles = WorkloadProfiler(objects, system, estimator).profile(workload, mode="estimate")
    dot = DOTOptimizer(objects, system, estimator, incremental=incremental)
    started = time.perf_counter()
    result = dot.optimize(workload, profiles)
    return result, time.perf_counter() - started


def scaling_run(table_counts):
    rows = []
    for num_tables in table_counts:
        catalog, workload = build_scenario(num_tables)
        es_scalar, es_scalar_s = timed_es(catalog, workload, batch=False)
        es_batch, es_batch_s = timed_es(catalog, workload, batch=True)
        assert es_batch.layout == es_scalar.layout
        assert es_batch.toc_cents == es_scalar.toc_cents
        dot_scalar, dot_scalar_s = timed_dot(catalog, workload, incremental=False)
        dot_fast, dot_fast_s = timed_dot(catalog, workload, incremental=True)
        assert dot_fast.layout == dot_scalar.layout
        assert dot_fast.toc_cents == dot_scalar.toc_cents
        rows.append(
            {
                "objects": 2 * num_tables,
                "classes": 3,
                "candidates": es_scalar.evaluated_layouts,
                "es_scalar_s": es_scalar_s,
                "es_batch_s": es_batch_s,
                "es_speedup": es_scalar_s / es_batch_s,
                "dot_scalar_s": dot_scalar_s,
                "dot_incremental_s": dot_fast_s,
                "dot_speedup": dot_scalar_s / dot_fast_s,
            }
        )
    return rows


def test_scaling_batch_eval(benchmark):
    rows = run_once(benchmark, scaling_run, (3, 4, 5))
    header = (f"{'objects':>7s} {'candidates':>10s} {'ES scalar':>10s} {'ES batch':>10s} "
              f"{'ES x':>6s} {'DOT scalar':>10s} {'DOT incr':>10s} {'DOT x':>6s}")
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['objects']:>7d} {row['candidates']:>10d} "
            f"{row['es_scalar_s']:>9.3f}s {row['es_batch_s']:>9.3f}s {row['es_speedup']:>5.1f}x "
            f"{row['dot_scalar_s']:>9.3f}s {row['dot_incremental_s']:>9.3f}s "
            f"{row['dot_speedup']:>5.1f}x"
        )
    text = "\n".join(lines)
    print("\n" + text)
    benchmark.extra_info["table"] = text
    benchmark.extra_info["rows"] = rows

    largest = rows[-1]
    write_bench_json(
        "scaling_batch_eval",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "rows": rows,
            "candidates_at_largest": largest["candidates"],
            "es_speedup_at_largest": largest["es_speedup"],
            "dot_speedup_at_largest": largest["dot_speedup"],
        },
    )
    assert largest["objects"] == 10 and largest["classes"] == 3
    # The acceptance bar: >= 5x ES speedup at 10 objects x 3 classes (the
    # measured margin is >100x, so this holds even on noisy shared runners).
    assert largest["es_speedup"] >= 5.0
    # The DOT walk at this size completes in milliseconds, where scheduler
    # noise on shared CI runners can dominate; only guard against the
    # incremental path being systematically slower.
    assert largest["dot_speedup"] >= 0.5
