"""Scaling study: scalar vs vectorized layout evaluation for ES and DOT.

Not a paper figure -- this benchmark tracks the repo's own batch evaluation
engine (``repro.core.batch_eval``).  It runs the exhaustive search over
growing synthetic object sets through both the scalar reference path and the
vectorized batch path (plus the DOT walk with and without the incremental
evaluator), asserts the results are bitwise identical, and records the wall
times in ``extra_info`` so ``--benchmark-json`` runs accumulate a speedup
trajectory.

The acceptance bar enforced here: >= 5x exhaustive-search speedup at
10 objects x 3 storage classes.
"""

import time

import pytest

from repro import scenarios
from repro.core.solver import DOTSolver, ExhaustiveSolver

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_scaling_batch_eval")


def build_scenario(num_tables):
    """The synthetic scaling scenario (from the registry): ``num_tables``
    tables (+ one pkey each, so ``2 * num_tables`` placeable objects) and a
    mixed scan/lookup/join workload touching all of them."""
    return scenarios.build("synthetic_scaling", num_tables=num_tables)


def timed_solve(bundle, solver, needs_profiles=False):
    """One isolated arm: fresh estimator, optional pre-profiled context.

    The DOT arms pre-compute the workload profiles outside the timer (move
    enumeration input, not evaluation work, and identical across arms) so
    the measured time is the walk itself -- as the pre-registry benchmark
    measured it.
    """
    context = bundle.context(box="Box 1", estimator=bundle.fresh_estimator())
    if needs_profiles:
        context.get_profiles()
    started = time.perf_counter()
    result = solver.solve(context)
    return result, time.perf_counter() - started


def scaling_run(table_counts):
    rows = []
    for num_tables in table_counts:
        bundle = build_scenario(num_tables)
        es_scalar, es_scalar_s = timed_solve(
            bundle, ExhaustiveSolver(max_layouts=1_000_000, batch=False))
        es_batch, es_batch_s = timed_solve(
            bundle, ExhaustiveSolver(max_layouts=1_000_000, batch=True))
        assert es_batch.layout == es_scalar.layout
        assert es_batch.toc_cents == es_scalar.toc_cents
        dot_scalar, dot_scalar_s = timed_solve(
            bundle, DOTSolver(incremental=False), needs_profiles=True)
        dot_fast, dot_fast_s = timed_solve(
            bundle, DOTSolver(incremental=True), needs_profiles=True)
        assert dot_fast.layout == dot_scalar.layout
        assert dot_fast.toc_cents == dot_scalar.toc_cents
        rows.append(
            {
                "objects": 2 * num_tables,
                "classes": 3,
                "candidates": es_scalar.evaluated_layouts,
                "es_scalar_s": es_scalar_s,
                "es_batch_s": es_batch_s,
                "es_speedup": es_scalar_s / es_batch_s,
                "dot_scalar_s": dot_scalar_s,
                "dot_incremental_s": dot_fast_s,
                "dot_speedup": dot_scalar_s / dot_fast_s,
            }
        )
    return rows


def test_scaling_batch_eval(benchmark):
    rows = run_once(benchmark, scaling_run, (3, 4, 5))
    header = (f"{'objects':>7s} {'candidates':>10s} {'ES scalar':>10s} {'ES batch':>10s} "
              f"{'ES x':>6s} {'DOT scalar':>10s} {'DOT incr':>10s} {'DOT x':>6s}")
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['objects']:>7d} {row['candidates']:>10d} "
            f"{row['es_scalar_s']:>9.3f}s {row['es_batch_s']:>9.3f}s {row['es_speedup']:>5.1f}x "
            f"{row['dot_scalar_s']:>9.3f}s {row['dot_incremental_s']:>9.3f}s "
            f"{row['dot_speedup']:>5.1f}x"
        )
    text = "\n".join(lines)
    log.info("\n" + text)
    benchmark.extra_info["table"] = text
    benchmark.extra_info["rows"] = rows

    largest = rows[-1]
    write_bench_json(
        "scaling_batch_eval",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "rows": rows,
            "candidates_at_largest": largest["candidates"],
            "es_speedup_at_largest": largest["es_speedup"],
            "dot_speedup_at_largest": largest["dot_speedup"],
        },
    )
    assert largest["objects"] == 10 and largest["classes"] == 3
    # The acceptance bar: >= 5x ES speedup at 10 objects x 3 classes (the
    # measured margin is >100x, so this holds even on noisy shared runners).
    assert largest["es_speedup"] >= 5.0
    # The DOT walk at this size completes in milliseconds, where scheduler
    # noise on shared CI runners can dominate; only guard against the
    # incremental path being systematically slower.
    assert largest["dot_speedup"] >= 0.5
