"""Figure 8 and Table 3: TPC-C throughput/TOC for DOT and the simple layouts.

Thin spec declarations over the experiment orchestrator: Table 3 assembles
its per-SLA DOT layouts from the Box 2 rows the Figure 8 benchmark recorded.
"""

import pytest

from conftest import orchestrate, run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig8_tpcc")


def test_fig8_tpcc_throughput_vs_toc(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig8")
    write_bench_json(
        "fig8_tpcc",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "boxes": {
                box_name: {
                    evaluation["layout_name"]: {
                        "toc_cents": evaluation["toc_cents"],
                        "tpmc": evaluation["transactions_per_minute"],
                    }
                    for evaluation in arm["data"]["evaluations"]
                }
                for box_name, arm in assembled.items()
            },
        },
    )
    for box_name, arm in assembled.items():
        log.info(f"\n=== {box_name} ===\n{arm['text']}")
        benchmark.extra_info[box_name] = arm["text"]
        by_name = {e["layout_name"]: e for e in arm["data"]["evaluations"]}

        # DOT never costs more per transaction than All H-SSD, and relaxing
        # the SLA never increases its TOC.
        dot_entries = sorted(
            (name for name in by_name if name.startswith("DOT")), reverse=True
        )
        assert dot_entries, "DOT produced no feasible TPC-C layouts"
        for name in dot_entries:
            assert by_name[name]["toc_cents"] <= by_name["All H-SSD"]["toc_cents"] * 1.001

        # The all-HDD layout is dramatically slower than All H-SSD (the paper's
        # motivation for needing the fast tier at all).
        hdd_like = "All HDD" if "All HDD" in by_name else "All HDD RAID 0"
        assert by_name[hdd_like]["transactions_per_minute"] < (
            by_name["All H-SSD"]["transactions_per_minute"] / 5
        )


def test_table3_tpcc_dot_layouts_per_sla(benchmark):
    assembled = run_once(benchmark, orchestrate, "table3")
    write_bench_json(
        "table3_tpcc_dot_layouts",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "assignments": assembled["assignments"],
        },
    )
    log.info("\n" + assembled["text"])
    benchmark.extra_info["table3"] = assembled["text"]
    assignments = assembled["assignments"]
    assert set(assignments) == {"0.5", "0.25", "0.125"}
    for ratio, assignment in assignments.items():
        # The hot random-I/O objects stay on the H-SSD at every SLA, as in the
        # paper's Table 3.
        assert assignment["stock"] == "H-SSD"
        assert assembled["satisfies_capacity"][ratio]
