"""Figure 8 and Table 3: TPC-C throughput/TOC for DOT and the simple layouts."""

import pytest

from repro.experiments import figures

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig8_tpcc")


def test_fig8_tpcc_throughput_vs_toc(benchmark):
    results = run_once(benchmark, figures.figure8, 300, (0.5, 0.25, 0.125), 300)
    write_bench_json(
        "fig8_tpcc",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "boxes": {
                box_name: {
                    evaluation.layout_name: {
                        "toc_cents": evaluation.toc_cents,
                        "tpmc": evaluation.transactions_per_minute,
                    }
                    for evaluation in result["evaluations"]
                }
                for box_name, result in results.items()
            },
        },
    )
    for box_name, result in results.items():
        log.info(f"\n=== {box_name} ===\n{result['text']}")
        benchmark.extra_info[box_name] = result["text"]
        by_name = {e.layout_name: e for e in result["evaluations"]}

        # DOT never costs more per transaction than All H-SSD, and relaxing
        # the SLA never increases its TOC.
        dot_entries = sorted(
            (name for name in by_name if name.startswith("DOT")), reverse=True
        )
        assert dot_entries, "DOT produced no feasible TPC-C layouts"
        for name in dot_entries:
            assert by_name[name].toc_cents <= by_name["All H-SSD"].toc_cents * 1.001

        # The all-HDD layout is dramatically slower than All H-SSD (the paper's
        # motivation for needing the fast tier at all).
        hdd_like = "All HDD" if "All HDD" in by_name else "All HDD RAID 0"
        assert by_name[hdd_like].transactions_per_minute < (
            by_name["All H-SSD"].transactions_per_minute / 5
        )


def test_table3_tpcc_dot_layouts_per_sla(benchmark):
    result = run_once(benchmark, figures.table3, 300, (0.5, 0.25, 0.125), 300)
    write_bench_json(
        "table3_tpcc_dot_layouts",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "assignments": {
                str(ratio): layout.assignment()
                for ratio, layout in result["layouts"].items()
            },
        },
    )
    log.info("\n" + result["text"])
    benchmark.extra_info["table3"] = result["text"]
    layouts = result["layouts"]
    assert set(layouts) == {0.5, 0.25, 0.125}
    for layout in layouts.values():
        # The hot random-I/O objects stay on the H-SSD at every SLA, as in the
        # paper's Table 3.
        assert layout.class_name_of("stock") == "H-SSD"
        assert layout.satisfies_capacity()
