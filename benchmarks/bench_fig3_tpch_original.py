"""Figure 3 / Figure 4: original TPC-H workload at relative SLA 0.5 (both boxes)."""

import pytest

from repro.experiments import figures
from repro.experiments.reporting import format_layout_assignment

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig3_tpch_original")


def _evaluation_payload(results):
    """Per-box TOC/PSR of every evaluated layout for the BENCH json."""
    return {
        "elapsed_s": run_once.last_elapsed_s,
        "boxes": {
            box_name: {
                evaluation.layout_name: {
                    "toc_cents": evaluation.toc_cents,
                    "psr": evaluation.psr,
                }
                for evaluation in result["evaluations"]
            }
            for box_name, result in results.items()
        },
    }


def test_fig3_original_tpch_sla05(benchmark):
    results = run_once(benchmark, figures.figure3, 20.0, 3)
    write_bench_json("fig3_tpch_original", _evaluation_payload(results))
    for box_name, result in results.items():
        log.info(f"\n=== {box_name} ===\n{result['text']}")
        benchmark.extra_info[box_name] = result["text"]
        by_name = {e.layout_name: e for e in result["evaluations"]}

        # Paper: DOT saves more than 3x TOC against All H-SSD while keeping a
        # 100 % PSR; the simple all-on-one-class layouts are either expensive
        # or miss the SLA.
        assert by_name["DOT"].toc_cents < by_name["All H-SSD"].toc_cents / 2.0
        assert by_name["DOT"].psr >= 0.95
        assert by_name["All H-SSD"].psr == pytest.approx(1.0)
        # DOT never costs more than the Object Advisor baseline.
        assert by_name["DOT"].toc_cents <= by_name["OA"].toc_cents * 1.05


def test_fig4_dot_layouts_for_original_tpch(benchmark):
    layouts = run_once(benchmark, figures.figure4, 20.0, 3)
    write_bench_json(
        "fig4_dot_layouts_original",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "assignments": {
                box_name: entry["layout"].assignment()
                for box_name, entry in layouts.items()
            },
        },
    )
    for box_name, entry in layouts.items():
        log.info(f"\n=== {box_name} ===\n{entry['text']}")
        benchmark.extra_info[box_name] = entry["text"]
        layout = entry["layout"]
        # The SR-dominated bulk data (lineitem) leaves the H-SSD for the
        # cost-effective sequential classes, as in the paper's Figure 4.
        assert layout.class_name_of("lineitem") != "H-SSD"
        assert layout.satisfies_capacity()
