"""Figure 3 / Figure 4: original TPC-H workload at relative SLA 0.5 (both boxes).

Both benchmarks are thin spec declarations over the experiment orchestrator:
the figure's spec matrix is diffed against the session results store, only
missing arms run, and the assertions read the assembled store payloads --
Figure 4 reuses the very rows the Figure 3 benchmark recorded.
"""

import pytest

from conftest import orchestrate, run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig3_tpch_original")


def _evaluation_payload(assembled):
    """Per-box TOC/PSR of every evaluated layout for the BENCH json."""
    return {
        "elapsed_s": run_once.last_elapsed_s,
        "boxes": {
            box_name: {
                evaluation["layout_name"]: {
                    "toc_cents": evaluation["toc_cents"],
                    "psr": evaluation["psr"],
                }
                for evaluation in arm["data"]["evaluations"]
            }
            for box_name, arm in assembled.items()
        },
    }


def test_fig3_original_tpch_sla05(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig3")
    write_bench_json("fig3_tpch_original", _evaluation_payload(assembled))
    for box_name, arm in assembled.items():
        log.info(f"\n=== {box_name} ===\n{arm['text']}")
        benchmark.extra_info[box_name] = arm["text"]
        by_name = {e["layout_name"]: e for e in arm["data"]["evaluations"]}

        # Paper: DOT saves more than 3x TOC against All H-SSD while keeping a
        # 100 % PSR; the simple all-on-one-class layouts are either expensive
        # or miss the SLA.
        assert by_name["DOT"]["toc_cents"] < by_name["All H-SSD"]["toc_cents"] / 2.0
        assert by_name["DOT"]["psr"] >= 0.95
        assert by_name["All H-SSD"]["psr"] == pytest.approx(1.0)
        # DOT never costs more than the Object Advisor baseline.
        assert by_name["DOT"]["toc_cents"] <= by_name["OA"]["toc_cents"] * 1.05


def test_fig4_dot_layouts_for_original_tpch(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig4")
    write_bench_json(
        "fig4_dot_layouts_original",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "assignments": {
                box_name: entry["assignment"] for box_name, entry in assembled.items()
            },
        },
    )
    for box_name, entry in assembled.items():
        log.info(f"\n=== {box_name} ===\n{entry['text']}")
        benchmark.extra_info[box_name] = entry["text"]
        # The SR-dominated bulk data (lineitem) leaves the H-SSD for the
        # cost-effective sequential classes, as in the paper's Figure 4.
        assert entry["assignment"]["lineitem"] != "H-SSD"
        assert entry["satisfies_capacity"]
