"""Microbenchmark: the swappable chunk-scoring kernels (numpy vs compiled).

Not a paper figure -- this benchmark tracks :mod:`repro.core.kernels`, the
layer that lets :class:`~repro.core.batch_eval.BatchLayoutEvaluator` score
candidate chunks through either the interpreted-numpy reference primitives
or numba-jitted single-pass loops (``kernel="compiled"``).  It scores the
same candidate stream through both kernels over identical pre-warmed
estimate tables, asserts the per-candidate TOC vectors are **bitwise**
identical, and records the scoring times and the compiled speedup.

numba is optional: without it the compiled kernel serves the numpy
implementations (``speedup ~ 1.0``) and the >= 3x speedup bar is skipped --
the bench then still pins the bitwise-identity and accounting contracts.

Environment knobs (all optional):

* ``BENCH_KERNEL_TABLES``     -- tables in the synthetic catalog (default 6,
  a ``3^12``-layout space).
* ``BENCH_KERNEL_CANDIDATES`` -- cap on scored candidates (default the full
  ``3^12 = 531441``).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import scenarios
from repro.core.batch_eval import BatchLayoutEvaluator, iter_assignment_chunks
from repro.core.kernels import describe_kernels, get_kernel

from conftest import run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_kernels")

REPEATS = 3


def kernels_run(num_tables: int, candidate_cap: int):
    bundle = scenarios.build(
        "synthetic_scaling_limited", num_tables=num_tables, capacity_fraction=0.45
    )
    objects, system = bundle.objects, bundle.system
    space = len(system) ** len(objects)
    limit = min(space, candidate_cap)
    chunks = [
        matrix for _, matrix in
        iter_assignment_chunks(len(objects), len(system), 4096, stop=limit)
    ]

    # One warmed reference evaluator supplies the dense estimate tables both
    # kernels score against -- no estimator traffic inside the timed loops.
    reference = BatchLayoutEvaluator(
        objects, system, bundle.fresh_estimator(), bundle.workload
    )
    assert reference.warm_signatures()
    dense = reference.dense_response_tables()

    def scoring_pass(kernel_name: str):
        evaluator = BatchLayoutEvaluator(
            objects, system, bundle.fresh_estimator(), bundle.workload,
            kernel=kernel_name,
        )
        evaluator.install_dense_tables(dense)
        warmup_started = time.perf_counter()
        evaluator.evaluate_chunk(chunks[0])  # jit compilation happens here
        warmup_s = time.perf_counter() - warmup_started
        best_s = float("inf")
        toc = None
        for _ in range(REPEATS):
            started = time.perf_counter()
            scored = [evaluator.evaluate_chunk(matrix).toc_cents for matrix in chunks]
            best_s = min(best_s, time.perf_counter() - started)
            toc = np.concatenate(scored)
        return {"kernel": kernel_name, "backend": evaluator.kernel.name,
                "warmup_s": warmup_s, "score_s": best_s}, toc

    numpy_row, numpy_toc = scoring_pass("numpy")
    compiled_row, compiled_toc = scoring_pass("compiled")
    identical = bool(
        numpy_toc.shape == compiled_toc.shape
        and (numpy_toc == compiled_toc).all()
    )
    return {
        "space": space,
        "candidates": int(limit),
        "identical": identical,
        "speedup_compiled": numpy_row["score_s"] / compiled_row["score_s"],
        "kernels": describe_kernels(),
        "rows": [numpy_row, compiled_row],
    }


def test_kernel_scoring(benchmark):
    num_tables = int(os.environ.get("BENCH_KERNEL_TABLES", 6))
    candidate_cap = int(os.environ.get("BENCH_KERNEL_CANDIDATES", 3**12))
    outcome = run_once(benchmark, kernels_run, num_tables, candidate_cap)

    lines = [f"{'kernel':>9s} {'backend':>9s} {'warmup':>9s} {'scoring':>9s}"]
    for row in outcome["rows"]:
        lines.append(
            f"{row['kernel']:>9s} {row['backend']:>9s} "
            f"{row['warmup_s']:>8.3f}s {row['score_s']:>8.3f}s"
        )
    text = "\n".join(lines)
    log.info(
        f"\n{outcome['candidates']} candidates of a {outcome['space']}-layout space; "
        f"compiled speedup {outcome['speedup_compiled']:.2f}x "
        f"(numba: {outcome['kernels']['have_numba']})\n{text}"
    )
    benchmark.extra_info["table"] = text
    benchmark.extra_info["speedup_compiled"] = outcome["speedup_compiled"]

    write_bench_json(
        "kernels",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "space": outcome["space"],
            "candidates": outcome["candidates"],
            "identical": outcome["identical"],
            "speedup_compiled": outcome["speedup_compiled"],
            "kernels": outcome["kernels"],
            "rows": outcome["rows"],
        },
    )

    assert outcome["identical"], "kernel outputs diverged bitwise"
    assert outcome["candidates"] >= 3**10  # enough work for stable timings
    # The raw-speed bar: the jitted loops must beat interpreted numpy by 3x
    # on chunk scoring.  Only asserted when numba actually serves the
    # compiled kernel -- the numpy fallback is exact but not faster.
    if get_kernel("compiled").compiled:
        assert outcome["speedup_compiled"] >= 3.0
    else:
        assert outcome["speedup_compiled"] > 0.0
