"""Figures 5 and 6: modified (ODS-style) TPC-H workload at relative SLA 0.5.

Thin spec declarations over the experiment orchestrator: only arms missing
from the session store run, and Figure 6 assembles from Figure 5's rows.
"""

import pytest

from conftest import orchestrate, run_once, write_bench_json

from repro.obs import log as obs_log
log = obs_log.get_logger("benchmarks.bench_fig5_tpch_modified")


def _evaluation_payload(assembled):
    return {
        "elapsed_s": run_once.last_elapsed_s,
        "boxes": {
            box_name: {
                evaluation["layout_name"]: {
                    "toc_cents": evaluation["toc_cents"],
                    "psr": evaluation["psr"],
                }
                for evaluation in arm["data"]["evaluations"]
            }
            for box_name, arm in assembled.items()
        },
    }


def test_fig5_modified_tpch_sla05(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig5")
    write_bench_json("fig5_tpch_modified", _evaluation_payload(assembled))
    for box_name, arm in assembled.items():
        log.info(f"\n=== {box_name} ===\n{arm['text']}")
        benchmark.extra_info[box_name] = arm["text"]
        by_name = {e["layout_name"]: e for e in arm["data"]["evaluations"]}

        # Paper: with the random-I/O-heavy modified workload the cheap simple
        # layouts fail the SLA while DOT stays (at worst marginally) within
        # the All H-SSD cost -- the tight SLA forces most objects onto the
        # H-SSD, so the saving at SLA 0.5 is small (it widens at 0.25,
        # Figure 7).
        assert by_name["DOT"]["toc_cents"] <= by_name["All H-SSD"]["toc_cents"] * 1.02
        hdd_like = "All HDD" if "All HDD" in by_name else "All HDD RAID 0"
        assert by_name[hdd_like]["psr"] < 1.0
        assert by_name["DOT"]["psr"] >= by_name[hdd_like]["psr"]


def test_fig6_dot_layouts_for_modified_tpch(benchmark):
    assembled = run_once(benchmark, orchestrate, "fig6")
    write_bench_json(
        "fig6_dot_layouts_modified",
        {
            "elapsed_s": run_once.last_elapsed_s,
            "assignments": {
                box_name: entry["assignment"] for box_name, entry in assembled.items()
            },
        },
    )
    for box_name, entry in assembled.items():
        log.info(f"\n=== {box_name} ===\n{entry['text']}")
        benchmark.extra_info[box_name] = entry["text"]
        # The modified workload keeps much more data on the H-SSD than the
        # original workload does (paper Figure 6 vs Figure 4).
        assert entry["space_used_gb"]["H-SSD"] > 0
