"""The uniform solver interface: equality with the legacy paths + sanity.

Two families of tests:

* **Equality** -- each of the four solvers driven through
  ``Solver.solve(EvaluationContext)`` must produce bitwise-identical layouts
  and TOCs to the legacy direct construction it wraps (ES serial batch, ES
  parallel, DOT incremental, MILP, Object Advisor).  Every arm gets a fresh
  estimator with the scenario's exact configuration so no state leaks
  between the old-style and new-style runs.
* **Cross-solver sanity** -- on a tiny plan-stable instance (6 objects x 3
  classes, scan/join workload) the ES optimum lower-bounds every other
  solver's TOC, and the OA / MILP layouts are SLA-feasible.
"""

from __future__ import annotations

import pytest

from repro import scenarios
from repro.core import (
    DOTSolver,
    EvaluationContext,
    ExhaustiveSolver,
    MILPSolver,
    ObjectAdvisorSolver,
    SolveResult,
    Solver,
    get_solver,
    solver_names,
)
from repro.core.dot import DOTOptimizer
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.ilp import MILPPlacement
from repro.core.object_advisor import ObjectAdvisor
from repro.core.profiler import WorkloadProfiler
from repro.exceptions import ConfigurationError, InfeasibleLayoutError
from repro.objects import group_objects
from repro.sla.constraints import RelativeSLA


@pytest.fixture(scope="module")
def small_bundle():
    """The lookup-bearing tiny scenario (plan flips included)."""
    return scenarios.build("synthetic_small")


@pytest.fixture(scope="module")
def sanity_bundle():
    """The plan-stable tiny scenario (scan/join only)."""
    return scenarios.build("synthetic_sanity")


def make_context(bundle, **kwargs):
    """A context over a *fresh* estimator, isolating each test arm."""
    return bundle.context(estimator=bundle.fresh_estimator(), **kwargs)


def legacy_inputs(bundle):
    """(objects, system, estimator, workload, constraint) the legacy way."""
    context = make_context(bundle)
    return (context.objects, context.system, context.estimator,
            context.workload, context.constraint)


# ---------------------------------------------------------------------------
# Equality with the legacy construction paths
# ---------------------------------------------------------------------------

class TestLegacyEquality:
    def test_es_serial_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, constraint = legacy_inputs(small_bundle)
        legacy = ExhaustiveSearch(
            objects, system, estimator, constraint=constraint, max_layouts=1_000_000
        ).search(workload)

        result = ExhaustiveSolver(max_layouts=1_000_000).solve(make_context(small_bundle))
        assert result.layout == legacy.layout
        assert result.toc_cents == legacy.toc_cents
        assert result.evaluated_layouts == legacy.evaluated_layouts
        assert result.raw.__class__.__name__ == "ExhaustiveSearchResult"

    def test_es_parallel_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, constraint = legacy_inputs(small_bundle)
        legacy = ExhaustiveSearch(
            objects, system, estimator, constraint=constraint,
            max_layouts=1_000_000, workers=2,
        ).search(workload)

        result = ExhaustiveSolver(max_layouts=1_000_000, workers=2).solve(
            make_context(small_bundle)
        )
        assert result.layout == legacy.layout
        assert result.toc_cents == legacy.toc_cents
        assert result.stats.batch is not None
        assert result.stats.workers == 2

    def test_es_scalar_path_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, constraint = legacy_inputs(small_bundle)
        legacy = ExhaustiveSearch(
            objects, system, estimator, constraint=constraint,
            max_layouts=1_000_000, batch=False,
        ).search(workload)

        result = ExhaustiveSolver(max_layouts=1_000_000, batch=False).solve(
            make_context(small_bundle)
        )
        assert result.layout == legacy.layout
        assert result.toc_cents == legacy.toc_cents

    def test_dot_incremental_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, constraint = legacy_inputs(small_bundle)
        profiles = WorkloadProfiler(objects, system, estimator).profile(
            workload, mode="estimate"
        )
        legacy = DOTOptimizer(
            objects, system, estimator, constraint=constraint
        ).optimize(workload, profiles)

        result = DOTSolver().solve(make_context(small_bundle))
        assert result.layout == legacy.layout
        assert result.toc_cents == legacy.toc_cents
        assert result.evaluated_layouts == legacy.evaluated_layouts
        assert len(result.raw.history) == len(legacy.history)

    def test_dot_scalar_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, constraint = legacy_inputs(small_bundle)
        profiles = WorkloadProfiler(objects, system, estimator).profile(
            workload, mode="estimate"
        )
        legacy = DOTOptimizer(
            objects, system, estimator, constraint=constraint, incremental=False
        ).optimize(workload, profiles)

        result = DOTSolver(incremental=False).solve(make_context(small_bundle))
        assert result.layout == legacy.layout
        assert result.toc_cents == legacy.toc_cents

    def test_milp_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, _ = legacy_inputs(small_bundle)
        profiles = WorkloadProfiler(objects, system, estimator).profile(
            workload, mode="estimate"
        )
        best_class = system.most_expensive().name
        best_time = sum(
            profiles.io_time_share_ms(group, tuple([best_class] * len(group)))
            for group in group_objects(objects)
        )
        sla_ratio = small_bundle.sla.ratio
        legacy = MILPPlacement(objects, system).solve(
            profiles, io_time_budget_ms=best_time / sla_ratio
        )

        result = MILPSolver().solve(make_context(small_bundle))
        assert result.layout == legacy.layout
        assert result.raw.objective_cents_per_hour == legacy.objective_cents_per_hour
        assert result.raw.io_time_budget_ms == legacy.io_time_budget_ms
        assert result.stats.variables == legacy.variables

    def test_object_advisor_matches_legacy(self, small_bundle):
        objects, system, estimator, workload, _ = legacy_inputs(small_bundle)
        legacy = ObjectAdvisor(objects, system, estimator).recommend(workload)

        result = ObjectAdvisorSolver().solve(make_context(small_bundle))
        assert result.layout == legacy.layout
        assert result.raw.benefits_ms_per_gb == legacy.benefits_ms_per_gb


# ---------------------------------------------------------------------------
# Cross-solver sanity on the plan-stable instance
# ---------------------------------------------------------------------------

class TestCrossSolverSanity:
    @pytest.fixture(scope="class")
    def outcomes(self, sanity_bundle):
        solvers = {
            "es": ExhaustiveSolver(max_layouts=1_000_000),
            "dot": DOTSolver(),
            "milp": MILPSolver(),
            "oa": ObjectAdvisorSolver(),
        }
        return {
            name: solver.solve(make_context(sanity_bundle))
            for name, solver in solvers.items()
        }

    def test_instance_is_small(self, sanity_bundle):
        assert len(sanity_bundle.objects) <= 6
        assert len(sanity_bundle.get_system()) == 3

    def test_all_solvers_produce_layouts(self, outcomes):
        for name, outcome in outcomes.items():
            assert outcome.layout is not None, f"{name} produced no layout"
            assert outcome.feasible, f"{name} reported infeasible"

    def test_oa_and_milp_layouts_are_sla_feasible(self, sanity_bundle, outcomes):
        context = make_context(sanity_bundle)
        checker = context.checker()
        for name in ("oa", "milp"):
            layout = outcomes[name].layout
            report = context.evaluate(layout)
            check = checker.check(layout, report.run_result)
            assert check.feasible, f"{name} layout violates the SLA or capacity"
            assert outcomes[name].psr == pytest.approx(1.0)

    def test_es_optimum_lower_bounds_every_solver(self, outcomes):
        es_toc = outcomes["es"].toc_cents
        for name in ("dot", "milp", "oa"):
            assert outcomes[name].toc_cents >= es_toc * (1.0 - 1e-12), (
                f"{name} beat the exhaustive optimum, which is impossible "
                f"for an SLA-feasible layout"
            )

    def test_dot_close_to_es_optimum(self, outcomes):
        # The greedy walk stays within the paper's empirical gap with margin.
        assert outcomes["dot"].toc_cents <= outcomes["es"].toc_cents * 1.5


# ---------------------------------------------------------------------------
# Protocol and registry behaviour
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_all_four_are_registered(self):
        assert set(solver_names()) >= {"dot", "es", "milp", "oa"}

    def test_get_solver_instantiates_with_options(self):
        solver = get_solver("es", workers=2, max_layouts=10)
        assert isinstance(solver, ExhaustiveSolver)
        assert solver.workers == 2 and solver.max_layouts == 10

    def test_get_solver_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_solver("simulated-annealing")

    def test_instances_satisfy_the_protocol(self):
        for name in ("dot", "es", "milp", "oa"):
            assert isinstance(get_solver(name), Solver)

    def test_es_budget_is_a_wall_clock_deadline(self, small_bundle):
        # budget is a hard deadline in seconds, uniform across solvers: a
        # zero-second budget must cut the enumeration short (degraded, with
        # an incident recorded), proving the deadline reaches the search.
        result = ExhaustiveSolver().solve(make_context(small_bundle), budget=0.0)
        assert result.raw.timed_out
        assert result.stats.degraded
        assert result.stats.incidents
        assert result.stats.deadline_s == 0.0

    def test_es_without_budget_is_not_degraded(self, small_bundle):
        result = ExhaustiveSolver().solve(make_context(small_bundle))
        assert not result.stats.degraded
        assert result.stats.incidents == []

    def test_milp_without_relative_sla_needs_explicit_budget(self, small_bundle):
        context = make_context(small_bundle, sla=None)
        with pytest.raises(ConfigurationError):
            MILPSolver().solve(context)

    def test_require_layout_raises_when_infeasible(self):
        result = SolveResult(
            solver="dot", layout=None, toc_report=None, feasible=False, stats=None
        )
        assert result.toc_cents == float("inf")
        with pytest.raises(InfeasibleLayoutError):
            result.require_layout()

    def test_solver_result_views_expose_uniform_fields(self, small_bundle):
        result = DOTSolver().solve(make_context(small_bundle))
        assert result.solver == "dot"
        assert result.elapsed_s == result.stats.elapsed_s > 0.0
        assert 0.0 <= result.psr <= 1.0


class TestContext:
    def test_context_resolves_relative_sla(self, small_bundle):
        context = make_context(small_bundle)
        assert context.constraint is not None
        assert context.sla is not None and context.sla.ratio == 0.5

    def test_context_profiles_are_lazy_and_cached(self, small_bundle):
        context = make_context(small_bundle)
        assert context.profiles is None
        first = context.get_profiles()
        assert context.get_profiles() is first

    def test_context_shares_one_estimate_cache(self, small_bundle):
        context = make_context(small_bundle)
        evaluator = context.incremental_evaluator()
        assert evaluator is not None
        assert evaluator.cache is context.estimate_cache
        batch = context.batch_evaluator()
        assert batch is not None
        assert batch.cache is context.estimate_cache

    def test_batch_fallback_on_cost_override(self, small_bundle):
        context = make_context(small_bundle, cost_override=lambda layout: 1.0)
        assert context.batch_evaluator() is None


class TestRunSolverMatrix:
    def test_matrix_preserves_order_and_names(self, sanity_bundle):
        from repro.experiments import run_solver_matrix

        results = run_solver_matrix(
            make_context(sanity_bundle),
            [DOTSolver(), ExhaustiveSolver(max_layouts=1_000_000)],
        )
        assert list(results) == ["dot", "es"]

    def test_duplicate_solver_names_are_refused_before_running(self, sanity_bundle):
        from repro.experiments import run_solver_matrix

        with pytest.raises(ConfigurationError, match="duplicate solver names"):
            run_solver_matrix(
                make_context(sanity_bundle),
                [ExhaustiveSolver(), ExhaustiveSolver(workers=2)],
            )

    def test_distinct_instance_names_allow_same_type_comparisons(self, sanity_bundle):
        from repro.experiments import run_solver_matrix

        serial = ExhaustiveSolver(max_layouts=1_000_000)
        parallel = ExhaustiveSolver(max_layouts=1_000_000, workers=2)
        parallel.name = "es-parallel"
        results = run_solver_matrix(make_context(sanity_bundle), [serial, parallel])
        assert results["es"].layout == results["es-parallel"].layout
        assert results["es"].toc_cents == results["es-parallel"].toc_cents
