"""Tests for the durable experiment results store (repro.experiments.store).

Covers the store's contract end to end: spec signatures are content
addresses (stable under knob spelling, changed by any knob change), payloads
round-trip bitwise, duplicate runs deduplicate, two *processes* can append
to one store concurrently, and tampered/maimed/foreign files are refused
with typed errors instead of silently misread.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import (
    CheckpointCorruptionError,
    ConfigurationError,
    StoreSchemaError,
)
from repro.experiments.store import (
    SCHEMA_VERSION,
    ExperimentSpec,
    ResultsStore,
    dump_payload,
)
from repro.obs.recorder import RunRecord
from repro.resilience.faults import corrupt_file


def spec(**knobs) -> ExperimentSpec:
    return ExperimentSpec(
        experiment="tpch", scenario="tpch_original", solver="dot", seed=7, knobs=knobs
    )


PAYLOAD = {
    "data": {"toc_cents": 1.000000000000003, "psr": 0.9512381, "names": ["a", "b"]},
    "timing": {"elapsed_s": 0.25},
    "text": "table",
}


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------

class TestSignatures:
    def test_same_content_same_signature_regardless_of_spelling(self):
        a = spec(box="Box 1", sla_ratio=0.5, limits=[1.0, 2.0])
        b = ExperimentSpec(
            experiment="tpch",
            scenario="tpch_original",
            solver="dot",
            seed=7,
            # Different key insertion order, tuple instead of list.
            knobs={"limits": (1.0, 2.0), "sla_ratio": 0.5, "box": "Box 1"},
        )
        assert a.signature == b.signature
        assert a.canonical_json() == b.canonical_json()

    def test_any_knob_change_changes_the_signature(self):
        base = spec(box="Box 1", sla_ratio=0.5)
        assert base.signature != spec(box="Box 2", sla_ratio=0.5).signature
        assert base.signature != spec(box="Box 1", sla_ratio=0.25).signature
        assert base.signature != spec(box="Box 1", sla_ratio=0.5, extra=1).signature

    def test_non_knob_fields_feed_the_signature_too(self):
        base = spec(box="Box 1")
        changed = ExperimentSpec(
            experiment="tpch", scenario="tpch_original", solver="dot",
            seed=8, knobs={"box": "Box 1"},
        )
        assert base.signature != changed.signature

    def test_signature_is_stable_across_processes(self):
        reference = spec(box="Box 1", sla_ratio=0.5).signature
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.experiments.store import ExperimentSpec\n"
            "print(ExperimentSpec(experiment='tpch', scenario='tpch_original',"
            " solver='dot', seed=7,"
            " knobs={'box': 'Box 1', 'sla_ratio': 0.5}).signature)\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", script, src],
            capture_output=True, text=True, check=True,
        )
        assert result.stdout.strip() == reference

    def test_nan_and_inf_knobs_are_refused(self):
        with pytest.raises(ConfigurationError):
            spec(bad=float("nan"))
        with pytest.raises(ConfigurationError):
            spec(bad=float("inf"))

    def test_non_string_mapping_keys_are_refused(self):
        with pytest.raises(ConfigurationError):
            spec(bad={1: "x"})

    def test_unserializable_knob_types_are_refused(self):
        with pytest.raises(ConfigurationError):
            spec(bad={"a", "b"})

    def test_empty_experiment_name_is_refused(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec(experiment="")

    def test_from_dict_round_trip_and_unknown_field_refusal(self):
        original = spec(box="Box 1", sla_ratio=0.5)
        rebuilt = ExperimentSpec.from_dict(json.loads(original.canonical_json()))
        assert rebuilt == original
        assert rebuilt.signature == original.signature
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict({"experiment": "tpch", "surprise": 1})


# ---------------------------------------------------------------------------
# Round-trip, dedup
# ---------------------------------------------------------------------------

class TestRoundTrip:
    def test_write_read_identical(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        s = spec(box="Box 1")
        record = RunRecord(
            run_id="exp-test", kind="experiment", solver="dot",
            scenario="tpch_original", git_rev="abc1234", seed=7,
            created_unix_s=123.5, elapsed_s=0.25,
            stats={"attempts": 1}, metrics={"counter": 2},
        )
        store.record(s, PAYLOAD, record)

        loaded = store.get(s)
        assert loaded is not None
        assert loaded.spec == s
        assert loaded.signature == s.signature
        assert loaded.payload == PAYLOAD  # bitwise float round-trip
        assert loaded.record == record
        assert store.payload(s) == PAYLOAD
        assert s in store
        assert len(store) == 1

    def test_reopen_preserves_rows(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ResultsStore(path).record(spec(box="Box 1"), PAYLOAD)
        reopened = ResultsStore(path)
        assert reopened.payload(spec(box="Box 1")) == PAYLOAD

    def test_default_provenance_is_filled_in(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        stored = store.record(spec(box="Box 1"), PAYLOAD)
        assert stored.record.kind == "experiment"
        assert stored.record.solver == "dot"
        assert stored.record.run_id.startswith("exp-")

    def test_duplicate_runs_deduplicate_first_write_wins(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        s = spec(box="Box 1")
        store.record(s, PAYLOAD)
        other = dict(PAYLOAD, text="a different run of the same spec")
        stored = store.record(s, other)
        assert len(store) == 1
        assert stored.payload == PAYLOAD  # the first write, not the second

    def test_missing_preserves_matrix_order(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        specs = [spec(box=f"Box {i}") for i in range(5)]
        store.record(specs[1], PAYLOAD)
        store.record(specs[3], PAYLOAD)
        assert store.missing(specs) == [specs[0], specs[2], specs[4]]

    def test_iteration_in_insertion_order(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        specs = [spec(box=f"Box {i}") for i in range(3)]
        for s in specs:
            store.record(s, PAYLOAD)
        assert [record.spec for record in store] == specs
        assert store.signatures() == [s.signature for s in specs]


# ---------------------------------------------------------------------------
# Concurrent writers (two processes appending to one store)
# ---------------------------------------------------------------------------

_WRITER_SCRIPT = """
import sys
sys.path.insert(0, sys.argv[1])
from repro.experiments.store import ExperimentSpec, ResultsStore

store = ResultsStore(sys.argv[2])
offset = int(sys.argv[3])
for i in range(20):
    spec = ExperimentSpec(
        experiment="concurrent", solver="w", seed=0,
        knobs={"writer": offset, "i": i},
    )
    store.record(spec, {"data": {"writer": offset, "i": i}})
# Both writers also race on one shared spec; exactly one row must win.
shared = ExperimentSpec(experiment="concurrent", solver="w", seed=0,
                        knobs={"shared": True})
store.record(shared, {"data": {"winner": offset}})
print(len(store.signatures()))
"""


class TestConcurrentWriters:
    def test_two_processes_appending_lose_nothing(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        src = str(Path(__file__).resolve().parent.parent / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT, src, str(path), str(offset)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for offset in (0, 1)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
        store = ResultsStore(path)
        # 20 unique specs per writer plus exactly one shared row.
        assert len(store) == 41
        winners = [
            record.payload["data"]["winner"]
            for record in store
            if record.spec.knobs.get("shared")
        ]
        assert winners in ([0], [1])  # one winner, never both or neither


# ---------------------------------------------------------------------------
# Refusals: schema versions, tampering, damage
# ---------------------------------------------------------------------------

class TestRefusals:
    def test_non_sqlite_file_is_refused(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        path.write_text("{\"this\": \"is json, not sqlite\"}")
        with pytest.raises(CheckpointCorruptionError):
            ResultsStore(path)

    @pytest.mark.parametrize("mode", ["truncate", "junk"])
    def test_maimed_database_is_refused(self, tmp_path, mode):
        path = tmp_path / "exp.sqlite"
        store = ResultsStore(path)
        store.record(spec(box="Box 1"), PAYLOAD)
        corrupt_file(path, mode=mode)
        with pytest.raises(CheckpointCorruptionError):
            ResultsStore(path)

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ResultsStore(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        with pytest.raises(StoreSchemaError) as excinfo:
            ResultsStore(path)
        assert excinfo.value.found == SCHEMA_VERSION + 1
        assert excinfo.value.expected == SCHEMA_VERSION

    def test_missing_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        ResultsStore(path)
        with sqlite3.connect(path) as conn:
            conn.execute("DELETE FROM meta WHERE key = 'schema_version'")
        with pytest.raises(StoreSchemaError):
            ResultsStore(path)

    def test_sqlite_file_without_our_tables_is_refused(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        with sqlite3.connect(path) as conn:
            conn.execute("CREATE TABLE unrelated (x INTEGER)")
            conn.execute("INSERT INTO unrelated VALUES (1)")
        with pytest.raises((StoreSchemaError, CheckpointCorruptionError)):
            ResultsStore(path)

    def test_tampered_payload_fails_its_checksum_on_read(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        store = ResultsStore(path)
        s = spec(box="Box 1")
        store.record(s, PAYLOAD)
        tampered = dict(PAYLOAD)
        tampered["data"] = {"toc_cents": 999.0}
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE runs SET payload_json = ? WHERE signature = ?",
                (dump_payload(tampered), s.signature),
            )
        with pytest.raises(CheckpointCorruptionError):
            ResultsStore(path).get(s)

    def test_tampered_spec_fails_its_signature_on_read(self, tmp_path):
        path = tmp_path / "exp.sqlite"
        store = ResultsStore(path)
        s = spec(box="Box 1")
        store.record(s, PAYLOAD)
        forged = spec(box="Box 2")
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE runs SET spec_json = ? WHERE signature = ?",
                (forged.canonical_json(), s.signature),
            )
        with pytest.raises(CheckpointCorruptionError):
            ResultsStore(path).get(s)

    def test_payload_with_nan_is_refused_at_write_time(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        with pytest.raises(ValueError):
            store.record(spec(box="Box 1"), {"data": {"bad": float("nan")}})
