"""The DOT optimizer, exhaustive search, Object Advisor, simple layouts and advisor facade."""

import pytest

from repro.core.advisor import ProvisioningAdvisor
from repro.core.dot import DOTOptimizer
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.layout import Layout
from repro.core.object_advisor import ObjectAdvisor
from repro.core.profiler import WorkloadProfiler
from repro.core.simple_layouts import all_on, index_data_split, simple_layouts
from repro.core.toc import TOCModel
from repro.exceptions import ConfigurationError, InfeasibleLayoutError
from repro.sla.constraints import RelativeSLA, ResponseTimeConstraint
from repro.storage import catalog as storage_catalog


@pytest.fixture
def profiles(small_objects, box1_system, small_estimator, small_workload):
    profiler = WorkloadProfiler(small_objects, box1_system, small_estimator)
    return profiler.profile(small_workload, mode="estimate")


@pytest.fixture
def loose_constraint(small_objects, box1_system, small_estimator, small_workload):
    """A relative SLA of 0.25 resolved against estimated all-H-SSD performance."""
    toc = TOCModel(small_estimator)
    reference = toc.evaluate(
        Layout.uniform(small_objects, box1_system, "H-SSD"), small_workload, mode="estimate"
    )
    return RelativeSLA(0.25).resolve(reference.run_result)


class TestSimpleLayouts:
    def test_all_on(self, small_objects, box1_system):
        layout = all_on(small_objects, box1_system, "L-SSD")
        assert set(layout.assignment().values()) == {"L-SSD"}

    def test_index_data_split(self, small_objects, box1_system):
        layout = index_data_split(small_objects, box1_system, "H-SSD", "L-SSD")
        assert layout.class_name_of("fact_pkey") == "H-SSD"
        assert layout.class_name_of("fact") == "L-SSD"

    def test_index_data_split_unknown_class(self, small_objects, box1_system):
        with pytest.raises(ConfigurationError):
            index_data_split(small_objects, box1_system, "H-SSD", "floppy")

    def test_simple_layouts_cover_every_class(self, small_objects, box1_system):
        layouts = simple_layouts(small_objects, box1_system)
        for class_name in box1_system.class_names:
            assert f"All {class_name}" in layouts
        assert "Index H-SSD Data L-SSD" in layouts

    def test_simple_layouts_on_box2_use_lssd_raid(self, small_objects, box2_system):
        layouts = simple_layouts(small_objects, box2_system)
        assert "Index H-SSD Data L-SSD RAID 0" in layouts


class TestDOTOptimizer:
    def test_initial_layout_is_all_most_expensive(self, small_objects, box1_system,
                                                   small_estimator):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator)
        initial = dot.initial_layout()
        assert set(initial.assignment().values()) == {"H-SSD"}

    def test_unconstrained_dot_moves_everything_cheap(self, small_objects, box1_system,
                                                      small_estimator, small_workload, profiles):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator, constraint=None)
        result = dot.optimize(small_workload, profiles)
        assert result.feasible
        # Without an SLA the TOC-optimal layout should be at least as cheap as
        # leaving everything on the H-SSD.
        assert result.toc_cents <= result.initial_report.toc_cents

    def test_constrained_dot_meets_constraint_in_estimates(
        self, small_objects, box1_system, small_estimator, small_workload, profiles,
        loose_constraint
    ):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator,
                           constraint=loose_constraint)
        result = dot.optimize(small_workload, profiles)
        assert result.feasible
        check = loose_constraint.check(result.toc_report.run_result)
        assert check.satisfied

    def test_dot_toc_not_worse_than_initial(self, small_objects, box1_system, small_estimator,
                                            small_workload, profiles, loose_constraint):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator,
                           constraint=loose_constraint)
        result = dot.optimize(small_workload, profiles)
        assert result.toc_cents <= result.initial_report.toc_cents

    def test_tighter_sla_never_gives_cheaper_toc(self, small_objects, box1_system,
                                                 small_estimator, small_workload, profiles):
        toc = TOCModel(small_estimator)
        reference = toc.evaluate(
            Layout.uniform(small_objects, box1_system, "H-SSD"), small_workload, mode="estimate"
        )
        results = {}
        for ratio in (0.9, 0.25):
            constraint = RelativeSLA(ratio).resolve(reference.run_result)
            dot = DOTOptimizer(small_objects, box1_system, small_estimator, constraint=constraint)
            results[ratio] = dot.optimize(small_workload, profiles).toc_cents
        assert results[0.9] >= results[0.25]

    def test_history_records_every_move(self, small_objects, box1_system, small_estimator,
                                        small_workload, profiles):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator)
        result = dot.optimize(small_workload, profiles)
        assert len(result.history) == result.evaluated_layouts - 1
        assert any(trace.accepted for trace in result.history)

    def test_impossible_constraint_reports_infeasible(self, small_objects, box1_system,
                                                      small_estimator, small_workload, profiles,
                                                      small_catalog):
        impossible = ResponseTimeConstraint(
            {name: 1e-9 for name in small_workload.query_names}
        )
        dot = DOTOptimizer(small_objects, box1_system, small_estimator, constraint=impossible)
        result = dot.optimize(small_workload, profiles)
        assert not result.feasible
        with pytest.raises(InfeasibleLayoutError):
            result.require_layout()

    def test_capacity_relaxed_walk_recovers_from_overfull_start(
        self, small_objects, box1_system, small_estimator, small_workload, profiles
    ):
        # H-SSD capacity below the database size: the initial layout violates
        # capacity, but the walk should still find a feasible layout.
        total = sum(obj.size_gb for obj in small_objects)
        limited = box1_system.with_capacity_limits({"H-SSD": total * 0.4})
        profiler = WorkloadProfiler(small_objects, limited, small_estimator)
        limited_profiles = profiler.profile(small_workload, mode="estimate")
        dot = DOTOptimizer(small_objects, limited, small_estimator, constraint=None)
        result = dot.optimize(small_workload, limited_profiles)
        assert result.feasible
        assert result.layout.satisfies_capacity()

    def test_validation_returns_measured_report(self, small_objects, box1_system,
                                                small_estimator, small_workload, profiles,
                                                loose_constraint):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator,
                           constraint=loose_constraint)
        result = dot.optimize(small_workload, profiles)
        check, report = dot.validate(result.layout, small_workload, loose_constraint)
        assert report.toc_cents > 0
        assert check.capacity_ok

    def test_independent_objects_mode_uses_singleton_groups(self, small_objects, box1_system,
                                                            small_estimator):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator, independent_objects=True)
        assert all(len(group) == 1 for group in dot.groups)
        assert len(dot.groups) == len(small_objects)


class TestExhaustiveSearch:
    def test_space_size(self, small_objects, box1_system, small_estimator):
        search = ExhaustiveSearch(small_objects, box1_system, small_estimator)
        assert search.search_space_size() == 3 ** len(small_objects)

    def test_per_group_space_size(self, small_objects, box1_system, small_estimator):
        search = ExhaustiveSearch(small_objects, box1_system, small_estimator, per_group=True)
        assert search.search_space_size() == 81  # two groups of size two

    def test_layout_budget_enforced(self, small_objects, box1_system, small_estimator):
        search = ExhaustiveSearch(small_objects, box1_system, small_estimator, max_layouts=10)
        with pytest.raises(ConfigurationError):
            search.search(None)

    def test_es_finds_layout_at_least_as_cheap_as_dot(
        self, small_objects, box1_system, small_estimator, small_workload, profiles,
        loose_constraint
    ):
        dot = DOTOptimizer(small_objects, box1_system, small_estimator,
                           constraint=loose_constraint)
        dot_result = dot.optimize(small_workload, profiles)
        search = ExhaustiveSearch(small_objects, box1_system, small_estimator,
                                  constraint=loose_constraint)
        es_result = search.search(small_workload)
        assert es_result.feasible
        assert es_result.toc_cents <= dot_result.toc_cents * 1.0000001

    def test_dot_close_to_es(self, small_objects, box1_system, small_estimator, small_workload,
                             profiles, loose_constraint):
        """The paper's headline: DOT within ~16 % of exhaustive search."""
        dot_result = DOTOptimizer(
            small_objects, box1_system, small_estimator, constraint=loose_constraint
        ).optimize(small_workload, profiles)
        es_result = ExhaustiveSearch(
            small_objects, box1_system, small_estimator, constraint=loose_constraint
        ).search(small_workload)
        assert dot_result.toc_cents <= es_result.toc_cents * 1.30

    def test_dot_evaluates_far_fewer_layouts_than_es(self, small_objects, box1_system,
                                                     small_estimator, small_workload, profiles):
        dot_result = DOTOptimizer(small_objects, box1_system, small_estimator).optimize(
            small_workload, profiles
        )
        es = ExhaustiveSearch(small_objects, box1_system, small_estimator)
        assert dot_result.evaluated_layouts < es.search_space_size() / 3

    def test_pinned_objects_included_in_candidates(self, small_objects, box1_system,
                                                   small_estimator, small_workload):
        movable = [obj for obj in small_objects if obj.table == "fact"]
        pinned = [obj for obj in small_objects if obj.table != "fact"]
        search = ExhaustiveSearch(movable, box1_system, small_estimator,
                                  pinned_objects=pinned, pinned_class="HDD RAID 0")
        result = search.search(small_workload)
        assert result.feasible
        for obj in pinned:
            assert result.layout.class_name_of(obj.name) == "HDD RAID 0"

    def test_infeasible_constraint(self, small_objects, box1_system, small_estimator,
                                   small_workload):
        impossible = ResponseTimeConstraint({name: 1e-9 for name in small_workload.query_names})
        search = ExhaustiveSearch(small_objects, box1_system, small_estimator,
                                  constraint=impossible)
        result = search.search(small_workload)
        assert not result.feasible
        assert result.toc_cents == float("inf")


class TestObjectAdvisor:
    def test_oa_promotes_high_benefit_objects(self, small_objects, box1_system, small_catalog,
                                              small_workload):
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, noise=0.0)
        oa = ObjectAdvisor(small_objects, box1_system, estimator)
        result = oa.recommend(small_workload)
        assert result.layout.name == "OA"
        # The object with the highest benefit-per-GB must be promoted off the
        # cheapest class.
        best = max(result.benefits_ms_per_gb, key=result.benefits_ms_per_gb.get)
        assert result.layout.class_name_of(best) != box1_system.cheapest().name

    def test_oa_misses_plan_layout_interaction(self, small_objects, box1_system, small_catalog,
                                               small_workload):
        """OA profiles on the all-cheapest layout, where the optimizer never
        touches ``fact_pkey`` (scans win on the HDD), so OA sees zero benefit
        for it and leaves it on the cheapest class -- the blindness the paper
        contrasts DOT against."""
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, noise=0.0)
        oa = ObjectAdvisor(small_objects, box1_system, estimator)
        result = oa.recommend(small_workload)
        assert result.benefits_ms_per_gb["fact_pkey"] == pytest.approx(0.0)
        assert result.layout.class_name_of("fact_pkey") == box1_system.cheapest().name

    def test_oa_respects_budget(self, small_objects, box1_system, small_estimator,
                                small_workload):
        oa = ObjectAdvisor(small_objects, box1_system, small_estimator)
        tight = oa.recommend(small_workload, budgets_gb={"H-SSD": 0.0, "L-SSD": 0.0})
        assert set(tight.layout.assignment().values()) == {box1_system.cheapest().name}

    def test_oa_benefits_are_per_gb(self, small_objects, box1_system, small_estimator,
                                    small_workload):
        oa = ObjectAdvisor(small_objects, box1_system, small_estimator)
        result = oa.recommend(small_workload)
        assert set(result.benefits_ms_per_gb) == {obj.name for obj in small_objects}


class TestProvisioningAdvisor:
    def test_recommendation_pipeline(self, small_objects, box1_system, small_catalog,
                                     small_workload):
        from repro.dbms.buffer_pool import BufferPool
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, buffer_pool=BufferPool(1.0), noise=0.01)
        advisor = ProvisioningAdvisor(small_objects, box1_system, estimator)
        recommendation = advisor.recommend(small_workload, sla=RelativeSLA(0.25))
        assert recommendation.layout.name == "DOT"
        assert recommendation.toc_cents <= recommendation.baseline_report.toc_cents
        assert 0.0 <= recommendation.psr <= 1.0
        assert "Recommendation" in recommendation.describe()

    def test_recommendation_without_sla(self, small_objects, box1_system, small_estimator,
                                        small_workload):
        advisor = ProvisioningAdvisor(small_objects, box1_system, small_estimator)
        recommendation = advisor.recommend(small_workload, sla=None)
        assert recommendation.constraint is None
        assert recommendation.psr == 1.0

    def test_absolute_constraint_passthrough(self, small_objects, box1_system, small_estimator,
                                             small_workload):
        constraint = ResponseTimeConstraint({name: 1e12 for name in small_workload.query_names})
        advisor = ProvisioningAdvisor(small_objects, box1_system, small_estimator)
        assert advisor.resolve_constraint(small_workload, constraint) is constraint

    def test_impossible_sla_raises_after_budget_exhausted(self, small_objects, box1_system,
                                                          small_estimator, small_workload):
        impossible = ResponseTimeConstraint({name: 1e-9 for name in small_workload.query_names})
        advisor = ProvisioningAdvisor(small_objects, box1_system, small_estimator)
        with pytest.raises(InfeasibleLayoutError):
            advisor.recommend(small_workload, sla=impossible, max_refinements=0,
                              max_relaxations=2)

    def test_slightly_infeasible_sla_recovered_by_relaxation(self, small_objects, box1_system,
                                                             small_estimator, small_workload):
        """Caps 10 % below the best-case estimates become satisfiable after the
        advisor's relaxation loop loosens them."""
        toc = TOCModel(small_estimator)
        reference = toc.evaluate(
            Layout.uniform(small_objects, box1_system, "H-SSD"), small_workload, mode="estimate"
        )
        tight = ResponseTimeConstraint(
            {name: time_ms * 0.9 for name, time_ms in reference.run_result.per_query_times_ms}
        )
        advisor = ProvisioningAdvisor(small_objects, box1_system, small_estimator)
        recommendation = advisor.recommend(
            small_workload, sla=tight, max_refinements=0, max_relaxations=3,
            relaxation_factor=1.5,
        )
        assert recommendation.layout is not None
        assert recommendation.relaxations_used >= 1
