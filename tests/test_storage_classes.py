"""Storage classes, storage systems, the device simulator and the micro-benchmark."""

import pytest

from repro.exceptions import ConfigurationError, UnknownStorageClassError
from repro.storage import catalog
from repro.storage.io_profile import IOType
from repro.storage.microbench import MicroBenchmark, MicroBenchmarkConfig, format_table1
from repro.storage.simulator import DeviceSimulator, IORequest
from repro.storage.storage_class import StorageClass, StorageSystem


class TestStorageClass:
    def test_from_device_derives_price_and_capacity(self):
        sc = catalog.hssd()
        assert sc.capacity_gb == 80
        assert sc.price_cents_per_gb_hour == pytest.approx(1.69e-1, rel=0.05)

    def test_storage_cost_scales_with_usage(self):
        sc = catalog.hdd()
        assert sc.storage_cost_cents_per_hour(100) == pytest.approx(
            100 * sc.price_cents_per_gb_hour
        )

    def test_storage_cost_rejects_negative_usage(self):
        with pytest.raises(ValueError):
            catalog.hdd().storage_cost_cents_per_hour(-1)

    def test_with_capacity_preserves_price(self):
        limited = catalog.hssd().with_capacity(21.0)
        assert limited.capacity_gb == 21.0
        assert limited.price_cents_per_gb_hour == catalog.hssd().price_cents_per_gb_hour

    def test_invalid_price_rejected(self, flat_profile):
        with pytest.raises(ConfigurationError):
            StorageClass("x", capacity_gb=10, price_cents_per_gb_hour=0, io_profile=flat_profile)

    def test_service_time_delegates_to_profile(self):
        assert catalog.hdd().service_time_ms(IOType.RAND_READ, 1) == pytest.approx(13.32)


class TestStorageSystem:
    def test_lookup_and_contains(self, box1_system):
        assert "H-SSD" in box1_system
        assert box1_system["H-SSD"].name == "H-SSD"

    def test_unknown_class(self, box1_system):
        with pytest.raises(UnknownStorageClassError):
            box1_system["floppy"]

    def test_most_expensive_is_hssd(self, box1_system, box2_system):
        assert box1_system.most_expensive().name == "H-SSD"
        assert box2_system.most_expensive().name == "H-SSD"

    def test_cheapest(self, box1_system, box2_system):
        assert box1_system.cheapest().name == "HDD RAID 0"
        assert box2_system.cheapest().name == "HDD"

    def test_fastest_for_random_read(self, box1_system):
        assert box1_system.fastest_for(IOType.RAND_READ).name == "H-SSD"

    def test_price_and_capacity_vectors(self, box2_system):
        prices = box2_system.price_vector()
        capacities = box2_system.capacity_vector()
        assert set(prices) == set(capacities) == set(box2_system.class_names)
        assert capacities["HDD"] == 500

    def test_with_capacity_limits(self, box2_system):
        limited = box2_system.with_capacity_limits({"H-SSD": 21.0})
        assert limited["H-SSD"].capacity_gb == 21.0
        assert limited["HDD"].capacity_gb == 500

    def test_subset(self, box1_system):
        subset = box1_system.subset(["H-SSD", "L-SSD"])
        assert set(subset.class_names) == {"H-SSD", "L-SSD"}

    def test_subset_empty_rejected(self, box1_system):
        with pytest.raises(ConfigurationError):
            box1_system.subset(["does-not-exist"])

    def test_duplicate_names_rejected(self):
        sc = catalog.hdd()
        with pytest.raises(ConfigurationError):
            StorageSystem([sc, sc])

    def test_empty_system_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageSystem([])

    def test_iteration_order_preserved(self, box1_system):
        assert [sc.name for sc in box1_system] == list(box1_system.class_names)


class TestDeviceSimulator:
    def test_deterministic_without_jitter(self):
        sim = DeviceSimulator(catalog.hdd(), concurrency=1, jitter=0.0)
        elapsed = sim.run([IORequest(IOType.RAND_READ, 10)])
        assert elapsed == pytest.approx(10 * 13.32)

    def test_counters_accumulate(self):
        sim = DeviceSimulator(catalog.hdd(), jitter=0.0)
        sim.run([IORequest(IOType.SEQ_READ, 5), IORequest(IOType.SEQ_READ, 5)])
        assert sim.counters.requests[IOType.SEQ_READ] == 10
        assert sim.observed_service_time_ms(IOType.SEQ_READ) == pytest.approx(0.072)

    def test_jitter_keeps_mean_close(self):
        sim = DeviceSimulator(catalog.hssd(), jitter=0.05, seed=1)
        sim.run([IORequest(IOType.RAND_READ, 100) for _ in range(200)])
        observed = sim.observed_service_time_ms(IOType.RAND_READ)
        assert observed == pytest.approx(0.091, rel=0.05)

    def test_concurrency_selects_calibration(self):
        sim = DeviceSimulator(catalog.hdd(), concurrency=300, jitter=0.0)
        assert sim.mean_service_time_ms(IOType.RAND_READ) == pytest.approx(8.903)

    def test_reset(self):
        sim = DeviceSimulator(catalog.hdd(), jitter=0.0)
        sim.submit(IORequest(IOType.SEQ_WRITE, 3))
        sim.reset()
        assert sim.counters.total_requests() == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            IORequest(IOType.SEQ_READ, -1)

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            DeviceSimulator(catalog.hdd(), concurrency=0)


class TestMicroBenchmark:
    def test_profile_recovers_calibrated_latencies(self):
        bench = MicroBenchmark(jitter=0.0)
        row = bench.profile(catalog.hdd(), concurrency=1)
        assert row.seq_read_ms == pytest.approx(0.072, rel=0.02)
        assert row.rand_read_ms == pytest.approx(13.32, rel=0.02)
        assert row.seq_write_ms == pytest.approx(0.012, rel=0.02)
        assert row.rand_write_ms == pytest.approx(10.15, rel=0.05)

    def test_profile_at_concurrency_300(self):
        bench = MicroBenchmark(jitter=0.0)
        row = bench.profile(catalog.hssd(), concurrency=300)
        assert row.rand_read_ms == pytest.approx(0.024, rel=0.05)

    def test_profile_all_covers_all_classes(self, paper_storage_classes):
        bench = MicroBenchmark(jitter=0.01, config=MicroBenchmarkConfig(table_pages=200))
        table = bench.profile_all(paper_storage_classes, (1,))
        assert set(table) == set(paper_storage_classes)

    def test_rw_derivation_subtracts_rr(self):
        """The RW estimate is the update time minus its random-read component."""
        bench = MicroBenchmark(jitter=0.0)
        row = bench.profile(catalog.lssd(), concurrency=1)
        # L-SSD random writes are far slower than its random reads (Table 1).
        assert row.rand_write_ms > 10 * row.rand_read_ms

    def test_format_table1_contains_all_classes(self, paper_storage_classes):
        bench = MicroBenchmark(jitter=0.0, config=MicroBenchmarkConfig(table_pages=100))
        rows = bench.profile_all(paper_storage_classes, (1, 300))
        text = format_table1(rows, catalog.PUBLISHED_PRICES_CENTS_PER_GB_HOUR)
        for name in paper_storage_classes:
            assert name in text
        assert "Random Read" in text

    def test_as_dict_round_trip(self):
        bench = MicroBenchmark(jitter=0.0)
        row = bench.profile(catalog.hdd(), 1)
        assert set(row.as_dict()) == set(IOType)
