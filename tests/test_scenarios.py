"""The scenario registry: recipes, bundles and their evaluation contexts."""

from __future__ import annotations

import pytest

from repro import scenarios
from repro.core import EvaluationContext
from repro.exceptions import ConfigurationError
from repro.sla.constraints import RelativeSLA


class TestRegistry:
    def test_builtin_scenarios_are_registered(self):
        names = set(scenarios.scenario_names())
        assert {
            "tpch_original", "tpch_modified", "tpch_es_subset",
            "tpcc_fig8", "fig9_tpcc",
            "synthetic_scaling", "synthetic_scaling_limited",
            "synthetic_small", "synthetic_sanity",
            "tpch_drift_crossfade",
        } <= names

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigurationError):
            scenarios.get("tpcx_nonexistent")

    def test_unknown_override_raises(self):
        with pytest.raises(ConfigurationError):
            scenarios.build("synthetic_small", warehouses=3)

    def test_describe_lists_every_scenario(self):
        table = scenarios.describe()
        for name in scenarios.scenario_names():
            assert name in table

    def test_box_system_names(self):
        assert len(scenarios.box_system("Box 1")) == 3
        assert len(scenarios.box_system("Box 2")) == 3
        assert len(scenarios.box_system("All classes")) == 5
        with pytest.raises(ConfigurationError):
            scenarios.box_system("Box 3")

    def test_box_system_capacity_limits(self):
        limited = scenarios.box_system("Box 1", {"H-SSD": 1.5})
        assert limited["H-SSD"].capacity_gb == 1.5


class TestBundles:
    @pytest.fixture(scope="class")
    def bundle(self):
        return scenarios.build("synthetic_small")

    def test_bundle_carries_constructed_parts(self, bundle):
        assert bundle.objects
        assert bundle.workload.queries
        assert bundle.sla == RelativeSLA(0.5)

    def test_fresh_estimator_is_independent(self, bundle):
        one, two = bundle.fresh_estimator(), bundle.fresh_estimator()
        assert one is not two
        assert one is not bundle.estimator

    def test_objects_named_preserves_order(self, bundle):
        names = [obj.name for obj in bundle.objects]
        subset = bundle.objects_named(reversed(names[:3]))
        assert [obj.name for obj in subset] == names[:3]

    def test_context_resolves_scenario_sla(self, bundle):
        context = bundle.context()
        assert isinstance(context, EvaluationContext)
        assert context.constraint is not None
        assert context.workload is bundle.workload

    def test_context_sla_none_is_unconstrained(self, bundle):
        assert bundle.context(sla=None).constraint is None

    def test_context_override_sla(self, bundle):
        context = bundle.context(sla=RelativeSLA(0.25))
        assert context.sla.ratio == 0.25

    def test_scenario_fixed_system_wins(self):
        limited = scenarios.build("synthetic_scaling_limited", num_tables=2)
        system = limited.get_system()
        total_gb = sum(obj.size_gb for obj in limited.objects)
        assert system["H-SSD"].capacity_gb == pytest.approx(total_gb * 0.45)
        assert limited.context().system is system

    def test_overrides_change_the_build(self):
        two = scenarios.build("synthetic_scaling", num_tables=2)
        three = scenarios.build("synthetic_scaling", num_tables=3)
        assert len(two.objects) == 4
        assert len(three.objects) == 6


class TestScenarioConventions:
    def test_sanity_scenario_has_no_lookups(self):
        bundle = scenarios.build("synthetic_sanity")
        assert all("lookup" not in q.name for q in bundle.workload.queries)

    def test_tpcc_scenarios_profile_on_the_single_testrun_baseline(self):
        bundle = scenarios.build("tpcc_fig8", warehouses=2, concurrency=10)
        assert bundle.profile_mode == "testrun"
        assert bundle.single_baseline_profile
        assert bundle.sla.metric == "throughput"

    def test_fig9_extras_carry_the_hot_groups(self):
        scenario = scenarios.get("fig9_tpcc")
        bundle = scenario.build(warehouses=2, concurrency=10)
        assert bundle.extras["hot_groups"] == ("stock", "order_line", "customer")

    def test_es_subset_extras_carry_the_object_names(self):
        bundle = scenarios.build("tpch_es_subset", scale_factor=1.0, repetitions=1)
        names = bundle.extras["es_object_names"]
        assert len(bundle.objects_named(names)) == len(names) == 8

    def test_drift_bundle_generates_reproducible_epochs(self):
        first = scenarios.build("tpch_drift_crossfade", scale_factor=1.0,
                                num_epochs=4, seed=9)
        second = scenarios.build("tpch_drift_crossfade", scale_factor=1.0,
                                 num_epochs=4, seed=9)
        epochs_a = list(first.extras["generator"].epochs())
        epochs_b = list(second.extras["generator"].epochs())
        assert [e.weights for e in epochs_a] == [e.weights for e in epochs_b]
        assert [e.workload.name for e in epochs_a] == [e.workload.name for e in epochs_b]
