"""SLA constraints, relative SLA resolution and the PSR metric."""

import pytest

from repro.dbms.executor import WorkloadRunResult
from repro.dbms.concurrency import ThroughputEstimate
from repro.exceptions import SLAError
from repro.sla.constraints import RelativeSLA, ResponseTimeConstraint, ThroughputConstraint
from repro.sla.psr import performance_satisfaction_ratio, violations


def dss_result(times):
    """Build a DSS run result from ``[(query, ms), ...]``."""
    result = WorkloadRunResult(workload_name="w", kind="dss", concurrency=1)
    result.per_query_times_ms = list(times)
    result.total_time_s = sum(t for _, t in times) / 1000.0
    return result


def oltp_result(tpm):
    """Build an OLTP run result with the given measured tpm."""
    result = WorkloadRunResult(workload_name="w", kind="oltp", concurrency=300,
                               measured_transaction_fraction=1.0)
    result.throughput = ThroughputEstimate(
        transactions_per_second=tpm / 60.0,
        response_time_ms=10.0,
        bottleneck_class="d",
        bottleneck_busy_ms=1.0,
        population_bound_tps=tpm / 60.0,
        bottleneck_bound_tps=tpm / 60.0,
    )
    return result


class TestResponseTimeConstraint:
    def test_all_within_caps(self):
        constraint = ResponseTimeConstraint({"q1": 100.0, "q2": 50.0})
        check = constraint.check(dss_result([("q1", 80), ("q2", 40)]))
        assert check.satisfied
        assert check.satisfied_fraction == 1.0

    def test_violation_detected(self):
        constraint = ResponseTimeConstraint({"q1": 100.0})
        check = constraint.check(dss_result([("q1", 150), ("q1", 50)]))
        assert not check.satisfied
        assert check.satisfied_fraction == pytest.approx(0.5)
        assert check.violations == ("q1",)

    def test_unconstrained_queries_ignored(self):
        constraint = ResponseTimeConstraint({"q1": 100.0})
        check = constraint.check(dss_result([("q1", 10), ("other", 1e9)]))
        assert check.satisfied

    def test_relaxed_scales_caps(self):
        constraint = ResponseTimeConstraint({"q1": 100.0}).relaxed(2.0)
        assert constraint.caps_ms["q1"] == pytest.approx(200.0)

    def test_cap_for(self):
        constraint = ResponseTimeConstraint({"q1": 100.0})
        assert constraint.cap_for("q1") == 100.0
        assert constraint.cap_for("zzz") is None

    def test_validation(self):
        with pytest.raises(SLAError):
            ResponseTimeConstraint({})
        with pytest.raises(SLAError):
            ResponseTimeConstraint({"q": 0.0})
        with pytest.raises(SLAError):
            ResponseTimeConstraint({"q": 1.0}).relaxed(0.0)


class TestThroughputConstraint:
    def test_floor_satisfied(self):
        constraint = ThroughputConstraint(1000.0)
        assert constraint.check(oltp_result(1500)).satisfied

    def test_floor_violated(self):
        constraint = ThroughputConstraint(1000.0)
        check = constraint.check(oltp_result(500))
        assert not check.satisfied
        assert check.satisfied_fraction == pytest.approx(0.5)

    def test_relaxed_lowers_floor(self):
        constraint = ThroughputConstraint(1000.0).relaxed(2.0)
        assert constraint.min_transactions_per_minute == pytest.approx(500.0)

    def test_applied_to_dss_result_raises(self):
        with pytest.raises(SLAError):
            ThroughputConstraint(10.0).check(dss_result([("q", 1.0)]))


class TestRelativeSLA:
    def test_ratio_validation(self):
        with pytest.raises(SLAError):
            RelativeSLA(0.0)
        with pytest.raises(SLAError):
            RelativeSLA(1.5)
        with pytest.raises(SLAError):
            RelativeSLA(0.5, metric="latency")

    def test_resolve_response_time_caps_are_scaled_baseline(self):
        sla = RelativeSLA(0.5)
        constraint = sla.resolve(dss_result([("q1", 100), ("q2", 10)]))
        assert isinstance(constraint, ResponseTimeConstraint)
        assert constraint.caps_ms["q1"] == pytest.approx(200.0)
        assert constraint.caps_ms["q2"] == pytest.approx(20.0)

    def test_resolve_uses_slowest_instance(self):
        sla = RelativeSLA(0.5)
        constraint = sla.resolve(dss_result([("q1", 100), ("q1", 150)]))
        assert constraint.caps_ms["q1"] == pytest.approx(300.0)

    def test_resolve_throughput(self):
        sla = RelativeSLA(0.25, metric="throughput")
        constraint = sla.resolve(oltp_result(2000))
        assert isinstance(constraint, ThroughputConstraint)
        assert constraint.min_transactions_per_minute == pytest.approx(500.0)

    def test_resolve_empty_baseline_raises(self):
        with pytest.raises(SLAError):
            RelativeSLA(0.5).resolve(dss_result([]))

    def test_tighter_ratio_means_tighter_caps(self):
        baseline = dss_result([("q1", 100)])
        loose = RelativeSLA(0.25).resolve(baseline)
        tight = RelativeSLA(0.5).resolve(baseline)
        assert tight.caps_ms["q1"] < loose.caps_ms["q1"]


class TestPSR:
    def test_psr_full_satisfaction(self):
        constraint = ResponseTimeConstraint({"q1": 100.0})
        assert performance_satisfaction_ratio(constraint, dss_result([("q1", 10)])) == 1.0

    def test_psr_partial(self):
        constraint = ResponseTimeConstraint({"q1": 100.0, "q2": 100.0})
        result = dss_result([("q1", 10), ("q1", 200), ("q2", 10), ("q2", 10)])
        assert performance_satisfaction_ratio(constraint, result) == pytest.approx(0.75)

    def test_violations_lists_failing_queries(self):
        constraint = ResponseTimeConstraint({"q1": 100.0, "q2": 100.0})
        result = dss_result([("q1", 200), ("q2", 10)])
        assert violations(constraint, result) == ("q1",)
