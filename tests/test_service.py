"""Tests for the fault-tolerant multi-tenant advisor service.

Four layers, mirroring the package:

* queue/admission unit tests plus Hypothesis property tests pinning the
  control-plane contracts (no starvation within one rotation, deterministic
  shed decisions, accepted-at-admission work never exceeds the budget);
* circuit breakers and the breaker-guarded degradation ladder;
* journal/snapshot durability: torn tails replay, mid-file damage and
  sequence gaps refuse, corrupt snapshots quarantine;
* the daemon itself, ending in the **chaos recovery lock**: a seeded storm
  of worker kills, overload bursts and slow solves plus one hard process
  restart must converge every tenant to the bitwise-identical layouts of
  the fault-free run, with every incident in tenant provenance and the
  breaker/shed/restart counts in the ``service.*`` metrics.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    AdmissionRejectedError,
    CheckpointCorruptionError,
    ConfigurationError,
    ReproError,
    ServiceShutdownError,
    TenantBudgetExceededError,
)
from repro.obs import metrics as obs_metrics
from repro.resilience import FaultInjector, FaultPlan, FaultSpec
from repro.service import (
    AdmissionController,
    AdvisorService,
    BreakerBoard,
    CircuitBreaker,
    GuardedFallbackSolver,
    Journal,
    ServiceConfig,
    SnapshotStore,
    TenantSpec,
    WorkItem,
    WorkQueue,
    build_epoch_stream,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.service.queue import (
    SHED_BUDGET_EXHAUSTED,
    SHED_QUEUE_FULL,
    SHED_SHUTTING_DOWN,
)
from repro import scenarios


@pytest.fixture(scope="module")
def synthetic_small_bundle():
    return scenarios.build("synthetic_small")


@pytest.fixture
def synthetic_small_context(synthetic_small_bundle):
    bundle = synthetic_small_bundle
    return bundle.context(estimator=bundle.fresh_estimator())


# ---------------------------------------------------------------------------
# Queue + admission
# ---------------------------------------------------------------------------

class TestWorkQueue:
    def test_fifo_per_tenant_round_robin_across(self):
        queue = WorkQueue(max_depth=8)
        for tenant in ("a", "b"):
            queue.register_tenant(tenant)
        for epoch in range(2):
            queue.push(WorkItem("a", epoch))
            queue.push(WorkItem("b", epoch))
        order = [(item.tenant_id, item.epoch)
                 for item in (queue.take() for _ in range(4))]
        # alternates tenants fair-share; epochs stay FIFO within a tenant
        assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_take_serves_every_tenant_within_one_rotation(self):
        queue = WorkQueue(max_depth=16)
        tenants = [f"t{i}" for i in range(5)]
        for tenant in tenants:
            queue.register_tenant(tenant)
            queue.push(WorkItem(tenant, 0))
        served = [queue.take().tenant_id for _ in tenants]
        assert sorted(served) == sorted(tenants)

    def test_depth_bound_and_burst_slots(self):
        queue = WorkQueue(max_depth=2)
        queue.register_tenant("a")
        assert queue.slots_free() == 2
        assert queue.slots_free(burst_slots=1) == 1
        assert queue.slots_free(burst_slots=5) == 0

    def test_snapshot_round_trip(self):
        queue = WorkQueue(max_depth=4)
        for tenant in ("a", "b"):
            queue.register_tenant(tenant)
        queue.push(WorkItem("a", 3, cost_units=0.5, attempt=1))
        queue.push(WorkItem("b", 0))
        state = queue.snapshot()
        clone = WorkQueue(max_depth=4)
        for tenant in ("a", "b"):
            clone.register_tenant(tenant)
        clone.restore(state)
        assert [item.to_dict() for item in clone.contents()] == \
            [item.to_dict() for item in queue.contents()]

    def test_invalid_depth_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkQueue(max_depth=0)


class TestAdmission:
    def _controller(self, depth=2):
        controller = AdmissionController(WorkQueue(max_depth=depth))
        controller.register_tenant("a", budget_s=1.0)
        controller.register_tenant("b")
        return controller

    def test_shed_reasons_in_fixed_order(self):
        controller = self._controller()
        # draining wins over everything
        decision = controller.decide(WorkItem("a", 0), draining=True)
        assert (decision.admitted, decision.reason) == (False, SHED_SHUTTING_DOWN)
        # budget beats capacity
        decision = controller.decide(WorkItem("a", 0, cost_units=2.0), burst_slots=99)
        assert decision.reason == SHED_BUDGET_EXHAUSTED
        # full queue sheds with queue_full
        controller.offer(WorkItem("b", 0))
        controller.offer(WorkItem("b", 1))
        assert controller.decide(WorkItem("b", 2)).reason == SHED_QUEUE_FULL

    def test_offer_reserves_and_settle_trues_up(self):
        controller = self._controller(depth=8)
        item = WorkItem("a", 0, cost_units=0.4)
        assert controller.offer(item).admitted
        assert controller.used_s("a") == pytest.approx(0.4)
        controller.settle(item, actual_s=0.1)
        assert controller.used_s("a") == pytest.approx(0.1)

    def test_require_raises_typed_errors(self):
        controller = self._controller()
        with pytest.raises(ServiceShutdownError):
            controller.require(WorkItem("a", 0), draining=True)
        with pytest.raises(TenantBudgetExceededError) as excinfo:
            controller.require(WorkItem("a", 0, cost_units=2.0))
        assert excinfo.value.tenant_id == "a"
        assert excinfo.value.budget_s == pytest.approx(1.0)
        controller.offer(WorkItem("b", 0))
        controller.offer(WorkItem("b", 1))
        with pytest.raises(AdmissionRejectedError) as excinfo:
            controller.require(WorkItem("b", 2))
        assert excinfo.value.reason == SHED_QUEUE_FULL

    def test_exception_hierarchy(self):
        # budget error IS an admission rejection IS a repro error
        assert issubclass(TenantBudgetExceededError, AdmissionRejectedError)
        assert issubclass(AdmissionRejectedError, ReproError)
        assert issubclass(ServiceShutdownError, ReproError)


# ---------------------------------------------------------------------------
# Property tests (the satellite contracts)
# ---------------------------------------------------------------------------

class TestServiceProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_tenants=st.integers(min_value=1, max_value=6),
        pushes=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
    )
    def test_no_tenant_starves_within_one_rotation(self, n_tenants, pushes):
        """Any tenant with queued work is served within ``n_tenants`` takes."""
        queue = WorkQueue(max_depth=64)
        tenants = [f"t{i}" for i in range(n_tenants)]
        for tenant in tenants:
            queue.register_tenant(tenant)
        for which in pushes:
            queue.push(WorkItem(tenants[which % n_tenants], 0))
        while queue.depth > 0:
            pending = {item.tenant_id for item in queue.contents()}
            window = []
            for _ in range(n_tenants):
                item = queue.take()
                if item is None:
                    break
                window.append(item.tenant_id)
            # every tenant that had work at window start was served in the
            # window of ``n_tenants`` takes -- one full rotation
            assert pending <= set(window)

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        depth=st.integers(min_value=1, max_value=4),
        offers=st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.floats(min_value=0.0, max_value=2.0),
                      st.integers(min_value=0, max_value=3)),
            max_size=40,
        ),
    )
    def test_shed_decisions_deterministic(self, seed, depth, offers):
        """Replaying the same offer sequence reproduces the same decisions."""
        def play():
            controller = AdmissionController(WorkQueue(max_depth=depth))
            for i in range(4):
                controller.register_tenant(f"t{i}", budget_s=1.0 + (seed % 7))
            decisions = []
            for epoch, (which, cost, burst) in enumerate(offers):
                decision = controller.offer(
                    WorkItem(f"t{which}", epoch, cost_units=cost), burst_slots=burst
                )
                decisions.append((decision.admitted, decision.reason))
                if decision.admitted and len(decisions) % 2 == 0:
                    controller.queue.take()  # drain deterministically
            return decisions

        assert play() == play()

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        budget=st.floats(min_value=0.1, max_value=5.0),
        costs=st.lists(st.floats(min_value=0.0, max_value=2.0), max_size=30),
    )
    def test_accepted_work_never_exceeds_budget(self, budget, costs):
        """With declared == actual cost, admissions never overrun the budget."""
        controller = AdmissionController(WorkQueue(max_depth=1024))
        controller.register_tenant("t", budget_s=budget)
        for epoch, cost in enumerate(costs):
            item = WorkItem("t", epoch, cost_units=cost)
            if controller.offer(item).admitted:
                controller.settle(item, actual_s=cost)
            assert controller.used_s("t") <= budget + 1e-9


# ---------------------------------------------------------------------------
# Circuit breakers + the guarded ladder
# ---------------------------------------------------------------------------

class TestBreakers:
    def test_trips_after_threshold_and_half_opens(self):
        breaker = CircuitBreaker("es", failure_threshold=2, cooldown_ticks=3)
        assert breaker.allow(0) and breaker.state == CLOSED
        assert not breaker.record_failure(0)
        assert breaker.record_failure(0)  # second failure trips
        assert breaker.state == OPEN and breaker.trips == 1
        assert not breaker.allow(1)  # cooling down
        assert breaker.allow(3)  # cooldown elapsed -> probe
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.failures == 0

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("es", failure_threshold=1, cooldown_ticks=2)
        breaker.record_failure(0)
        assert breaker.allow(2) and breaker.state == HALF_OPEN
        breaker.record_failure(2)
        assert breaker.state == OPEN
        assert not breaker.allow(3)

    def test_board_snapshot_round_trip(self):
        board = BreakerBoard(failure_threshold=1, cooldown_ticks=2)
        board.tick = 5
        board.failure("es")
        clone = BreakerBoard(failure_threshold=1, cooldown_ticks=2)
        clone.restore(board.snapshot())
        assert clone.tick == 5
        assert clone.states() == {"es": OPEN}
        assert clone.trips == 1

    def test_guarded_solver_routes_down_ladder(self, synthetic_small_context):
        board = BreakerBoard(failure_threshold=1, cooldown_ticks=100)
        solver = GuardedFallbackSolver(board=board)
        es_name = solver.chain[0].name
        board.failure(es_name)  # trip the first stage's circuit
        result = solver.solve(synthetic_small_context)
        assert result.feasible
        assert not result.solver.endswith(f":{es_name}")  # a later stage answered
        assert result.stats.degraded
        assert any("circuit open" in incident for incident in result.stats.incidents)

    def test_guarded_solver_closes_circuit_on_success(self, synthetic_small_context):
        board = BreakerBoard(failure_threshold=3, cooldown_ticks=1)
        solver = GuardedFallbackSolver(board=board)
        es_name = solver.chain[0].name
        board.failure(es_name)  # one failure, below threshold
        result = solver.solve(synthetic_small_context)
        assert result.feasible and not result.stats.degraded
        assert board.breaker(es_name).state == CLOSED
        assert board.breaker(es_name).failures == 0


# ---------------------------------------------------------------------------
# Journal + snapshots
# ---------------------------------------------------------------------------

class TestJournal:
    def test_append_load_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.append("tenant_registered", spec={"tenant_id": "a"})
        journal.append("epoch_committed", tenant_id="a", epoch=0)
        journal.close()
        records, note = Journal.load(tmp_path / "j.jsonl")
        assert note is None
        assert [r["kind"] for r in records] == ["tenant_registered", "epoch_committed"]
        assert [r["seq"] for r in records] == [1, 2]

    def test_torn_tail_sliced_with_note(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append("a")
        journal.append("b")
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "c", "truncated...')
        records, note = Journal.load(path)
        assert len(records) == 2
        assert note is not None and "torn" in note

    def test_mid_file_damage_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        for kind in ("a", "b", "c"):
            journal.append(kind)
        journal.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"payload": {}', '"payload": {"x": 1}')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointCorruptionError):
            Journal.load(path)

    def test_sequence_gap_refuses(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        for kind in ("a", "b", "c"):
            journal.append(kind)
        journal.close()
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(CheckpointCorruptionError):
            Journal.load(path)

    def test_snapshot_store_quarantines_corrupt(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        store.save(1, {"tick": 1})
        good = store.save(2, {"tick": 2})
        # corrupt the newest snapshot in place
        payload = json.loads(good.read_text())
        payload["state"]["tick"] = 99  # checksum now wrong
        good.write_text(json.dumps(payload))
        latest = store.load_latest()
        assert latest is not None and latest["state"]["tick"] == 1
        assert any(p.suffix == ".corrupt" for p in (tmp_path / "snaps").iterdir())


# ---------------------------------------------------------------------------
# Tenant streams
# ---------------------------------------------------------------------------

class TestTenantStreams:
    def test_stream_shapes_and_determinism(self, synthetic_small_bundle):
        for drift in ("steady", "crossfade", "flash"):
            spec = TenantSpec(tenant_id="t", num_epochs=6, drift=drift)
            one = build_epoch_stream(synthetic_small_bundle, spec)
            two = build_epoch_stream(synthetic_small_bundle, spec)
            assert len(one) == 6
            assert [e.weights for e in one] == [e.weights for e in two]

    def test_bad_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            TenantSpec(tenant_id="", num_epochs=1)
        with pytest.raises(ConfigurationError):
            TenantSpec(tenant_id="t", drift="sideways")

    def test_spec_round_trips_through_journal_form(self):
        spec = TenantSpec(tenant_id="t", num_epochs=3, drift="flash",
                          budget_s=4.5, sla_ratio=1.5)
        assert TenantSpec.from_dict(spec.to_dict()) == spec


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------

def _fleet_service(state_dir, injector=None, **config_kwargs):
    config_kwargs.setdefault("workers", 2)
    config_kwargs.setdefault("queue_depth", 4)
    service = AdvisorService(state_dir, ServiceConfig(**config_kwargs),
                             fault_injector=injector)
    service.register(TenantSpec(tenant_id="alpha", num_epochs=4, drift="crossfade"))
    service.register(TenantSpec(tenant_id="beta", num_epochs=4, drift="flash"))
    service.register(TenantSpec(tenant_id="gamma", num_epochs=3, drift="steady"))
    return service


class TestAdvisorService:
    def test_fault_free_run_completes_every_tenant(self, tmp_path):
        service = _fleet_service(tmp_path / "state")
        report = service.run(max_ticks=64)
        service.shutdown()
        assert report.all_done
        assert report.completed_epochs == 11
        assert all(s.final_assignment for s in report.tenants.values())
        assert report.worker_kills == 0 and report.breaker_trips == 0

    def test_duplicate_and_draining_registration_rejected(self, tmp_path):
        service = _fleet_service(tmp_path / "state")
        with pytest.raises(ConfigurationError):
            service.register(TenantSpec(tenant_id="alpha"))
        service.draining = True
        with pytest.raises(ConfigurationError):
            service.register(TenantSpec(tenant_id="delta"))

    def test_submit_next_raises_when_draining(self, tmp_path):
        service = _fleet_service(tmp_path / "state")
        service.draining = True
        with pytest.raises(ServiceShutdownError):
            service.submit_next("alpha")

    def test_submit_next_budget_error(self, tmp_path):
        service = AdvisorService(tmp_path / "state", ServiceConfig())
        service.register(TenantSpec(tenant_id="broke", num_epochs=2, budget_s=0.05))
        service.tenants["broke"].predicted_step_s = 1.0  # declared cost > budget
        with pytest.raises(TenantBudgetExceededError):
            service.submit_next("broke")

    def test_budget_exhaustion_stops_tenant_with_provenance(self, tmp_path):
        service = AdvisorService(tmp_path / "state", ServiceConfig())
        service.register(TenantSpec(tenant_id="broke", num_epochs=8, budget_s=1e-4))
        report = service.run(max_ticks=32)
        status = report.tenants["broke"]
        assert status.exhausted and status.done
        assert 0 < status.epochs_committed < 8  # first epoch ran, then stopped
        assert any("budget exhausted" in line for line in status.provenance)
        assert report.shed.get("budget_exhausted", 0) >= 1

    def test_overload_burst_sheds_then_recovers(self, tmp_path):
        plan = FaultPlan()
        plan.add_service_fault(1, FaultSpec(kind="overload_burst", count=8))
        service = _fleet_service(tmp_path / "state", injector=FaultInjector(plan))
        report = service.run(max_ticks=64)
        assert report.shed.get("queue_full", 0) >= 1  # burst shed admissions
        assert report.all_done  # ...but only delayed the work
        assert report.completed_epochs == 11

    def test_worker_kill_requeues_and_restarts(self, tmp_path):
        plan = FaultPlan()
        plan.add_service_fault(1, FaultSpec(kind="worker_kill", count=1))
        service = _fleet_service(tmp_path / "state", injector=FaultInjector(plan))
        report = service.run(max_ticks=64)
        assert report.all_done and report.completed_epochs == 11
        assert report.worker_kills == 1
        assert report.worker_restarts == 1
        assert any("killed holding" in line
                   for s in report.tenants.values() for line in s.provenance)

    def test_retier_budget_flows_to_solver(self, tmp_path):
        service = AdvisorService(tmp_path / "state", ServiceConfig())
        service.register(TenantSpec(tenant_id="t", num_epochs=2,
                                    retier_budget_s=30.0))
        assert service.tenants["t"].advisor.retier_budget_s == 30.0
        assert service.tenants["t"].advisor.solver is service.solver

    def test_recovery_replays_to_exact_layouts(self, tmp_path):
        state = tmp_path / "state"
        service = _fleet_service(state)
        for _ in range(3):
            service.tick()
        midway = service.layouts()
        service.save_snapshot()
        service.journal.close()  # hard stop
        recovered = AdvisorService.recover(
            state, ServiceConfig(workers=2, queue_depth=4))
        assert recovered.recovered
        assert recovered.replayed_epochs >= 1
        assert recovered.layouts() == midway  # bitwise pre-crash layouts
        report = recovered.run(max_ticks=64)
        recovered.shutdown()
        assert report.all_done and report.completed_epochs == 11

    def test_recovery_without_snapshot_uses_journal_alone(self, tmp_path):
        state = tmp_path / "state"
        service = _fleet_service(state)
        for _ in range(2):
            service.tick()
        midway = service.layouts()
        service.journal.close()  # crash before any snapshot
        recovered = AdvisorService.recover(
            state, ServiceConfig(workers=2, queue_depth=4))
        assert recovered.layouts() == midway

    def test_recovery_refuses_tampered_journal(self, tmp_path):
        state = tmp_path / "state"
        service = _fleet_service(state)
        for _ in range(2):
            service.tick()
        service.journal.close()
        path = state / "journal.jsonl"
        lines = path.read_text().splitlines()
        doctored = []
        import json as _json
        from repro.service.journal import _checksum
        for line in lines:
            record = _json.loads(line)
            if record["kind"] == "epoch_committed":
                # forge a *valid-checksum* record with a wrong assignment
                assignment = record["payload"]["assignment"]
                name = next(iter(assignment))
                classes = sorted({v for v in assignment.values()})
                record["payload"]["assignment"][name] = classes[-1] \
                    if assignment[name] != classes[-1] else classes[0]
                record.pop("checksum")
                record["checksum"] = _checksum(record)
            doctored.append(_json.dumps(record, sort_keys=True))
        path.write_text("\n".join(doctored) + "\n")
        with pytest.raises(CheckpointCorruptionError):
            AdvisorService.recover(state, ServiceConfig(workers=2, queue_depth=4))

    def test_torn_journal_tail_is_survivable(self, tmp_path):
        state = tmp_path / "state"
        service = _fleet_service(state)
        for _ in range(2):
            service.tick()
        service.journal.close()
        path = state / "journal.jsonl"
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"seq": 999, "kind": "epoch_committed", "pay')
        recovered = AdvisorService.recover(
            state, ServiceConfig(workers=2, queue_depth=4))
        assert recovered.torn_tail_note is not None
        report = recovered.run(max_ticks=64)
        assert report.all_done


# ---------------------------------------------------------------------------
# The chaos recovery lock (the PR's acceptance gate)
# ---------------------------------------------------------------------------

class TestChaosRecoveryLock:
    def test_storm_plus_hard_restart_converges_bitwise(self, tmp_path):
        with obs_metrics.fresh_metrics() as registry:
            clean = _fleet_service(tmp_path / "clean")
            clean_report = clean.run(max_ticks=64)
            clean.shutdown()
            assert clean_report.all_done

            plan = FaultPlan.chaos_service(
                seed=17, num_ticks=16, kill_fraction=0.2, kill_count=1,
                burst_fraction=0.2, burst_slots=4,
                slow_fraction=0.1, slow_s=0.001,
            )
            state = tmp_path / "chaos"
            stormed = _fleet_service(state, injector=FaultInjector(plan))
            for _ in range(4):
                stormed.tick()
            stormed.save_snapshot()
            stormed.journal.close()  # mid-run hard process stop

            resumed = AdvisorService.recover(
                state, ServiceConfig(workers=2, queue_depth=4),
                fault_injector=FaultInjector(plan))
            chaos_report = resumed.run(max_ticks=64)
            resumed.shutdown()

            # every tenant converges to the bitwise-identical fault-free layout
            assert chaos_report.all_done
            assert chaos_report.layouts() == clean_report.layouts()
            for tid, status in chaos_report.tenants.items():
                assert status.cumulative_cost_cents == pytest.approx(
                    clean_report.tenants[tid].cumulative_cost_cents)

            # the storm actually stormed, and every incident left provenance
            assert chaos_report.recovered
            total_kills = stormed.supervisor.kills + resumed.supervisor.kills
            if total_kills:
                assert any("killed holding" in line
                           for s in chaos_report.tenants.values()
                           for line in s.provenance)
            if chaos_report.shed:
                assert any("shed" in line
                           for s in chaos_report.tenants.values()
                           for line in s.provenance)
            assert any("recovery: replayed" in line
                       for s in chaos_report.tenants.values()
                       for line in s.provenance)

            # and the service.* metrics carry the counts
            snapshot = registry.snapshot()
            assert snapshot["service.recoveries"]["value"] == 1
            assert snapshot["service.replayed_epochs"]["value"] == \
                chaos_report.replayed_epochs
            assert snapshot["service.completed_epochs"]["value"] >= \
                clean_report.completed_epochs
            assert "service.queue_depth" in snapshot
