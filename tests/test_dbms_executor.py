"""Buffer pool, concurrency model and the workload estimator/executor."""

import pytest

from repro.dbms.buffer_pool import BufferPool
from repro.dbms.concurrency import ClosedLoopModel
from repro.dbms.executor import WorkloadEstimator
from repro.dbms.query import Query, TableAccess, WriteOp
from repro.storage import catalog as storage_catalog
from repro.storage.io_profile import IOType
from repro.workloads.workload import Workload
from tests.conftest import uniform_placement


class TestBufferPool:
    def test_zero_size_absorbs_nothing(self):
        pool = BufferPool(size_gb=0)
        counts = {"t": {IOType.RAND_READ: 100.0}}
        assert pool.absorb_reads(counts, {"t": 10.0}) == counts

    def test_small_objects_cached_first(self):
        pool = BufferPool(size_gb=1.0, read_absorption=1.0)
        fractions = pool.resident_fractions({"big": 100.0, "small": 0.5})
        assert fractions["small"] == 1.0
        assert fractions["big"] < 0.01

    def test_partial_residency(self):
        pool = BufferPool(size_gb=5.0, read_absorption=1.0)
        fractions = pool.resident_fractions({"obj": 10.0})
        assert fractions["obj"] == pytest.approx(0.5)

    def test_writes_never_absorbed(self):
        pool = BufferPool(size_gb=100.0, read_absorption=1.0)
        counts = {"t": {IOType.RAND_WRITE: 50.0, IOType.RAND_READ: 50.0}}
        adjusted = pool.absorb_reads(counts, {"t": 1.0})
        assert adjusted["t"][IOType.RAND_WRITE] == 50.0
        assert adjusted["t"][IOType.RAND_READ] == 0.0

    def test_read_absorption_cap(self):
        pool = BufferPool(size_gb=100.0, read_absorption=0.5)
        adjusted = pool.absorb_reads({"t": {IOType.SEQ_READ: 100.0}}, {"t": 1.0})
        assert adjusted["t"][IOType.SEQ_READ] == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(size_gb=-1)
        with pytest.raises(ValueError):
            BufferPool(read_absorption=1.5)


class TestClosedLoopModel:
    def test_population_bound(self):
        model = ClosedLoopModel(concurrency=10, efficiency=1.0)
        estimate = model.estimate(response_time_ms=100.0, busy_time_by_class_ms={"d": 1.0})
        assert estimate.transactions_per_second == pytest.approx(100.0)
        assert estimate.population_bound_tps == pytest.approx(100.0)

    def test_bottleneck_bound(self):
        model = ClosedLoopModel(concurrency=1000, efficiency=1.0)
        estimate = model.estimate(response_time_ms=10.0, busy_time_by_class_ms={"d": 20.0})
        assert estimate.transactions_per_second == pytest.approx(50.0)
        assert estimate.bottleneck_class == "d"

    def test_efficiency_scales_throughput(self):
        full = ClosedLoopModel(concurrency=100, efficiency=1.0).estimate(10.0, {"d": 1.0})
        scaled = ClosedLoopModel(concurrency=100, efficiency=0.5).estimate(10.0, {"d": 1.0})
        assert scaled.transactions_per_second == pytest.approx(full.transactions_per_second * 0.5)

    def test_cpu_can_be_bottleneck(self):
        model = ClosedLoopModel(concurrency=1000, efficiency=1.0)
        estimate = model.estimate(response_time_ms=10.0, busy_time_by_class_ms={"d": 0.1},
                                  cpu_time_ms=80.0)
        assert estimate.bottleneck_class == "CPU"

    def test_units(self):
        estimate = ClosedLoopModel(concurrency=1).estimate(1000.0, {"d": 1.0})
        assert estimate.transactions_per_minute == pytest.approx(
            estimate.transactions_per_second * 60
        )
        assert estimate.transactions_per_hour == pytest.approx(
            estimate.transactions_per_second * 3600
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopModel(concurrency=0)
        with pytest.raises(ValueError):
            ClosedLoopModel(efficiency=0.0)
        with pytest.raises(ValueError):
            ClosedLoopModel().estimate(0.0, {})


class TestEstimatorQueries:
    def test_estimate_is_deterministic(self, small_estimator, scan_query, small_catalog):
        placement = uniform_placement(small_catalog, storage_catalog.hdd())
        first = small_estimator.estimate_query(scan_query, placement)
        second = small_estimator.estimate_query(scan_query, placement)
        assert first.response_time_ms == second.response_time_ms

    def test_estimate_faster_on_faster_device(self, small_estimator, scan_query, small_catalog):
        hdd = small_estimator.estimate_query(
            scan_query, uniform_placement(small_catalog, storage_catalog.hdd())
        )
        hssd = small_estimator.estimate_query(
            scan_query, uniform_placement(small_catalog, storage_catalog.hssd())
        )
        assert hssd.response_time_ms < hdd.response_time_ms

    def test_simulated_run_with_buffer_is_faster_than_estimate(self, small_catalog, lookup_query):
        estimator = WorkloadEstimator(small_catalog, buffer_pool=BufferPool(4.0), noise=0.0)
        placement = uniform_placement(small_catalog, storage_catalog.hdd())
        estimate = estimator.estimate_query(lookup_query, placement)
        simulated = estimator.simulate_query(lookup_query, placement)
        assert simulated.response_time_ms <= estimate.response_time_ms

    def test_estimate_uses_buffer_flag(self, small_catalog, lookup_query):
        plain = WorkloadEstimator(small_catalog, buffer_pool=BufferPool(4.0), noise=0.0)
        buffered = WorkloadEstimator(
            small_catalog, buffer_pool=BufferPool(4.0), noise=0.0, estimate_uses_buffer=True
        )
        placement = uniform_placement(small_catalog, storage_catalog.hdd())
        assert (
            buffered.estimate_query(lookup_query, placement).response_time_ms
            <= plain.estimate_query(lookup_query, placement).response_time_ms
        )

    def test_noise_changes_simulated_times(self, small_catalog, scan_query):
        estimator = WorkloadEstimator(small_catalog, noise=0.1, seed=3)
        placement = uniform_placement(small_catalog, storage_catalog.hdd())
        times = {estimator.simulate_query(scan_query, placement).response_time_ms for _ in range(5)}
        assert len(times) > 1


class TestEstimatorWorkloads:
    def test_dss_total_time_is_sum_of_queries(self, small_estimator, small_workload, small_catalog):
        placement = uniform_placement(small_catalog, storage_catalog.hssd())
        result = small_estimator.estimate_workload(small_workload, placement)
        assert result.kind == "dss"
        assert len(result.per_query_times_ms) == len(small_workload.queries)
        assert result.total_time_s == pytest.approx(
            sum(t for _, t in result.per_query_times_ms) / 1000.0
        )

    def test_dss_tasks_per_hour_is_inverse_of_time(self, small_estimator, small_workload,
                                                   small_catalog):
        placement = uniform_placement(small_catalog, storage_catalog.hssd())
        result = small_estimator.estimate_workload(small_workload, placement)
        assert result.tasks_per_hour == pytest.approx(1.0 / result.total_time_hours)

    def test_io_by_object_accumulates(self, small_estimator, small_workload, small_catalog):
        placement = uniform_placement(small_catalog, storage_catalog.hssd())
        result = small_estimator.estimate_workload(small_workload, placement)
        assert "fact" in result.io_by_object
        assert result.busy_time_by_class_ms["H-SSD"] > 0

    def test_oltp_mix_produces_throughput(self, small_catalog):
        txn = Query(
            name="txn",
            accesses=(
                TableAccess("dim", selectivity=1e-4, index="dim_pkey", key_lookup=True),
            ),
            writes=(WriteOp("dim", rows=1, sequential=False),),
        )
        workload = Workload(
            name="mini-oltp",
            kind="oltp",
            transaction_mix=((txn, 1.0),),
            concurrency=50,
            measured_transaction_fraction=1.0,
        )
        estimator = WorkloadEstimator(small_catalog, noise=0.0)
        placement = uniform_placement(small_catalog, storage_catalog.hssd())
        result = estimator.estimate_workload(workload, placement)
        assert result.kind == "oltp"
        assert result.transactions_per_minute > 0
        assert result.tasks_per_hour == pytest.approx(result.throughput.transactions_per_hour)

    def test_oltp_throughput_orders_devices_correctly(self, small_catalog):
        txn = Query(
            name="txn",
            accesses=(
                TableAccess("dim", selectivity=1e-4, index="dim_pkey", key_lookup=True, repeat=5),
            ),
            writes=(WriteOp("dim", rows=2, sequential=False),),
        )
        workload = Workload(name="mini-oltp", kind="oltp", transaction_mix=((txn, 1.0),),
                            concurrency=100)
        estimator = WorkloadEstimator(small_catalog, noise=0.0)
        hdd_tpm = estimator.estimate_workload(
            workload, uniform_placement(small_catalog, storage_catalog.hdd())
        ).transactions_per_minute
        hssd_tpm = estimator.estimate_workload(
            workload, uniform_placement(small_catalog, storage_catalog.hssd())
        ).transactions_per_minute
        assert hssd_tpm > hdd_tpm * 5

    def test_query_time_lookup_and_grouping(self, small_estimator, small_workload, small_catalog):
        placement = uniform_placement(small_catalog, storage_catalog.hssd())
        result = small_estimator.estimate_workload(small_workload, placement)
        assert result.query_time_ms("scan_fact") > 0
        assert len(result.times_by_query()["scan_fact"]) == 2
        with pytest.raises(KeyError):
            result.query_time_ms("missing")
