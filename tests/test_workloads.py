"""Workload container, TPC-H / TPC-C generators and the synthetic generator."""

import pytest

from repro.dbms.executor import WorkloadEstimator
from repro.exceptions import WorkloadError
from repro.storage import catalog as storage_catalog
from repro.storage.io_profile import IOType
from repro.workloads import synthetic, tpcc, tpch
from repro.workloads.synthetic import SyntheticWorkloadConfig
from repro.workloads.tpch.queries import ES_SUBSET_OBJECTS, ES_SUBSET_TEMPLATES
from repro.workloads.workload import Workload


class TestWorkloadContainer:
    def test_dss_requires_queries(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", kind="dss")

    def test_oltp_requires_mix(self):
        with pytest.raises(WorkloadError):
            Workload(name="w", kind="oltp")

    def test_unknown_kind_rejected(self, scan_query):
        with pytest.raises(WorkloadError):
            Workload(name="w", kind="batch", queries=(scan_query,))

    def test_distinct_queries(self, scan_query, lookup_query):
        workload = Workload(name="w", queries=(scan_query, lookup_query, scan_query))
        assert len(workload.distinct_queries()) == 2

    def test_scaled_stream(self, scan_query):
        workload = Workload(name="w", queries=(scan_query,))
        assert len(workload.scaled_stream(5).queries) == 5

    def test_subset(self, scan_query, lookup_query):
        workload = Workload(name="w", queries=(scan_query, lookup_query))
        subset = workload.subset(["scan_fact"])
        assert subset.query_names == ("scan_fact",)

    def test_subset_empty_rejected(self, scan_query):
        workload = Workload(name="w", queries=(scan_query,))
        with pytest.raises(WorkloadError):
            workload.subset(["nope"])

    def test_referenced_objects(self, join_query):
        workload = Workload(name="w", queries=(join_query,))
        assert "fact_pkey" in workload.referenced_objects()


class TestTPCHSchema:
    def test_sixteen_objects(self):
        catalog = tpch.build_catalog(scale_factor=1)
        assert len(catalog.database_objects()) == 16

    def test_sf20_size_close_to_paper_30gb(self):
        catalog = tpch.build_catalog(scale_factor=20)
        assert 25 <= catalog.total_size_gb() <= 40

    def test_size_scales_with_sf(self):
        small = tpch.build_catalog(1).total_size_gb()
        large = tpch.build_catalog(10).total_size_gb()
        assert large > 8 * small

    def test_lineitem_is_largest_table(self):
        catalog = tpch.build_catalog(2)
        sizes = {obj.name: obj.size_gb for obj in catalog.database_objects()}
        assert sizes["lineitem"] == max(sizes.values())

    def test_fixed_tables_do_not_scale(self):
        assert tpch.table_row_count("nation", 100) == 25
        assert tpch.table_row_count("region", 100) == 5

    def test_invalid_scale_factor(self):
        with pytest.raises(ValueError):
            tpch.build_catalog(0)


class TestTPCHQueries:
    def test_all_22_templates_present(self):
        queries = tpch.original_queries(2)
        assert len(queries) == 22
        assert set(queries) == {f"q{i}" for i in range(1, 23)}

    def test_queries_reference_only_catalog_objects(self):
        catalog = tpch.build_catalog(2)
        for query in tpch.original_queries(2).values():
            for name in query.referenced_objects:
                assert catalog.has_object(name), f"{query.name} references unknown {name}"

    def test_modified_queries_reference_only_catalog_objects(self):
        catalog = tpch.build_catalog(2)
        for query in tpch.modified_queries(2).values():
            for name in query.referenced_objects:
                assert catalog.has_object(name), f"{query.name} references unknown {name}"

    def test_modified_templates_are_selective_key_lookups(self):
        for query in tpch.modified_queries(20).values():
            driver = query.accesses[0]
            assert driver.key_lookup
            assert driver.selectivity <= 0.01

    def test_original_workload_counts(self):
        workload = tpch.original_workload(2, repetitions=3)
        assert len(workload.queries) == 66
        assert workload.concurrency == 1

    def test_modified_workload_counts(self):
        workload = tpch.modified_workload(2, repetitions=20)
        assert len(workload.queries) == 100

    def test_es_subset_workload(self):
        workload = tpch.es_subset_workload(2, repetitions=3)
        assert len(workload.queries) == 33
        assert set(workload.query_names) <= set(ES_SUBSET_TEMPLATES)

    def test_es_subset_objects_cover_all_referenced(self):
        workload = tpch.es_subset_workload(2, repetitions=1)
        assert set(workload.referenced_objects()) <= set(ES_SUBSET_OBJECTS)

    def test_original_workload_is_sequential_read_dominated(self):
        """The original workload's I/O on an all-HDD layout is mostly sequential."""
        catalog = tpch.build_catalog(2)
        estimator = WorkloadEstimator(catalog, noise=0.0)
        placement = {obj.name: storage_catalog.hdd() for obj in catalog.database_objects()}
        result = estimator.estimate_workload(tpch.original_workload(2, repetitions=1), placement)
        seq = sum(by.get(IOType.SEQ_READ, 0) for by in result.io_by_object.values())
        rand = sum(by.get(IOType.RAND_READ, 0) for by in result.io_by_object.values())
        assert seq > rand

    def test_modified_workload_has_more_random_reads_than_original(self):
        catalog = tpch.build_catalog(2)
        estimator = WorkloadEstimator(catalog, noise=0.0)
        placement = {obj.name: storage_catalog.hssd() for obj in catalog.database_objects()}

        def random_fraction(workload):
            result = estimator.estimate_workload(workload, placement)
            seq = sum(by.get(IOType.SEQ_READ, 0) for by in result.io_by_object.values())
            rand = sum(by.get(IOType.RAND_READ, 0) for by in result.io_by_object.values())
            return rand / (seq + rand)

        assert random_fraction(tpch.modified_workload(2, repetitions=1)) > random_fraction(
            tpch.original_workload(2, repetitions=1)
        )


class TestTPCC:
    def test_table3_object_names_present(self):
        catalog = tpcc.build_catalog(10)
        names = {obj.name for obj in catalog.database_objects()}
        for expected in ("stock", "order_line", "customer", "pk_stock", "pk_order_line",
                         "i_customer", "i_orders", "history", "new_order"):
            assert expected in names

    def test_history_has_no_index(self):
        catalog = tpcc.build_catalog(10)
        assert catalog.indexes_on("history") == []

    def test_w300_size_close_to_paper_30gb(self):
        catalog = tpcc.build_catalog(300)
        assert 25 <= catalog.total_size_gb() <= 40

    def test_item_table_does_not_scale(self):
        small = tpcc.build_catalog(10).table_stats("item").row_count
        large = tpcc.build_catalog(300).table_stats("item").row_count
        assert small == large == 100_000

    def test_transactions_reference_only_catalog_objects(self):
        catalog = tpcc.build_catalog(10)
        for query in tpcc.transaction_queries(10).values():
            for name in query.referenced_objects:
                assert catalog.has_object(name), f"{query.name} references unknown {name}"

    def test_standard_mix_weights(self):
        mix = tpcc.standard_mix(10)
        assert sum(weight for _, weight in mix) == pytest.approx(1.0)
        names = {query.name for query, _ in mix}
        assert names == {"new_order", "payment", "order_status", "delivery", "stock_level"}

    def test_oltp_workload_configuration(self):
        workload = tpcc.oltp_workload(10, concurrency=300)
        assert workload.is_oltp
        assert workload.concurrency == 300
        assert workload.measured_transaction_fraction == pytest.approx(0.45)

    def test_tpcc_io_is_random_dominated(self):
        catalog = tpcc.build_catalog(10)
        estimator = WorkloadEstimator(catalog, noise=0.0)
        placement = {obj.name: storage_catalog.hssd() for obj in catalog.database_objects()}
        result = estimator.estimate_workload(tpcc.oltp_workload(10), placement)
        seq = sum(by.get(IOType.SEQ_READ, 0) for by in result.io_by_object.values())
        rand = sum(
            by.get(IOType.RAND_READ, 0) + by.get(IOType.RAND_WRITE, 0)
            for by in result.io_by_object.values()
        )
        assert rand > seq

    def test_invalid_warehouses(self):
        with pytest.raises(ValueError):
            tpcc.build_catalog(0)


class TestSyntheticWorkload:
    def test_deterministic_generation(self, small_catalog):
        first = synthetic.generate(small_catalog)
        second = synthetic.generate(small_catalog)
        assert first.query_names == second.query_names

    def test_query_count(self, small_catalog):
        config = SyntheticWorkloadConfig(num_queries=17)
        workload = synthetic.generate(small_catalog, config)
        assert len(workload.queries) == 17

    def test_fraction_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkloadConfig(scan_fraction=0.9, lookup_fraction=0.9,
                                    join_fraction=0.1, write_fraction=0.1)

    def test_generated_queries_are_estimable(self, small_catalog, small_estimator):
        workload = synthetic.generate(small_catalog, SyntheticWorkloadConfig(num_queries=20))
        placement = {obj.name: storage_catalog.hssd() for obj in small_catalog.database_objects()}
        result = small_estimator.estimate_workload(workload, placement)
        assert result.total_time_s > 0


class TestCrossKindComposition:
    """The TPC-H + TPC-C merge machinery (repro.workloads.crosskind)."""

    def test_prefixed_catalog_preserves_sizes(self):
        from repro.workloads.crosskind import prefixed_catalog

        original = tpcc.build_catalog(20)
        renamed = prefixed_catalog(original, "x_")
        assert set(renamed.table_names) == {f"x_{n}" for n in original.table_names}
        assert set(renamed.index_names) == {f"x_{n}" for n in original.index_names}
        for name in original.table_names:
            assert renamed.object_size_gb(f"x_{name}") == original.object_size_gb(name)
        for name in original.index_names:
            assert renamed.object_size_gb(f"x_{name}") == original.object_size_gb(name)

    def test_merge_rejects_collisions(self):
        from repro.exceptions import ConfigurationError
        from repro.workloads.crosskind import merge_catalogs

        a = tpch.build_catalog(1.0)
        b = tpcc.build_catalog(10)  # both define `customer` and `orders`
        with pytest.raises(ConfigurationError):
            merge_catalogs("collision", [a, b])

    def test_merged_universe_is_disjoint_and_estimable(self):
        from repro.workloads.crosskind import tpch_tpcc_workloads

        catalog, oltp, dss = tpch_tpcc_workloads(
            scale_factor=1.0, warehouses=10, oltp_concurrency=20
        )
        oltp_objects = set(oltp.referenced_objects())
        dss_objects = set(dss.referenced_objects())
        assert not oltp_objects & dss_objects
        for name in oltp_objects | dss_objects:
            assert catalog.has_object(name)
        # Both phases must be estimable against the merged catalog.
        estimator = WorkloadEstimator(catalog, noise=0.0, buffer_pool=None)
        placement = {obj.name: storage_catalog.hssd()
                     for obj in catalog.database_objects()}
        assert estimator.estimate_workload(oltp, placement).tasks_per_hour > 0
        assert estimator.estimate_workload(dss, placement).total_time_s > 0

    def test_prefixed_query_rewrites_only_known_names(self):
        from repro.workloads.crosskind import prefixed_query

        queries = tpcc.transaction_queries(10)
        renamed = prefixed_query(queries["new_order"], "x_", {"stock", "pk_stock"})
        touched = set(renamed.referenced_objects)
        assert "x_stock" in touched
        assert "stock" not in touched
        assert "item" in touched  # not in the known set: untouched
