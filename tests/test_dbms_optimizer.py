"""Query model, cost model, plans and the storage-aware optimizer."""

import pytest

from repro.dbms.cost_model import CostModel, CostParameters
from repro.dbms.optimizer import QueryOptimizer
from repro.dbms.plan import merge_io_counts, scale_io_counts, total_io_count
from repro.dbms.query import JoinSpec, Query, TableAccess, WriteOp, make_scan_query
from repro.exceptions import PlanningError, WorkloadError
from repro.storage import catalog as storage_catalog
from repro.storage.io_profile import IOType
from tests.conftest import uniform_placement


@pytest.fixture
def hdd_placement(small_catalog):
    return uniform_placement(small_catalog, storage_catalog.hdd())


@pytest.fixture
def hssd_placement(small_catalog):
    return uniform_placement(small_catalog, storage_catalog.hssd())


@pytest.fixture
def optimizer(small_catalog):
    return QueryOptimizer(small_catalog)


class TestQuerySpec:
    def test_query_requires_accesses_or_writes(self):
        with pytest.raises(WorkloadError):
            Query(name="empty")

    def test_join_position_validation(self):
        with pytest.raises(WorkloadError):
            Query(
                name="bad",
                accesses=(TableAccess("fact"),),
                joins=(JoinSpec(inner_position=1),),
            )

    def test_duplicate_join_positions_rejected(self):
        with pytest.raises(WorkloadError):
            Query(
                name="bad",
                accesses=(TableAccess("a"), TableAccess("b")),
                joins=(JoinSpec(inner_position=1), JoinSpec(inner_position=1)),
            )

    def test_selectivity_clamped(self):
        access = TableAccess("t", selectivity=1.7)
        assert access.selectivity == 1.0

    def test_referenced_objects(self, join_query):
        assert set(join_query.referenced_objects) >= {"dim", "fact", "fact_pkey"}

    def test_tables_include_writes(self, write_query):
        assert write_query.tables == ("dim",)

    def test_is_read_only(self, scan_query, write_query):
        assert scan_query.is_read_only
        assert not write_query.is_read_only

    def test_make_scan_query(self):
        query = make_scan_query("q", "fact", 0.1)
        assert query.accesses[0].selectivity == 0.1


class TestCostModel:
    def test_io_time_uses_placement_latency(self, small_catalog, hdd_placement):
        model = CostModel(hdd_placement, concurrency=1)
        assert model.io_time_ms("fact", IOType.RAND_READ, 10) == pytest.approx(10 * 13.32)

    def test_unknown_object_raises(self, hdd_placement):
        model = CostModel(hdd_placement)
        with pytest.raises(Exception):
            model.io_latency_ms("not-there", IOType.SEQ_READ)

    def test_io_time_by_class_groups_busy_time(self, small_catalog, hdd_placement):
        model = CostModel(hdd_placement)
        busy = model.io_time_by_class({"fact": {IOType.SEQ_READ: 100}})
        assert set(busy) == {"HDD"}
        assert busy["HDD"] == pytest.approx(100 * 0.072)

    def test_sort_cpu_grows_superlinearly(self):
        model = CostModel({}, parameters=CostParameters())
        assert model.sort_cpu_ms(1_000_000) > 10 * model.sort_cpu_ms(100_000) / 2

    def test_descent_io_levels_floor(self):
        params = CostParameters(cached_index_levels=2)
        assert params.descent_io_levels(1) == 1
        assert params.descent_io_levels(3) == 1
        assert params.descent_io_levels(5) == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostParameters(cpu_tuple_cost_ms=-1)
        with pytest.raises(ValueError):
            CostParameters(heap_refetch_discount=1.0)

    def test_invalid_concurrency_rejected(self, hdd_placement):
        with pytest.raises(ValueError):
            CostModel(hdd_placement, concurrency=0)


class TestPlanHelpers:
    def test_merge_and_scale_io_counts(self):
        counts = {}
        merge_io_counts(counts, {"a": {IOType.SEQ_READ: 5}})
        merge_io_counts(counts, {"a": {IOType.SEQ_READ: 3, IOType.RAND_READ: 2}})
        assert counts["a"][IOType.SEQ_READ] == 8
        scaled = scale_io_counts(counts, 0.5)
        assert scaled["a"][IOType.SEQ_READ] == 4
        assert total_io_count(scaled) == pytest.approx(4 + 1)


class TestAccessPathSelection:
    def test_selective_lookup_prefers_index_on_fast_random_device(
        self, optimizer, lookup_query, hssd_placement
    ):
        plan = optimizer.plan(lookup_query, hssd_placement)
        assert plan.access_paths["fact"] == "IndexScan"

    def test_selective_lookup_on_hdd_still_prefers_index_for_point_reads(
        self, optimizer, lookup_query, hdd_placement
    ):
        # 200 matching rows of 2M: even at 13 ms per random read the index
        # scan beats reading 30k+ pages sequentially.
        plan = optimizer.plan(lookup_query, hdd_placement)
        assert plan.access_paths["fact"] == "IndexScan"

    def test_full_scan_always_sequential(self, optimizer, scan_query, hssd_placement):
        plan = optimizer.plan(scan_query, hssd_placement)
        assert plan.access_paths["fact"] == "SeqScan"

    def test_moderate_selectivity_flips_with_device(self, optimizer, small_catalog):
        query = Query(
            name="moderate",
            accesses=(TableAccess("fact", selectivity=0.005, index="fact_pkey"),),
        )
        hdd_plan = optimizer.plan(query, uniform_placement(small_catalog, storage_catalog.hdd()))
        hssd_plan = optimizer.plan(query, uniform_placement(small_catalog, storage_catalog.hssd()))
        assert hdd_plan.access_paths["fact"] == "SeqScan"
        assert hssd_plan.access_paths["fact"] == "IndexScan"

    def test_plan_io_counts_cover_scanned_table(self, optimizer, scan_query, hdd_placement):
        plan = optimizer.plan(scan_query, hdd_placement)
        assert plan.io_for("fact")[IOType.SEQ_READ] > 0

    def test_estimated_time_is_io_plus_cpu(self, optimizer, scan_query, hdd_placement):
        plan = optimizer.plan(scan_query, hdd_placement)
        assert plan.estimated_time_ms == pytest.approx(plan.io_time_ms + plan.cpu_time_ms)


class TestJoinSelection:
    def test_join_algorithm_flips_with_device(self, optimizer, join_query, small_catalog):
        hdd_plan = optimizer.plan(join_query, uniform_placement(small_catalog, storage_catalog.hdd()))
        hssd_plan = optimizer.plan(join_query, uniform_placement(small_catalog, storage_catalog.hssd()))
        assert hdd_plan.join_algorithms == ("HashJoin",)
        assert hssd_plan.join_algorithms == ("IndexNLJoin",)
        assert hssd_plan.uses_index_nlj()

    def test_inlj_does_not_scan_inner_table(self, optimizer, join_query, hssd_placement):
        plan = optimizer.plan(join_query, hssd_placement)
        assert IOType.SEQ_READ not in plan.io_for("fact")

    def test_hash_join_scans_inner_table(self, optimizer, join_query, hdd_placement):
        plan = optimizer.plan(join_query, hdd_placement)
        assert plan.io_for("fact").get(IOType.SEQ_READ, 0) > 0

    def test_join_without_inner_index_is_hash_join(self, optimizer, small_catalog, hssd_placement):
        query = Query(
            name="no-index-join",
            accesses=(TableAccess("dim", selectivity=0.01), TableAccess("fact", selectivity=1.0)),
            joins=(JoinSpec(inner_position=1, rows_per_outer=5.0),),
        )
        plan = optimizer.plan(query, hssd_placement)
        assert plan.join_algorithms == ("HashJoin",)

    def test_missing_join_spec_appends_independent_access(self, optimizer, small_catalog,
                                                          hssd_placement):
        query = Query(
            name="two-independent",
            accesses=(TableAccess("dim"), TableAccess("fact", selectivity=0.5)),
        )
        plan = optimizer.plan(query, hssd_placement)
        assert plan.io_for("dim") and plan.io_for("fact")

    def test_unknown_inner_index_raises(self, optimizer, small_catalog, hssd_placement):
        query = Query(
            name="bad-index",
            accesses=(TableAccess("dim"), TableAccess("fact")),
            joins=(JoinSpec(inner_position=1, inner_index="nope"),),
        )
        with pytest.raises(PlanningError):
            optimizer.plan(query, hssd_placement)


class TestWritesAndRepeats:
    def test_update_produces_random_io(self, optimizer, write_query, hdd_placement):
        plan = optimizer.plan(write_query, hdd_placement)
        assert plan.io_for("dim")[IOType.RAND_WRITE] == pytest.approx(100)
        assert plan.io_for("dim_pkey")[IOType.RAND_WRITE] == pytest.approx(100)

    def test_insert_produces_sequential_io(self, optimizer, small_catalog, hdd_placement):
        query = Query(
            name="insert",
            writes=(WriteOp("dim", rows=500, sequential=True, indexes=("dim_pkey",)),),
        )
        plan = optimizer.plan(query, hdd_placement)
        assert plan.io_for("dim")[IOType.SEQ_WRITE] == pytest.approx(500)
        # Index maintenance for appends is modelled as sequential writes.
        assert plan.io_for("dim_pkey")[IOType.SEQ_WRITE] == pytest.approx(500)

    def test_clustered_update_touches_fewer_pages(self, optimizer, small_catalog, hdd_placement):
        scattered = Query(name="u1", writes=(WriteOp("fact", rows=1000, sequential=False),))
        clustered = Query(
            name="u2", writes=(WriteOp("fact", rows=1000, sequential=False, clustered=True),)
        )
        io_scattered = optimizer.plan(scattered, hdd_placement).io_for("fact")[IOType.RAND_WRITE]
        io_clustered = optimizer.plan(clustered, hdd_placement).io_for("fact")[IOType.RAND_WRITE]
        assert io_clustered < io_scattered / 10

    def test_repeat_multiplies_access_cost(self, optimizer, small_catalog, hssd_placement):
        single = Query(
            name="one",
            accesses=(TableAccess("dim", selectivity=1e-4, index="dim_pkey", key_lookup=True),),
        )
        repeated = Query(
            name="ten",
            accesses=(
                TableAccess("dim", selectivity=1e-4, index="dim_pkey", key_lookup=True, repeat=10),
            ),
        )
        one = optimizer.plan(single, hssd_placement)
        ten = optimizer.plan(repeated, hssd_placement)
        assert ten.total_io_operations == pytest.approx(one.total_io_operations * 10, rel=0.01)

    def test_write_to_unknown_index_raises(self, optimizer, hdd_placement):
        query = Query(name="bad", writes=(WriteOp("dim", rows=1, indexes=("ghost",)),))
        with pytest.raises(PlanningError):
            optimizer.plan(query, hdd_placement)


class TestPlanCache:
    def test_same_placement_returns_cached_plan(self, optimizer, scan_query, hdd_placement):
        first = optimizer.plan(scan_query, hdd_placement)
        second = optimizer.plan(scan_query, hdd_placement)
        assert first is second

    def test_different_placement_misses_cache(self, optimizer, scan_query, small_catalog):
        hdd_plan = optimizer.plan(scan_query, uniform_placement(small_catalog, storage_catalog.hdd()))
        hssd_plan = optimizer.plan(scan_query, uniform_placement(small_catalog, storage_catalog.hssd()))
        assert hdd_plan is not hssd_plan

    def test_clear_cache(self, optimizer, scan_query, hdd_placement):
        first = optimizer.plan(scan_query, hdd_placement)
        optimizer.clear_cache()
        second = optimizer.plan(scan_query, hdd_placement)
        assert first is not second

    def test_cache_can_be_bypassed(self, optimizer, scan_query, hdd_placement):
        first = optimizer.plan(scan_query, hdd_placement)
        second = optimizer.plan(scan_query, hdd_placement, use_cache=False)
        assert first is not second

    def test_plan_render_contains_operators(self, optimizer, join_query, hdd_placement):
        text = optimizer.plan(join_query, hdd_placement).render()
        assert "HashJoin" in text or "IndexNLJoin" in text
        assert "rows=" in text


class TestCacheStats:
    def test_hits_misses_and_size_counted(self, optimizer, scan_query, hdd_placement):
        assert optimizer.cache_stats.lookups == 0
        optimizer.plan(scan_query, hdd_placement)
        assert (optimizer.cache_stats.hits, optimizer.cache_stats.misses) == (0, 1)
        assert optimizer.cache_stats.size == 1
        optimizer.plan(scan_query, hdd_placement)
        assert (optimizer.cache_stats.hits, optimizer.cache_stats.misses) == (1, 1)
        assert optimizer.cache_stats.hit_rate == 0.5

    def test_moving_unreferenced_object_still_hits(self, optimizer, scan_query, small_catalog):
        """The cache key covers only the query's referenced objects, so
        re-placing an object the query never touches must be a cache hit --
        the invariant every batch search relies on."""
        placement = uniform_placement(small_catalog, storage_catalog.hdd())
        first = optimizer.plan(scan_query, placement)
        moved = dict(placement)
        assert "dim" not in scan_query.referenced_objects
        moved["dim"] = storage_catalog.hssd()
        second = optimizer.plan(scan_query, moved)
        assert second is first
        assert optimizer.cache_stats.hits == 1
        assert optimizer.cache_stats.misses == 1

    def test_bypassing_cache_leaves_stats_untouched(self, optimizer, scan_query, hdd_placement):
        optimizer.plan(scan_query, hdd_placement, use_cache=False)
        assert optimizer.cache_stats.lookups == 0
        assert optimizer.cache_stats.size == 0

    def test_clear_cache_resets_size(self, optimizer, scan_query, hdd_placement):
        optimizer.plan(scan_query, hdd_placement)
        optimizer.clear_cache()
        assert optimizer.cache_stats.size == 0
        assert optimizer.plan_table() == {}
