"""End-to-end integration tests: the paper's experiments at reduced scale.

These tests run the full pipeline (catalog -> workload -> profiling -> DOT ->
validation -> measurement) on scaled-down TPC-H / TPC-C instances and assert
the *shape* of the paper's headline results rather than absolute numbers.
"""

import pytest

from repro.experiments import figures
from repro.sla.constraints import ResponseTimeConstraint


@pytest.fixture(scope="module")
def tpch_box1_small():
    """Original TPC-H comparison on Box 1 at a small scale factor."""
    return figures.tpch_comparison("Box 1", sla_ratio=0.5, workload_kind="original",
                                   scale_factor=2, repetitions=1)


class TestTPCHComparison:
    def test_dot_cheaper_than_all_hssd(self, tpch_box1_small):
        by_name = {e.layout_name: e for e in tpch_box1_small["evaluations"]}
        assert by_name["DOT"].toc_cents < by_name["All H-SSD"].toc_cents

    def test_all_hssd_meets_its_own_sla(self, tpch_box1_small):
        by_name = {e.layout_name: e for e in tpch_box1_small["evaluations"]}
        assert by_name["All H-SSD"].psr == pytest.approx(1.0)

    def test_dot_psr_not_worse_than_cheap_simple_layouts(self, tpch_box1_small):
        by_name = {e.layout_name: e for e in tpch_box1_small["evaluations"]}
        cheapest_simple = by_name["All HDD RAID 0"]
        assert by_name["DOT"].psr >= cheapest_simple.psr - 1e-9

    def test_dot_layout_satisfies_capacity(self, tpch_box1_small):
        assert tpch_box1_small["dot_layout"].satisfies_capacity()

    def test_oa_layout_present(self, tpch_box1_small):
        names = {e.layout_name for e in tpch_box1_small["evaluations"]}
        assert "OA" in names

    def test_text_rendering(self, tpch_box1_small):
        assert "DOT" in tpch_box1_small["text"]


class TestModifiedWorkloadComparison:
    @pytest.fixture(scope="class")
    def modified_result(self):
        return figures.tpch_comparison("Box 2", sla_ratio=0.5, workload_kind="modified",
                                       scale_factor=2, repetitions=2)

    def test_dot_meets_sla_better_than_cheap_layouts(self, modified_result):
        by_name = {e.layout_name: e for e in modified_result["evaluations"]}
        assert by_name["DOT"].psr >= by_name["All HDD"].psr

    def test_modified_workload_uses_more_hssd_than_original(self, modified_result,
                                                            tpch_box1_small=None):
        """For the random-I/O-heavy modified workload DOT keeps more data on
        the fast device than the cheapest class."""
        layout = modified_result["dot_layout"]
        used = layout.space_used_gb()
        assert used["H-SSD"] > 0


class TestESvsDOT:
    @pytest.fixture(scope="class")
    def es_comparison(self):
        return figures.es_vs_dot_tpch(
            scale_factor=2,
            sla_ratio=0.5,
            repetitions=1,
            capacity_limits_gb={"Box 1": {}, "Box 2": {}},
        )

    def test_both_methods_find_feasible_layouts(self, es_comparison):
        for box_result in es_comparison.values():
            assert box_result["dot"].feasible
            assert box_result["es"].feasible

    def test_dot_toc_close_to_es(self, es_comparison):
        """Paper: DOT's TOC within ~16 % of ES in most cases.  At the tiny
        scale factor used for tests the greedy walk loses a little more, so
        the bound here is 50 %; the full-scale benchmark records the actual
        gap in EXPERIMENTS.md."""
        for box_result in es_comparison.values():
            assert box_result["dot"].toc_cents <= box_result["es"].toc_cents * 1.5

    def test_dot_evaluates_orders_of_magnitude_fewer_layouts(self, es_comparison):
        for box_result in es_comparison.values():
            assert box_result["dot_evaluated"] * 10 < box_result["es_evaluated"]


class TestTPCCExperiment:
    @pytest.fixture(scope="class")
    def tpcc_result(self):
        return figures.figure8(warehouses=20, sla_ratios=(0.5, 0.125), concurrency=100)

    def test_dot_toc_not_worse_than_all_hssd(self, tpcc_result):
        for box_result in tpcc_result.values():
            by_name = {e.layout_name: e for e in box_result["evaluations"]}
            dot_entries = [e for name, e in by_name.items() if name.startswith("DOT")]
            assert dot_entries, "DOT produced no feasible layouts"
            for entry in dot_entries:
                assert entry.toc_cents <= by_name["All H-SSD"].toc_cents * 1.001

    def test_all_hdd_is_cheap_but_slow(self, tpcc_result):
        for box_result in tpcc_result.values():
            by_name = {e.layout_name: e for e in box_result["evaluations"]}
            hdd_name = "All HDD" if "All HDD" in by_name else "All HDD RAID 0"
            assert by_name[hdd_name].transactions_per_minute < (
                by_name["All H-SSD"].transactions_per_minute / 3
            )

    def test_looser_sla_never_increases_dot_toc(self, tpcc_result):
        for box_result in tpcc_result.values():
            outcomes = box_result["dot_results"]
            feasible = {ratio: out for ratio, out in outcomes.items() if out.feasible}
            if len(feasible) >= 2:
                ratios = sorted(feasible, reverse=True)  # tighter first
                tocs = [feasible[ratio].toc_cents for ratio in ratios]
                assert tocs[-1] <= tocs[0] * 1.001


class TestTable3Layouts:
    def test_hot_write_objects_stay_on_fast_storage(self):
        result = figures.table3(warehouses=20, sla_ratios=(0.5,), concurrency=100)
        layout = result["layouts"][0.5]
        # The stock table (hot random reads and writes) belongs on the H-SSD,
        # as in the paper's Table 3 for every SLA.
        assert layout.class_name_of("stock") == "H-SSD"
