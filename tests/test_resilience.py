"""The resilience layer: fault injection, recovery, graceful degradation.

Three families of tests mirror the three layers of the recovery machinery:

* **Parallel search** -- a chaos run (worker kills, shard exceptions,
  stragglers, checkpoint corruption) must recover to the *bitwise identical*
  fault-free optimum: retries are idempotent, dead workers are detected and
  their shards re-queued, corrupt checkpoints are quarantined and redone.
* **Solvers** -- ``budget`` is a hard wall-clock deadline; a blown budget
  yields a degraded result flagged in ``SolveStats`` (with incidents), and
  any degraded result that claims feasibility really is SLA/capacity
  feasible (property-tested).  The :class:`FallbackSolver` chain always
  lands on a concrete layout, down to holding the initial one.
* **Online control plane** -- the epoch loop never raises: telemetry
  dropouts fall back to the last observation, outlier epochs are MAD-clamped,
  failed/overrun re-tier solves hold the deployed layout, and migration
  failures retry then hold -- all recorded per :class:`EpochRecord`.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import scenarios
from repro.core.batch_eval import BatchLayoutEvaluator
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.parallel_search import (
    EnumerationSpec,
    ParallelEnumerationEngine,
    SearchProgress,
)
from repro.core.solver import DOTSolver, ExhaustiveSolver, FallbackSolver, get_solver
from repro.dbms.executor import WorkloadEstimator
from repro.exceptions import (
    CheckpointCorruptionError,
    ConfigurationError,
    ShardFailureError,
    SolverTimeoutError,
    TelemetryGapError,
)
from repro.online.controller import OnlineAdvisor
from repro.online.drift import DriftingWorkloadGenerator, PhaseSchedule, WorkloadPhase
from repro.online.monitor import DriftThresholds, OutlierPolicy, TelemetryMonitor
from repro.resilience import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_file,
)
from repro.sla.constraints import RelativeSLA

WORKERS = 2


def fresh_estimator(catalog):
    return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)


def make_engine(small_objects, box1_system, small_catalog, small_workload, **kwargs):
    estimator = fresh_estimator(small_catalog)
    evaluator = BatchLayoutEvaluator(
        small_objects, box1_system, estimator, small_workload
    )
    spec = EnumerationSpec(
        variable_objects=small_objects, system=box1_system, estimator=estimator,
        workload=small_workload, pinned=[], constraint=None,
        cache=evaluator.cache, chunk_size=64,
    )
    return ParallelEnumerationEngine.from_evaluator(evaluator, spec, **kwargs)


@pytest.fixture
def serial_reference(small_objects, box1_system, small_catalog, small_workload):
    """The fault-free serial optimum every chaos run must reproduce exactly."""
    return ExhaustiveSearch(
        small_objects, box1_system, fresh_estimator(small_catalog)
    ).search(small_workload)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

class TestFaultPlans:
    def test_specs_validate_their_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor_strike")
        with pytest.raises(ConfigurationError):
            FaultPlan().add_shard_fault(0, FaultSpec(kind="telemetry_dropout"))
        with pytest.raises(ConfigurationError):
            FaultPlan().add_epoch_fault(0, FaultSpec(kind="worker_crash"))

    def test_chaos_search_is_seeded_and_disjoint(self):
        first = FaultPlan.chaos_search(
            11, range(16), crash_fraction=0.25, exception_fraction=0.25,
            delay_fraction=0.25,
        )
        second = FaultPlan.chaos_search(
            11, range(16), crash_fraction=0.25, exception_fraction=0.25,
            delay_fraction=0.25,
        )
        assert first.shard_faults == second.shard_faults
        assert len(first.shard_faults) == 12  # 4 + 4 + 4 disjoint shards

    def test_chaos_online_never_faults_epoch_zero(self):
        plan = FaultPlan.chaos_online(3, num_epochs=10, dropout_fraction=0.5)
        assert 0 not in plan.epoch_faults
        assert len(plan.epoch_faults) == 5

    def test_injector_without_plan_is_a_noop(self):
        injector = FaultInjector()
        assert injector.shard_fault(0, 0) is None
        assert injector.telemetry_fault(1) is None
        assert injector.solver_fault(1) is None
        assert injector.migration_fault(1, 0) is False

    def test_migration_fault_fails_only_the_first_attempts(self):
        plan = FaultPlan().add_epoch_fault(
            4, FaultSpec(kind="migration_failure", attempts=2)
        )
        injector = FaultInjector(plan)
        assert injector.migration_fault(4, 0)
        assert injector.migration_fault(4, 1)
        assert not injector.migration_fault(4, 2)


# ---------------------------------------------------------------------------
# Chaos identity: the parallel search under injected faults
# ---------------------------------------------------------------------------

class TestChaosIdentity:
    @pytest.mark.timeout(120)
    def test_worker_kills_recover_to_the_fault_free_optimum(
            self, small_objects, box1_system, small_catalog, small_workload,
            serial_reference):
        """Hard-killing workers on half the shards must not change one bit
        of the answer: the watchdog re-queues the lost shards and the retry
        (fault keyed to attempt 0) completes them."""
        probe = make_engine(
            small_objects, box1_system, small_catalog, small_workload, workers=WORKERS
        )
        shard_ids = [task[0] for task in probe.shard_ranges()]
        plan = FaultPlan.chaos_search(seed=23, shard_ids=shard_ids, crash_fraction=0.5)
        assert plan.shard_faults  # the chaos run must actually inject something
        result = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            workers=WORKERS, shard_timeout_s=1.0, fault_plan=plan,
        ).search(small_workload)
        assert result.feasible == serial_reference.feasible
        assert result.toc_cents == serial_reference.toc_cents
        assert result.layout == serial_reference.layout
        assert not result.timed_out

    @pytest.mark.timeout(120)
    def test_exceptions_and_stragglers_recover_identically(
            self, small_objects, box1_system, small_catalog, small_workload,
            serial_reference):
        probe = make_engine(
            small_objects, box1_system, small_catalog, small_workload, workers=WORKERS
        )
        shard_ids = [task[0] for task in probe.shard_ranges()]
        plan = FaultPlan.chaos_search(
            seed=5, shard_ids=shard_ids, crash_fraction=0.0,
            exception_fraction=0.5, delay_fraction=0.25, delay_s=0.02,
        )
        result = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            workers=WORKERS, fault_plan=plan,
        ).search(small_workload)
        assert result.toc_cents == serial_reference.toc_cents
        assert result.layout == serial_reference.layout
        assert result.incidents  # every recovery left a trace

    @pytest.mark.timeout(120)
    def test_worker_kills_under_work_stealing_recover_identically(
            self, small_objects, box1_system, small_catalog, small_workload,
            serial_reference):
        """The steal schedule splits the space into finer shard units and
        re-queued units dispatch as steals; hard-killing workers on a chunk
        of those units must still converge to the bitwise fault-free
        optimum, with the steal counter recording the dynamic dispatches."""
        probe = make_engine(
            small_objects, box1_system, small_catalog, small_workload,
            workers=WORKERS, schedule="steal",
        )
        shard_ids = [task[0] for task in probe.shard_ranges()]
        assert len(shard_ids) > WORKERS  # there must be units left to steal
        plan = FaultPlan.chaos_search(seed=31, shard_ids=shard_ids, crash_fraction=0.4)
        assert plan.shard_faults
        search = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            workers=WORKERS, shard_timeout_s=1.0, fault_plan=plan,
            schedule="steal",
        )
        result = search.search(small_workload)
        assert result.feasible == serial_reference.feasible
        assert result.toc_cents == serial_reference.toc_cents
        assert result.layout == serial_reference.layout
        assert not result.timed_out
        assert search.last_batch_stats.steals > 0

    def test_serial_path_injects_faults_without_killing_the_process(
            self, small_objects, box1_system, small_catalog, small_workload,
            serial_reference):
        """On the in-process path a worker_crash is demoted to an exception
        (killing the coordinator would end the test run, not test recovery)
        and the bounded retry still converges."""
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload,
            workers=1,
            fault_plan=FaultPlan().add_shard_fault(0, FaultSpec(kind="worker_crash")),
        )
        progress = engine.run()
        assert progress.finished
        assert progress.best_toc == serial_reference.toc_cents
        assert any("retrying" in incident for incident in progress.incidents)

    def test_exhausted_retries_surface_shard_failure(
            self, small_objects, box1_system, small_catalog, small_workload):
        plan = FaultPlan()
        for attempt in range(3):  # default retries = 2, so 3 attempts all fail
            plan.add_shard_fault(
                0, FaultSpec(kind="shard_exception"), attempt=attempt
            )
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload,
            workers=1, fault_plan=plan, retry_backoff_s=0.0,
        )
        with pytest.raises(ShardFailureError) as excinfo:
            engine.run()
        assert excinfo.value.shard_id == 0

    def test_deadline_abort_carries_partial_progress(
            self, small_objects, box1_system, small_catalog, small_workload):
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload,
            workers=1, deadline_s=0.0,
        )
        with pytest.raises(SolverTimeoutError) as excinfo:
            engine.run()
        assert excinfo.value.progress is not None
        assert not excinfo.value.progress.finished
        assert any("deadline" in incident for incident in excinfo.value.progress.incidents)


# ---------------------------------------------------------------------------
# Checkpoint corruption: quarantine and redo
# ---------------------------------------------------------------------------

class TestCheckpointCorruption:
    @pytest.mark.parametrize("mode", ["truncate", "garble", "junk"])
    def test_corrupt_checkpoint_is_refused_by_load(
            self, small_objects, box1_system, small_catalog, small_workload,
            tmp_path, mode):
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload, workers=1
        )
        path = tmp_path / "progress.json"
        engine.run(checkpoint_path=path)
        corrupt_file(path, mode=mode, seed=3)
        with pytest.raises(CheckpointCorruptionError) as excinfo:
            SearchProgress.load(path)
        assert str(path) in str(excinfo.value)

    def test_quarantine_and_redo_reaches_the_fault_free_optimum(
            self, small_objects, box1_system, small_catalog, small_workload,
            tmp_path, serial_reference):
        """A damaged checkpoint must never poison a resume: it is renamed
        aside and the engine redoes the shards from scratch, landing on the
        exact fault-free answer."""
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload, workers=1
        )
        path = tmp_path / "progress.json"
        engine.run(checkpoint_path=path)
        corrupt_file(path, mode="truncate")

        recovered = SearchProgress.load_or_quarantine(path)
        assert recovered is None
        assert not path.exists()
        assert path.with_name(path.name + ".quarantined").exists()

        redo = make_engine(
            small_objects, box1_system, small_catalog, small_workload, workers=1
        )
        progress = redo.run(
            SearchProgress.load_or_quarantine(path), checkpoint_path=path
        )
        assert progress.finished
        assert progress.best_toc == serial_reference.toc_cents
        assert SearchProgress.load(path).finished

    def test_missing_checkpoint_is_not_an_error(self, tmp_path):
        assert SearchProgress.load_or_quarantine(tmp_path / "absent.json") is None


# ---------------------------------------------------------------------------
# Pool teardown
# ---------------------------------------------------------------------------

class TestPoolTeardown:
    def test_engine_is_a_context_manager_and_tears_down_on_error(
            self, small_objects, box1_system, small_catalog, small_workload):
        plan = FaultPlan()
        for attempt in range(3):
            plan.add_shard_fault(
                0, FaultSpec(kind="shard_exception"), attempt=attempt
            )
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload,
            workers=WORKERS, fault_plan=plan, retry_backoff_s=0.0,
        )
        with pytest.raises(ShardFailureError):
            with engine:
                engine.run()
        assert engine._pool is None  # terminated and joined, not leaked

    def test_run_tears_down_on_success_too(
            self, small_objects, box1_system, small_catalog, small_workload):
        engine = make_engine(
            small_objects, box1_system, small_catalog, small_workload, workers=WORKERS
        )
        with engine:
            progress = engine.run()
        assert progress.finished
        assert engine._pool is None


# ---------------------------------------------------------------------------
# Degraded solves: deadline semantics and feasibility
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def small_bundle():
    return scenarios.build("synthetic_small")


def make_context(bundle, **kwargs):
    return bundle.context(estimator=bundle.fresh_estimator(), **kwargs)


class _AlwaysFailingSolver:
    name = "boom"

    def solve(self, context, *, initial_layout=None, budget=None):
        raise RuntimeError("synthetic solver crash")


class TestDegradedSolves:
    def test_fallback_is_registered(self):
        assert isinstance(get_solver("fallback"), FallbackSolver)

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(budget=st.floats(min_value=0.0, max_value=0.02,
                            allow_nan=False, allow_infinity=False))
    def test_degraded_es_results_are_feasible_when_claimed(self, small_bundle, budget):
        """Whatever the deadline cuts off, a degraded result that claims
        feasibility must satisfy the SLA and capacity checks -- the search
        only ever keeps feasible incumbents."""
        context = make_context(small_bundle)
        result = ExhaustiveSolver().solve(context, budget=budget)
        if result.stats.degraded:
            assert result.stats.incidents
            assert result.stats.deadline_s == budget
        if result.feasible:
            check = context.checker().check(
                result.layout, context.evaluate(result.layout).run_result
            )
            assert check.feasible

    def test_fallback_chain_survives_a_crashing_stage(self, small_bundle):
        solver = FallbackSolver(chain=[_AlwaysFailingSolver(), DOTSolver()])
        result = solver.solve(make_context(small_bundle))
        assert result.solver == "fallback:dot"
        assert result.feasible
        assert any("boom" in incident for incident in result.stats.incidents)
        assert result.stats.degraded  # a stage was lost on the way

    def test_fallback_holds_the_initial_layout_as_last_resort(self, small_bundle):
        solver = FallbackSolver(chain=[_AlwaysFailingSolver(), _AlwaysFailingSolver()])
        context = make_context(small_bundle)
        held = context.reference_layout()
        result = solver.solve(context, initial_layout=held)
        assert result.solver == "fallback:hold"
        assert result.layout == held
        assert result.stats.degraded
        assert len(result.stats.incidents) >= 2

    def test_fallback_deadline_is_shared_across_stages(self, small_bundle):
        solver = FallbackSolver(chain=[ExhaustiveSolver(), DOTSolver()])
        result = solver.solve(make_context(small_bundle), budget=0.0)
        # With a zero budget every stage is deadline-starved; whatever comes
        # back must say so.
        assert result.stats.degraded
        assert result.stats.incidents


# ---------------------------------------------------------------------------
# Telemetry hygiene: gaps and outliers
# ---------------------------------------------------------------------------

class _StubRunResult:
    def __init__(self, name, io_by_object):
        self.workload_name = name
        self.io_by_object = io_by_object


def _stub_epoch(total):
    return _StubRunResult("stub", {"fact": {"rand_read": total}})


class TestTelemetryHygiene:
    def test_profile_set_before_any_observation_raises_gap_error(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        with pytest.raises(TelemetryGapError):
            monitor.profile_set()
        # Back-compat: callers that caught ValueError keep working.
        with pytest.raises(ValueError):
            monitor.profile_set()

    def test_observe_gap_records_the_epoch_without_touching_history(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        monitor.observe(0, _stub_epoch(100.0))
        monitor.observe_gap(1)
        assert monitor.gap_epochs == [1]
        assert len(monitor.history) == 1
        incidents = monitor.drain_incidents()
        assert any("dropout" in incident for incident in incidents)
        assert monitor.drain_incidents() == []  # drained means drained

    def test_mad_clamp_rescales_an_outlier_epoch(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system, outlier_policy=OutlierPolicy(window=5, k=6.0)
        )
        for epoch in range(4):
            monitor.observe(epoch, _stub_epoch(100.0 + epoch))
        monitor.observe(4, _stub_epoch(2500.0))  # a 25x counter glitch
        clamped = monitor.history[-1]
        assert clamped.total_ios == pytest.approx(101.5, rel=0.05)
        assert any("outlier" in incident for incident in monitor.drain_incidents())

    def test_mad_clamp_accepts_honest_growth(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system, outlier_policy=OutlierPolicy(window=5, k=6.0, rel_floor=0.2)
        )
        totals = [100.0, 110.0, 120.0, 130.0, 142.0]
        for epoch, total in enumerate(totals):
            monitor.observe(epoch, _stub_epoch(total))
        assert monitor.history[-1].total_ios == 142.0
        assert monitor.drain_incidents() == []

    def test_without_policy_everything_is_accepted(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        for epoch in range(4):
            monitor.observe(epoch, _stub_epoch(100.0))
        monitor.observe(4, _stub_epoch(2500.0))
        assert monitor.history[-1].total_ios == 2500.0


# ---------------------------------------------------------------------------
# The online control plane under epoch faults
# ---------------------------------------------------------------------------

@pytest.fixture
def two_phase_generator(lookup_query, write_query, small_workload):
    stream = (lookup_query, write_query) * 3
    oltp_style = WorkloadPhase(
        "oltp", small_workload.with_stream(stream, name="oltp-style")
    )
    olap = WorkloadPhase("olap", small_workload)
    schedule = PhaseSchedule.ramp(12, start_epoch=1, end_epoch=5,
                                  phase_names=("oltp", "olap"))
    return DriftingWorkloadGenerator(
        [oltp_style, olap], schedule, seed=11, name="chaos-drift"
    )


def chaos_advisor(small_objects, box1_system, small_catalog, **kwargs):
    return OnlineAdvisor(
        small_objects, box1_system, fresh_estimator(small_catalog),
        sla=RelativeSLA(0.5),
        thresholds=DriftThresholds(share_threshold=0.05),
        **kwargs,
    )


class TestOnlineResilience:
    @pytest.mark.timeout(180)
    def test_dropout_epochs_complete_with_psr_and_incidents(
            self, small_objects, box1_system, small_catalog, two_phase_generator):
        """The acceptance run: 20% of epochs lose their telemetry and the
        loop still completes every epoch, PSR reported, nothing raised."""
        plan = FaultPlan.chaos_online(seed=7, num_epochs=12, dropout_fraction=0.2)
        dropout_epochs = set(plan.epoch_faults)
        assert dropout_epochs  # the schedule must actually drop something
        advisor = chaos_advisor(
            small_objects, box1_system, small_catalog,
            fault_injector=FaultInjector(plan),
        )
        result = advisor.run(two_phase_generator.epochs())
        assert result.num_epochs == 12
        assert all(0.0 <= record.psr <= 1.0 for record in result.records)
        assert result.min_psr >= 0.5
        for record in result.records:
            if record.epoch in dropout_epochs:
                assert any("dropout" in incident for incident in record.incidents)
                assert not record.drift.drifted

    def test_outlier_epoch_is_clamped_not_acted_on(
            self, small_objects, box1_system, small_catalog, small_workload):
        """A 25x counter glitch must neither crash the loop nor trigger a
        re-tier once the MAD clamp rescales it."""
        plan = FaultPlan().add_epoch_fault(
            5, FaultSpec(kind="telemetry_outlier", factor=25.0)
        )
        advisor = chaos_advisor(
            small_objects, box1_system, small_catalog,
            fault_injector=FaultInjector(plan),
            outlier_policy=OutlierPolicy(window=5, k=6.0),
        )
        result = advisor.run([small_workload] * 8)
        glitched = result.records[5]
        assert not glitched.drift.drifted
        assert any("outlier" in incident for incident in glitched.incidents)
        assert result.retier_epochs == ()  # steady workload: still no re-tier

    def test_solver_error_holds_the_layout_and_retries_next_epoch(
            self, small_objects, box1_system, small_catalog, two_phase_generator):
        baseline = chaos_advisor(small_objects, box1_system, small_catalog).run(
            two_phase_generator.epochs()
        )
        assert baseline.retier_epochs  # the drift must re-tier somewhere
        target = baseline.retier_epochs[0]

        plan = FaultPlan().add_epoch_fault(target, FaultSpec(kind="solver_error"))
        chaotic = chaos_advisor(
            small_objects, box1_system, small_catalog,
            fault_injector=FaultInjector(plan),
        ).run(two_phase_generator.epochs())

        record = next(r for r in chaotic.records if r.epoch == target)
        previous = next(r for r in chaotic.records if r.epoch == target - 1)
        assert record.reoptimized and not record.migrated
        assert record.layout == previous.layout  # held, not re-tiered
        assert any("solve failed" in incident for incident in record.incidents)
        # The drift reference was NOT rebased, so a later epoch re-tiers.
        assert any(epoch > target for epoch in chaotic.retier_epochs)

    def test_solver_overrun_degrades_within_budget(
            self, small_objects, box1_system, small_catalog, two_phase_generator):
        baseline = chaos_advisor(small_objects, box1_system, small_catalog).run(
            two_phase_generator.epochs()
        )
        target = baseline.retier_epochs[0]
        plan = FaultPlan().add_epoch_fault(
            target, FaultSpec(kind="solver_overrun", delay_s=0.01)
        )
        chaotic = chaos_advisor(
            small_objects, box1_system, small_catalog,
            fault_injector=FaultInjector(plan),
            retier_budget_s=0.005,  # the stall eats the entire budget
        ).run(two_phase_generator.epochs())
        record = next(r for r in chaotic.records if r.epoch == target)
        assert any("degraded" in incident for incident in record.incidents)
        assert record.dot_result is not None
        assert record.dot_result.stats.degraded

    def test_migration_failure_retries_then_succeeds(
            self, small_objects, box1_system, small_catalog, two_phase_generator):
        baseline = chaos_advisor(small_objects, box1_system, small_catalog).run(
            two_phase_generator.epochs()
        )
        target = baseline.retier_epochs[0]
        plan = FaultPlan().add_epoch_fault(
            target, FaultSpec(kind="migration_failure", attempts=1)
        )
        chaotic = chaos_advisor(
            small_objects, box1_system, small_catalog,
            fault_injector=FaultInjector(plan),
        ).run(two_phase_generator.epochs())
        record = next(r for r in chaotic.records if r.epoch == target)
        assert record.migrated  # the retry recovered the migration
        assert any("attempt 1" in incident for incident in record.incidents)
        assert chaotic.retier_epochs == baseline.retier_epochs

    def test_migration_failure_exhausts_retries_and_holds(
            self, small_objects, box1_system, small_catalog, two_phase_generator):
        baseline = chaos_advisor(small_objects, box1_system, small_catalog).run(
            two_phase_generator.epochs()
        )
        target = baseline.retier_epochs[0]
        plan = FaultPlan().add_epoch_fault(
            target, FaultSpec(kind="migration_failure", attempts=10)
        )
        chaotic = chaos_advisor(
            small_objects, box1_system, small_catalog,
            fault_injector=FaultInjector(plan),
            migration_max_retries=2,
        ).run(two_phase_generator.epochs())
        record = next(r for r in chaotic.records if r.epoch == target)
        previous = next(r for r in chaotic.records if r.epoch == target - 1)
        assert not record.migrated
        assert record.layout == previous.layout
        assert any("abandoned" in incident for incident in record.incidents)

    def test_fault_free_records_have_no_incidents(
            self, small_objects, box1_system, small_catalog, small_workload):
        advisor = chaos_advisor(small_objects, box1_system, small_catalog)
        result = advisor.run([small_workload] * 4)
        assert all(record.incidents == () for record in result.records)
