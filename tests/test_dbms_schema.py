"""Schema, page arithmetic, statistics, catalog and data generation."""

import pytest

from repro.dbms import pages as page_math
from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.datagen import SyntheticTableSpec, build_synthetic_catalog, random_table_specs
from repro.dbms.schema import Column, ColumnType, Index, Table, make_table
from repro.dbms.statistics import IndexStats, TableStats, clamp_selectivity
from repro.exceptions import ConfigurationError, UnknownObjectError
from repro.objects import ObjectKind


class TestSchema:
    def test_column_widths(self):
        assert Column("a", ColumnType.INTEGER).storage_width_bytes == 4
        assert Column("b", ColumnType.CHAR, 25).storage_width_bytes == 25

    def test_row_width_includes_overhead(self):
        table = make_table("t", [("id", ColumnType.BIGINT), ("v", ColumnType.CHAR, 10)])
        assert table.row_width_bytes == 28 + 8 + 10

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Table("t", (Column("a"), Column("a")))

    def test_column_lookup(self):
        table = make_table("t", [("id", ColumnType.INTEGER)])
        assert table.column("id").name == "id"
        with pytest.raises(KeyError):
            table.column("missing")

    def test_index_key_width(self):
        table = make_table("t", [("id", ColumnType.BIGINT), ("name", ColumnType.CHAR, 20)])
        index = Index("t_pkey", "t", ("id",), unique=True, primary=True)
        assert index.key_width_bytes(table) == 12 + 8

    def test_index_without_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            Index("bad", "t", ())

    def test_make_table_with_three_element_spec(self):
        table = make_table("t", [("id", ColumnType.INTEGER), ("pad", ColumnType.VARCHAR, 99)])
        assert table.column("pad").storage_width_bytes == 99


class TestPages:
    def test_heap_pages_zero_rows(self):
        assert page_math.heap_pages(0, 100) == 0

    def test_heap_pages_rounding_up(self):
        # 100-byte rows, 8 KiB pages, 90 % fill: 73 rows per page.
        assert page_math.heap_pages(74, 100) == 2

    def test_heap_pages_wide_rows(self):
        # A row wider than the page still fits one per page.
        assert page_math.heap_pages(10, 50_000) == 10

    def test_leaf_pages(self):
        assert page_math.leaf_pages(0, 20) == 0
        assert page_math.leaf_pages(1000, 20) >= 1

    def test_btree_height_grows_with_leaves(self):
        assert page_math.btree_height(1) == 1
        assert page_math.btree_height(200) == 2
        assert page_math.btree_height(200_000) >= 3

    def test_index_total_pages_exceeds_leaves(self):
        assert page_math.index_total_pages(1000) > 1000
        assert page_math.index_total_pages(0) == 0


class TestStatistics:
    def test_table_stats_from_schema(self):
        table = make_table("t", [("id", ColumnType.BIGINT), ("pad", ColumnType.VARCHAR, 92)])
        stats = TableStats.from_schema(table, 1_000_000)
        assert stats.row_count == 1_000_000
        assert stats.pages > 0
        assert stats.size_gb > 0
        assert stats.rows_per_page == pytest.approx(1_000_000 / stats.pages)

    def test_index_stats_from_schema(self):
        table = make_table("t", [("id", ColumnType.BIGINT)])
        index = Index("t_pkey", "t", ("id",), primary=True)
        stats = IndexStats.from_schema(index, table, 1_000_000)
        assert stats.leaf_pages > 0
        assert stats.height >= 1
        assert stats.total_pages >= stats.leaf_pages
        assert stats.size_gb < TableStats.from_schema(table, 1_000_000).size_gb * 10

    def test_clamp_selectivity(self):
        assert clamp_selectivity(-0.5) == 0.0
        assert clamp_selectivity(0.5) == 0.5
        assert clamp_selectivity(1.5) == 1.0

    def test_negative_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            TableStats(table="t", row_count=-1, row_width_bytes=10, pages=1)


class TestDatabaseCatalog:
    def test_add_and_lookup(self, small_catalog):
        assert "fact" in small_catalog.table_names
        assert small_catalog.table_stats("fact").row_count == 2_000_000
        assert small_catalog.primary_index("fact").name == "fact_pkey"

    def test_duplicate_table_rejected(self, small_catalog):
        with pytest.raises(ConfigurationError):
            small_catalog.add_table(make_table("fact", [("id", ColumnType.INTEGER)]), 10)

    def test_index_on_unknown_table_rejected(self):
        catalog = DatabaseCatalog()
        with pytest.raises(UnknownObjectError):
            catalog.add_index(Index("i", "missing", ("c",)))

    def test_unknown_lookups_raise(self, small_catalog):
        with pytest.raises(UnknownObjectError):
            small_catalog.table("nope")
        with pytest.raises(UnknownObjectError):
            small_catalog.object_size_gb("nope")

    def test_database_objects_cover_tables_and_indexes(self, small_catalog):
        objects = {obj.name: obj for obj in small_catalog.database_objects()}
        assert objects["fact"].kind is ObjectKind.TABLE
        assert objects["fact_pkey"].kind is ObjectKind.INDEX
        assert objects["fact_pkey"].table == "fact"

    def test_total_size_is_sum_of_objects(self, small_catalog):
        total = small_catalog.total_size_gb()
        assert total == pytest.approx(
            sum(obj.size_gb for obj in small_catalog.database_objects())
        )

    def test_indexes_on_orders_primary_first(self, small_catalog):
        indexes = small_catalog.indexes_on("fact")
        assert indexes[0].primary


class TestDatagen:
    def test_build_synthetic_catalog_with_extras(self):
        catalog = build_synthetic_catalog(
            [SyntheticTableSpec("t", 1000, 100, secondary_indexes=1)],
            with_log=True,
            with_temp=True,
        )
        names = {obj.name for obj in catalog.database_objects()}
        assert {"t", "t_pkey", "i_t_0", "wal_log", "temp_space"} <= names

    def test_generic_table_width_close_to_request(self):
        catalog = build_synthetic_catalog([SyntheticTableSpec("t", 1000, 333)])
        width = catalog.table_stats("t").row_width_bytes
        assert width == pytest.approx(333 + 28, abs=40)

    def test_random_table_specs_deterministic(self):
        assert random_table_specs(5, seed=3) == random_table_specs(5, seed=3)

    def test_random_table_specs_validation(self):
        with pytest.raises(ValueError):
            random_table_specs(0)
