"""The observability layer: tracing, metrics, run records, and the perf gate.

Four contracts are locked here:

* **Inertness** -- with tracing disabled every span call is a no-op on the
  shared ``NULL_SPAN`` and the instrumented solvers stay within a small
  overhead budget of the uninstrumented wall time.
* **Fidelity** -- with tracing *enabled* the three ES paths still produce
  bitwise-identical layouts/TOCs (spans observe, never perturb), parallel
  worker spans merge into the coordinator's tree (including a
  killed-and-retried shard), and a solve/online run's span tree accounts
  for >= 95% of its wall time.
* **Durability** -- run records survive a JSONL round-trip bitwise.
* **The gate** -- the regression check passes a run against its own
  baseline and fails when a gated metric degrades 2x (or a required bench
  output is missing).
"""

from __future__ import annotations

import json
import time

import pytest

from repro import scenarios
from repro.core import DOTSolver, ExhaustiveSolver
from repro.obs import log as obs_log
from repro.obs import metrics, recorder, report, trace
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.online.controller import OnlineAdvisor
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.sla.constraints import RelativeSLA


@pytest.fixture(scope="module")
def sanity_bundle():
    """The plan-stable tiny scenario (scan/join only, 6 objects x 3 classes)."""
    return scenarios.build("synthetic_sanity")


def make_context(bundle, **kwargs):
    return bundle.context(estimator=bundle.fresh_estimator(), **kwargs)


@pytest.fixture(autouse=True)
def _clean_observability_state():
    """Every test starts from a disabled tracer and an empty registry."""
    trace.set_tracer(Tracer(enabled=False))
    metrics.set_metrics(metrics.MetricsRegistry())
    recorder.set_store(None)
    yield
    trace.set_tracer(Tracer(enabled=False))
    metrics.set_metrics(metrics.MetricsRegistry())
    recorder.set_store(None)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_gauge_histogram_snapshot(self):
        registry = metrics.MetricsRegistry()
        registry.counter("a.hits").inc()
        registry.counter("a.hits").inc(2)
        registry.gauge("a.depth").set(3)
        for value in (1.0, 2.0, 9.0):
            registry.histogram("a.lat").observe(value)
        snap = registry.snapshot()
        assert snap["a.hits"]["value"] == 3
        assert snap["a.depth"]["value"] == 3
        assert snap["a.lat"]["count"] == 3
        assert snap["a.lat"]["min"] == 1.0
        assert snap["a.lat"]["max"] == 9.0
        assert snap["a.lat"]["mean"] == pytest.approx(4.0)
        assert list(snap) == sorted(snap)

    def test_name_reuse_across_types_is_an_error(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_fresh_metrics_scopes_the_global_registry(self):
        outer = metrics.get_metrics()
        with metrics.fresh_metrics() as registry:
            registry.counter("scoped").inc()
            assert metrics.get_metrics() is registry
        assert metrics.get_metrics() is outer
        assert "scoped" not in metrics.get_metrics()


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

class TestTracer:
    def test_disabled_tracer_hands_out_the_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("anything", attr=1)
        assert span is NULL_SPAN
        span.set(x=1).event("noop")  # all no-ops, chainable
        tracer.end_span(span)
        assert tracer.roots == []

    def test_nesting_and_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", kind="test"):
            with tracer.span("child"):
                tracer.current().event("tick", n=1)
        (root,) = tracer.roots
        assert root.name == "root"
        assert root.attrs["kind"] == "test"
        (child,) = root.children
        assert child.events[0][1] == "tick"
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt.to_dict() == root.to_dict()

    def test_adopt_grafts_a_worker_tree(self):
        worker = Tracer(enabled=True)
        with worker.span("shard[0]", shard_id=0):
            pass
        (payload,) = worker.drain_roots()

        coordinator = Tracer(enabled=True)
        parent = coordinator.start_span("es.enumerate")
        coordinator.adopt(payload)
        coordinator.end_span(parent)
        (root,) = coordinator.roots
        assert [c.name for c in root.children] == ["shard[0]"]

    def test_tracing_context_manager_swaps_the_global_tracer(self):
        assert not trace.get_tracer().enabled
        with trace.tracing() as tracer:
            assert trace.get_tracer() is tracer
            with trace.span("inside"):
                assert trace.current_span().name == "inside"
        assert not trace.get_tracer().enabled


class TestDisabledOverhead:
    def test_disabled_instrumentation_is_under_two_percent(self, sanity_bundle):
        """The per-solve span/metric cost must stay < 2% of a sanity ES solve.

        Measured as a stable proxy (cost of the actual disabled-path calls a
        solve performs, many times over, against the solve's wall time)
        instead of a flaky A/B wall-clock diff.
        """
        started = time.perf_counter()
        ExhaustiveSolver().solve(make_context(sanity_bundle))
        solve_wall = time.perf_counter() - started

        tracer = trace.get_tracer()
        assert not tracer.enabled
        rounds = 2_000
        started = time.perf_counter()
        for _ in range(rounds):
            span = tracer.start_span("solve:es", solver="es", budget_s=None)
            span.set(elapsed_s=0.0, evaluated=0)
            span.event("noop")
            tracer.end_span(span)
        per_solve = (time.perf_counter() - started) / rounds
        assert per_solve < 0.02 * solve_wall


# ---------------------------------------------------------------------------
# Instrumented solves stay bitwise-identical
# ---------------------------------------------------------------------------

class TestBitwiseIdentityUnderTracing:
    def test_three_es_paths_agree_with_tracing_on(self, sanity_bundle):
        with trace.tracing():
            batch = ExhaustiveSolver(max_layouts=1_000_000).solve(
                make_context(sanity_bundle))
            scalar = ExhaustiveSolver(max_layouts=1_000_000, batch=False).solve(
                make_context(sanity_bundle))
            parallel = ExhaustiveSolver(max_layouts=1_000_000, workers=2).solve(
                make_context(sanity_bundle))
        assert batch.layout == scalar.layout == parallel.layout
        assert batch.toc_cents == scalar.toc_cents == parallel.toc_cents

    def test_solve_span_covers_the_solve(self, sanity_bundle):
        with trace.tracing() as tracer:
            ExhaustiveSolver().solve(make_context(sanity_bundle))
            (root,) = tracer.drain_roots()
        assert root["name"] == "solve:es"
        names = [child["name"] for child in root["children"]]
        assert "es.build" in names
        assert "es.enumerate" in names
        assert report.span_coverage(root) >= 0.95

    def test_solver_metrics_fold_at_the_boundary(self, sanity_bundle):
        with metrics.fresh_metrics() as registry:
            result = ExhaustiveSolver().solve(make_context(sanity_bundle))
            snap = registry.snapshot()
        assert snap["solver.solves"]["value"] == 1
        assert snap["solver.es.solves"]["value"] == 1
        assert snap["solver.evaluated_layouts"]["value"] == result.evaluated_layouts
        assert snap["solver.es.solve_s"]["count"] == 1
        assert snap["batch.chunks"]["value"] == result.stats.batch.chunks

    def test_dot_move_counters(self, sanity_bundle):
        with metrics.fresh_metrics() as registry:
            result = DOTSolver().solve(make_context(sanity_bundle))
            snap = registry.snapshot()
        assert snap["dot.moves_evaluated"]["value"] == result.evaluated_layouts
        assert snap["dot.moves_accepted"]["value"] == result.stats.moves_accepted


# ---------------------------------------------------------------------------
# Parallel worker span merge
# ---------------------------------------------------------------------------

class TestParallelSpanMerge:
    @pytest.mark.timeout(180)
    def test_worker_spans_merge_into_the_coordinator_tree(self, sanity_bundle):
        with trace.tracing() as tracer:
            ExhaustiveSolver(workers=2).solve(make_context(sanity_bundle))
            (root,) = tracer.drain_roots()
        (enumerate_span,) = [c for c in root["children"]
                             if c["name"] == "es.enumerate"]
        shards = [c for c in enumerate_span["children"]
                  if c["name"].startswith("shard[")]
        assert shards, "no worker shard spans were merged"
        shard_ids = {s["attrs"]["shard_id"] for s in shards}
        assert len(shard_ids) == len(shards)  # one adopted span per shard
        assert all(s["duration_s"] > 0 for s in shards)

    @pytest.mark.timeout(180)
    def test_killed_and_retried_shard_leaves_both_traces(self, sanity_bundle):
        """A crashed shard must surface a retry event AND its attempt-1 span."""
        plan = FaultPlan().add_shard_fault(0, FaultSpec(kind="worker_crash"))
        with trace.tracing() as tracer:
            # shard_timeout_s bounds the watchdog's kill detection, exactly
            # like the chaos-identity tests in test_resilience.py.
            result = ExhaustiveSolver(
                workers=2, shard_timeout_s=1.0, fault_plan=plan
            ).solve(make_context(sanity_bundle))
            (root,) = tracer.drain_roots()
        reference = ExhaustiveSolver().solve(make_context(sanity_bundle))
        assert result.layout == reference.layout
        assert result.toc_cents == reference.toc_cents

        (enumerate_span,) = [c for c in root["children"]
                             if c["name"] == "es.enumerate"]
        events = [e["name"] for e in enumerate_span["events"]]
        assert "shard_retry" in events
        retried = [c for c in enumerate_span["children"]
                   if c["name"] == "shard[0]"]
        assert retried, "retried shard produced no span"
        assert any(c["attrs"]["attempt"] >= 1 for c in retried)


# ---------------------------------------------------------------------------
# Run recorder
# ---------------------------------------------------------------------------

class TestRecorder:
    def test_record_round_trips_bitwise(self, tmp_path):
        record = recorder.RunRecord(
            run_id="run-test-1", kind="solve", solver="es",
            scenario="synthetic_sanity", git_rev="abc1234", seed=7,
            created_unix_s=1_700_000_000.25, elapsed_s=0.125, wall_s=0.25,
            stats={"evaluated_layouts": 729, "toc_cents": 1.5e-6},
            metrics={"solver.solves": {"type": "counter", "value": 1}},
            spans={"name": "solve:es", "duration_s": 0.125,
                   "attrs": {}, "events": [], "children": []},
            extra={"note": "round-trip"},
        )
        store = recorder.RunStore(tmp_path)
        store.append(record)
        (loaded,) = store.load()
        assert loaded == record
        assert loaded.to_json_line() == record.to_json_line()

    def test_solve_records_when_recording(self, sanity_bundle, tmp_path):
        with recorder.recording(tmp_path), trace.tracing():
            with recorder.run_context(scenario="synthetic_sanity", seed=7):
                result = ExhaustiveSolver().solve(make_context(sanity_bundle))
        (rec,) = recorder.RunStore(tmp_path).load()
        assert rec.kind == "solve"
        assert rec.solver == "es"
        assert rec.scenario == "synthetic_sanity"
        assert rec.seed == 7
        assert rec.stats["toc_cents"] == result.toc_cents
        assert rec.metrics["solver.solves"]["value"] >= 1
        assert rec.spans["name"] == "solve:es"
        assert report.span_coverage(rec.spans) >= 0.95

    def test_fallback_chain_records_once(self, sanity_bundle, tmp_path):
        """Nested solves (fallback chain) produce ONE record, at the outside."""
        from repro.core import FallbackSolver
        with recorder.recording(tmp_path):
            FallbackSolver([ExhaustiveSolver()]).solve(make_context(sanity_bundle))
        records = recorder.RunStore(tmp_path).load()
        assert len(records) == 1

    @pytest.mark.timeout(180)
    def test_online_run_records_with_full_span_coverage(self, tmp_path):
        bundle = scenarios.build("synthetic_sanity")
        advisor = OnlineAdvisor(
            bundle.objects, bundle.get_system(), bundle.fresh_estimator(),
            sla=RelativeSLA(0.5),
        )
        with recorder.recording(tmp_path), trace.tracing():
            result = advisor.run([bundle.workload] * 10)
        (rec,) = recorder.RunStore(tmp_path).load()
        assert rec.kind == "online"
        assert rec.stats["num_epochs"] == result.num_epochs == 10
        assert rec.spans["name"] == "online.run"
        assert len(rec.spans["children"]) == 10
        assert report.span_coverage(rec.spans) >= 0.95
        assert rec.metrics["online.epochs"]["value"] == 10

    def test_no_store_no_files(self, sanity_bundle, tmp_path):
        assert recorder.active_store() is None
        ExhaustiveSolver().solve(make_context(sanity_bundle))
        assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# The regression gate
# ---------------------------------------------------------------------------

PARALLEL_ES_PAYLOAD = {
    "bench": "parallel_es", "elapsed_s": 0.5, "space": 531441,
    "objects": 12, "classes": 3, "toc_cents": 2.8e-06,
}


class TestGate:
    def _write(self, directory, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / "BENCH_parallel_es.json").write_text(json.dumps(payload))

    def test_gate_passes_against_identical_baseline(self, tmp_path, capsys):
        self._write(tmp_path / "out", PARALLEL_ES_PAYLOAD)
        self._write(tmp_path / "baselines", PARALLEL_ES_PAYLOAD)
        failures = report.check_regressions(
            tmp_path / "out", tmp_path / "baselines", require=["parallel_es"])
        assert failures == 0

    def test_gate_fails_on_2x_cost_inflation(self, tmp_path):
        current = dict(PARALLEL_ES_PAYLOAD, toc_cents=2 * PARALLEL_ES_PAYLOAD["toc_cents"])
        self._write(tmp_path / "out", current)
        self._write(tmp_path / "baselines", PARALLEL_ES_PAYLOAD)
        failures = report.check_regressions(
            tmp_path / "out", tmp_path / "baselines", require=["parallel_es"])
        assert failures == 1

    def test_gate_fails_on_timing_blowup_but_tolerates_noise(self, tmp_path):
        noisy = dict(PARALLEL_ES_PAYLOAD, elapsed_s=1.4 * PARALLEL_ES_PAYLOAD["elapsed_s"])
        self._write(tmp_path / "out", noisy)
        self._write(tmp_path / "baselines", PARALLEL_ES_PAYLOAD)
        assert report.check_regressions(
            tmp_path / "out", tmp_path / "baselines", timing_factor=3.0) == 0
        blown = dict(PARALLEL_ES_PAYLOAD, elapsed_s=4 * PARALLEL_ES_PAYLOAD["elapsed_s"])
        self._write(tmp_path / "out", blown)
        assert report.check_regressions(
            tmp_path / "out", tmp_path / "baselines", timing_factor=3.0) == 1

    def test_gate_fails_when_required_bench_is_missing(self, tmp_path):
        (tmp_path / "out").mkdir()
        self._write(tmp_path / "baselines", PARALLEL_ES_PAYLOAD)
        failures = report.check_regressions(
            tmp_path / "out", tmp_path / "baselines", require=["parallel_es"])
        assert failures == 1
        # ... but a missing non-required bench only skips.
        assert report.check_regressions(
            tmp_path / "out", tmp_path / "baselines") == 0

    def test_cli_exit_codes(self, tmp_path):
        self._write(tmp_path / "out", PARALLEL_ES_PAYLOAD)
        self._write(tmp_path / "baselines", PARALLEL_ES_PAYLOAD)
        argv = ["--check-regressions", "--bench-dir", str(tmp_path / "out"),
                "--baselines", str(tmp_path / "baselines")]
        assert report.main(argv) == 0
        inflated = dict(PARALLEL_ES_PAYLOAD, toc_cents=5.6e-06)
        self._write(tmp_path / "baselines", inflated)
        assert report.main(argv) != 0

    def test_committed_baselines_gate_green(self, tmp_path):
        """The baselines we ship must pass their own gate (reflexivity)."""
        from pathlib import Path
        baselines = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        assert report.check_regressions(baselines, baselines) == 0


class TestSpanCoverage:
    def test_leaf_spans_are_fully_covered(self):
        leaf = {"name": "x", "duration_s": 1.0, "children": []}
        assert report.span_coverage(leaf) == 1.0

    def test_partial_coverage(self):
        tree = {"name": "root", "duration_s": 2.0, "children": [
            {"name": "a", "duration_s": 0.5, "children": []},
            {"name": "b", "duration_s": 0.4, "children": []},
        ]}
        assert report.span_coverage(tree) == pytest.approx(0.45)
        assert report.span_coverage(None) == 0.0


# ---------------------------------------------------------------------------
# Logging context injection
# ---------------------------------------------------------------------------

class TestLogContext:
    def test_run_and_span_ids_are_stamped(self, capsys):
        import io
        import logging
        stream = io.StringIO()
        handler = logging.StreamHandler(stream)
        handler.addFilter(obs_log.ContextFilter())
        handler.setFormatter(logging.Formatter(obs_log.DEFAULT_FORMAT))
        logger = obs_log.get_logger("test_obs")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        logger.propagate = False
        try:
            with trace.tracing(), recorder.run_context(run_id="run-log-test"):
                with trace.span("phase.one"):
                    logger.info("inside")
            logger.info("outside")
        finally:
            logger.removeHandler(handler)
        first, second = stream.getvalue().strip().splitlines()
        assert "[run-log-test phase.one]" in first
        assert "inside" in first
        assert "phase.one" not in second
