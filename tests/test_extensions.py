"""Section 5 extensions: MILP reference, discrete cost model, generalized provisioning,
plus the experiment runner/reporting utilities."""

import pytest

from repro.core.discrete_cost import DiscreteCostModel
from repro.core.dot import DOTOptimizer
from repro.core.ilp import MILPPlacement
from repro.core.layout import Layout
from repro.core.profiler import WorkloadProfiler
from repro.core.provisioning import GeneralizedProvisioner, ProvisioningOption
from repro.core.toc import TOCModel
from repro.exceptions import ConfigurationError, InfeasibleLayoutError
from repro.experiments.reporting import (
    format_comparison,
    format_evaluations,
    format_layout_assignment,
    format_table,
)
from repro.experiments.runner import ExperimentRunner
from repro.objects import group_objects
from repro.sla.constraints import RelativeSLA
from repro.storage import catalog as storage_catalog


@pytest.fixture
def profiles(small_objects, box1_system, small_estimator, small_workload):
    profiler = WorkloadProfiler(small_objects, box1_system, small_estimator)
    return profiler.profile(small_workload, mode="estimate")


class TestMILP:
    def test_milp_solves_and_respects_budget(self, small_objects, box1_system, profiles):
        groups = group_objects(small_objects)
        best = sum(
            profiles.io_time_share_ms(group, tuple(["H-SSD"] * len(group))) for group in groups
        )
        milp = MILPPlacement(small_objects, box1_system)
        result = milp.solve(profiles, io_time_budget_ms=best * 4)
        assert result.feasible
        assert result.io_time_ms <= best * 4 * 1.0001
        assert result.layout.satisfies_capacity()

    def test_milp_cheaper_budget_gives_cheaper_layout(self, small_objects, box1_system, profiles):
        groups = group_objects(small_objects)
        best = sum(
            profiles.io_time_share_ms(group, tuple(["H-SSD"] * len(group))) for group in groups
        )
        milp = MILPPlacement(small_objects, box1_system)
        tight = milp.solve(profiles, io_time_budget_ms=best * 1.5)
        loose = milp.solve(profiles, io_time_budget_ms=best * 50)
        assert loose.objective_cents_per_hour <= tight.objective_cents_per_hour

    def test_milp_matches_or_beats_dot_layout_cost_under_same_budget(
        self, small_objects, box1_system, small_estimator, small_workload, profiles
    ):
        groups = group_objects(small_objects)
        best = sum(
            profiles.io_time_share_ms(group, tuple(["H-SSD"] * len(group))) for group in groups
        )
        budget = best * 3
        milp_result = MILPPlacement(small_objects, box1_system).solve(profiles, budget)
        dot_result = DOTOptimizer(small_objects, box1_system, small_estimator).optimize(
            small_workload, profiles
        )
        # The MILP minimises layout cost under the aggregate time budget, so no
        # DOT layout satisfying the same budget can be cheaper per hour.
        dot_time = sum(
            profiles.io_time_share_ms(group, dot_result.layout.group_placement(group))
            for group in groups
        )
        if dot_time <= budget:
            assert (
                milp_result.objective_cents_per_hour
                <= dot_result.layout.storage_cost_cents_per_hour() + 1e-9
            )

    def test_invalid_budget_rejected(self, small_objects, box1_system, profiles):
        with pytest.raises(ConfigurationError):
            MILPPlacement(small_objects, box1_system).solve(profiles, io_time_budget_ms=0.0)

    def test_impossible_capacity_reports_infeasible(self, small_objects, profiles,
                                                    box1_system, small_estimator,
                                                    small_workload):
        tiny = box1_system.with_capacity_limits(
            {name: 1e-6 for name in box1_system.class_names}
        )
        profiler = WorkloadProfiler(small_objects, tiny, small_estimator)
        tiny_profiles = profiler.profile(small_workload, mode="estimate")
        result = MILPPlacement(small_objects, tiny).solve(tiny_profiles, io_time_budget_ms=1e12)
        assert not result.feasible


class TestDiscreteCostModel:
    def test_alpha_zero_equals_linear_cost(self, small_objects, box1_system):
        layout = Layout.uniform(small_objects, box1_system, "H-SSD")
        model = DiscreteCostModel(alpha=0.0)
        assert model(layout) == pytest.approx(layout.storage_cost_cents_per_hour())

    def test_alpha_one_charges_full_devices(self, small_objects, box1_system):
        layout = Layout.uniform(small_objects, box1_system, "H-SSD")
        model = DiscreteCostModel(alpha=1.0)
        hssd = box1_system["H-SSD"]
        assert model(layout) == pytest.approx(hssd.price_cents_per_gb_hour * hssd.capacity_gb)

    def test_cost_increases_with_alpha_for_sparse_usage(self, small_objects, box1_system):
        layout = Layout.uniform(small_objects, box1_system, "H-SSD")
        costs = [DiscreteCostModel(alpha=a)(layout) for a in (0.0, 0.5, 1.0)]
        assert costs == sorted(costs)

    def test_empty_classes_not_charged_by_default(self, small_objects, box1_system):
        layout = Layout.uniform(small_objects, box1_system, "H-SSD")
        partial = DiscreteCostModel(alpha=1.0)(layout)
        charged_all = DiscreteCostModel(alpha=1.0, charge_empty_classes=True)(layout)
        assert charged_all > partial

    def test_alpha_validation(self):
        with pytest.raises(ConfigurationError):
            DiscreteCostModel(alpha=1.5)

    def test_dot_with_discrete_cost_prefers_fewer_classes(self, small_objects, box1_system,
                                                          small_estimator, small_workload,
                                                          profiles):
        linear = DOTOptimizer(small_objects, box1_system, small_estimator).optimize(
            small_workload, profiles
        )
        discrete = DOTOptimizer(
            small_objects, box1_system, small_estimator, cost_override=DiscreteCostModel(alpha=1.0)
        ).optimize(small_workload, profiles)
        used = lambda layout: sum(1 for _, gb in layout.space_used_gb().items() if gb > 0)
        assert used(discrete.layout) <= used(linear.layout)


class TestGeneralizedProvisioning:
    def test_decides_among_options(self, small_objects, small_catalog, small_workload):
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, noise=0.0)
        options = [
            ProvisioningOption("Box 1", storage_catalog.box1()),
            ProvisioningOption("Box 2", storage_catalog.box2()),
        ]
        provisioner = GeneralizedProvisioner(small_objects, estimator)
        decision = provisioner.decide(small_workload, options, sla=RelativeSLA(0.25))
        assert decision.feasible
        assert decision.chosen.name in {"Box 1", "Box 2"}
        assert set(decision.per_option) == {"Box 1", "Box 2"}
        best = min(
            (rec.toc_cents for rec in decision.per_option.values() if rec is not None)
        )
        assert decision.recommendation.toc_cents == pytest.approx(best)
        assert "Generalized provisioning" in decision.describe()

    def test_empty_options_rejected(self, small_objects, small_estimator, small_workload):
        provisioner = GeneralizedProvisioner(small_objects, small_estimator)
        with pytest.raises(InfeasibleLayoutError):
            provisioner.decide(small_workload, [])


class TestExperimentRunner:
    def test_evaluations_include_psr_and_toc(self, small_objects, box1_system, small_catalog,
                                             small_workload):
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, noise=0.0)
        runner = ExperimentRunner(small_objects, box1_system, estimator)
        layouts = {
            "All H-SSD": Layout.uniform(small_objects, box1_system, "H-SSD"),
            "All HDD RAID 0": Layout.uniform(small_objects, box1_system, "HDD RAID 0"),
        }
        evaluations = runner.evaluate_layouts(layouts, small_workload, sla=RelativeSLA(0.5))
        by_name = {evaluation.layout_name: evaluation for evaluation in evaluations}
        assert by_name["All H-SSD"].psr == pytest.approx(1.0)
        assert by_name["All H-SSD"].toc_cents > 0
        assert by_name["All HDD RAID 0"].response_time_s > by_name["All H-SSD"].response_time_s

    def test_resolve_constraint_modes(self, small_objects, box1_system, small_catalog,
                                      small_workload):
        from repro.dbms.buffer_pool import BufferPool
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, buffer_pool=BufferPool(2.0), noise=0.0)
        runner = ExperimentRunner(small_objects, box1_system, estimator)
        measured = runner.resolve_constraint(small_workload, RelativeSLA(0.5), mode="run")
        estimated = runner.resolve_constraint(small_workload, RelativeSLA(0.5), mode="estimate")
        # Measured (buffer-assisted) caps are at most the estimate-based caps.
        for name, cap in measured.caps_ms.items():
            assert cap <= estimated.caps_ms[name] * 1.001


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "b"], [[1, 2.34567], ["xyz", 4]])
        assert "a" in text and "xyz" in text
        assert len(text.splitlines()) == 4

    def test_format_evaluations(self, small_objects, box1_system, small_estimator,
                                small_workload):
        runner = ExperimentRunner(small_objects, box1_system, small_estimator)
        evaluations = runner.evaluate_layouts(
            {"All H-SSD": Layout.uniform(small_objects, box1_system, "H-SSD")},
            small_workload,
        )
        text = format_evaluations(evaluations, "Response time (s)")
        assert "All H-SSD" in text and "TOC" in text

    def test_format_layout_assignment_lists_all_classes(self, small_objects, box1_system):
        layout = Layout.uniform(small_objects, box1_system, "H-SSD")
        text = format_layout_assignment(layout)
        for class_name in box1_system.class_names:
            assert class_name in text

    def test_format_comparison_matrix(self):
        text = format_comparison({"row1": {"c1": 1.0, "c2": 2.0}}, "metric")
        assert "row1" in text and "c1" in text
