"""I/O profiles: calibration points, interpolation and transformations."""

import pytest

from repro.exceptions import ConfigurationError
from repro.storage import catalog
from repro.storage.io_profile import ALL_IO_TYPES, IOProfile, IOType, profile_table


class TestIOType:
    def test_read_write_partition(self):
        reads = [t for t in ALL_IO_TYPES if t.is_read]
        writes = [t for t in ALL_IO_TYPES if t.is_write]
        assert set(reads) | set(writes) == set(ALL_IO_TYPES)
        assert not set(reads) & set(writes)

    def test_random_sequential_partition(self):
        assert IOType.RAND_READ.is_random and not IOType.RAND_READ.is_sequential
        assert IOType.SEQ_WRITE.is_sequential and not IOType.SEQ_WRITE.is_random


class TestIOProfileConstruction:
    def test_missing_io_type_rejected(self):
        with pytest.raises(ConfigurationError):
            IOProfile({IOType.SEQ_READ: {1: 0.1}})

    def test_non_positive_latency_rejected(self):
        bad = {t: {1: 1.0} for t in ALL_IO_TYPES}
        bad[IOType.RAND_WRITE] = {1: 0.0}
        with pytest.raises(ConfigurationError):
            IOProfile(bad)

    def test_invalid_concurrency_rejected(self):
        bad = {t: {0: 1.0} for t in ALL_IO_TYPES}
        with pytest.raises(ConfigurationError):
            IOProfile(bad)

    def test_from_two_points_records_both(self):
        profile = catalog.HDD_PROFILE
        assert profile.calibration_points(IOType.RAND_READ) == (1, 300)


class TestInterpolation:
    def test_exact_points_returned(self):
        profile = catalog.HDD_PROFILE
        assert profile.service_time_ms(IOType.RAND_READ, 1) == pytest.approx(13.32)
        assert profile.service_time_ms(IOType.RAND_READ, 300) == pytest.approx(8.903)

    def test_extrapolation_is_flat(self):
        profile = catalog.HDD_PROFILE
        assert profile.service_time_ms(IOType.RAND_READ, 1000) == pytest.approx(8.903)

    def test_interpolation_is_between_calibration_points(self):
        profile = catalog.HDD_PROFILE
        mid = profile.service_time_ms(IOType.RAND_READ, 30)
        assert 8.903 < mid < 13.32

    def test_interpolation_monotone_for_decreasing_latency(self):
        profile = catalog.HDD_PROFILE
        values = [profile.service_time_ms(IOType.RAND_READ, c) for c in (1, 5, 30, 100, 300)]
        assert values == sorted(values, reverse=True)

    def test_invalid_concurrency(self):
        with pytest.raises(ValueError):
            catalog.HDD_PROFILE.service_time_ms(IOType.RAND_READ, 0)

    def test_as_row_contains_all_types(self):
        row = catalog.HSSD_PROFILE.as_row(1)
        assert set(row) == set(ALL_IO_TYPES)


class TestTransformations:
    def test_scaled_profile(self):
        scaled = catalog.HDD_PROFILE.scaled({IOType.SEQ_READ: 0.5})
        assert scaled.service_time_ms(IOType.SEQ_READ, 1) == pytest.approx(0.072 * 0.5)
        # Other types untouched.
        assert scaled.service_time_ms(IOType.RAND_READ, 1) == pytest.approx(13.32)

    def test_scaled_rejects_non_positive_factor(self):
        with pytest.raises(ConfigurationError):
            catalog.HDD_PROFILE.scaled({IOType.SEQ_READ: 0.0})

    def test_merged_with_is_between_inputs(self):
        merged = catalog.HDD_PROFILE.merged_with(catalog.HSSD_PROFILE, weight=0.5)
        value = merged.service_time_ms(IOType.RAND_READ, 1)
        assert catalog.HSSD_PROFILE.service_time_ms(IOType.RAND_READ, 1) < value
        assert value < catalog.HDD_PROFILE.service_time_ms(IOType.RAND_READ, 1)

    def test_merged_weight_validation(self):
        with pytest.raises(ValueError):
            catalog.HDD_PROFILE.merged_with(catalog.HSSD_PROFILE, weight=1.5)


class TestPaperProfiles:
    def test_hssd_random_read_is_two_orders_faster_than_hdd(self):
        hdd = catalog.HDD_PROFILE.service_time_ms(IOType.RAND_READ, 1)
        hssd = catalog.HSSD_PROFILE.service_time_ms(IOType.RAND_READ, 1)
        assert hdd / hssd > 100

    def test_lssd_random_write_is_poor(self):
        """The L-SSD's random writes are slower than the HDD's (Table 1)."""
        lssd = catalog.LSSD_PROFILE.service_time_ms(IOType.RAND_WRITE, 1)
        hdd = catalog.HDD_PROFILE.service_time_ms(IOType.RAND_WRITE, 1)
        assert lssd > hdd

    def test_raid0_improves_hdd_random_read_under_concurrency(self):
        single = catalog.HDD_PROFILE.service_time_ms(IOType.RAND_READ, 300)
        raid = catalog.HDD_RAID0_PROFILE.service_time_ms(IOType.RAND_READ, 300)
        assert raid < single

    def test_profile_table_structure(self):
        table = profile_table({"HDD": catalog.HDD_PROFILE}, concurrencies=(1, 300))
        assert table["HDD"][IOType.SEQ_READ][1] == pytest.approx(0.072)
        assert table["HDD"][IOType.SEQ_READ][300] == pytest.approx(0.174)
