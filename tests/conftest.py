"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Allow running the tests without installing the package (offline editable
# installs are not always possible); the src/ layout is added to sys.path.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import pytest

try:
    import pytest_timeout  # noqa: F401  (the real plugin, when installed)
    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


# ---------------------------------------------------------------------------
# The `slow` marker: stress tests run in CI (or with --runslow), not in the
# edit-test loop
# ---------------------------------------------------------------------------

def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked slow (always run when the CI env var is set)",
    )
    if not _HAVE_PYTEST_TIMEOUT:
        # Fallback shim: own the `timeout` ini key / marker the real plugin
        # would register, so `pytest.ini` and `@pytest.mark.timeout(...)`
        # behave the same with or without pytest-timeout installed (CI
        # installs the real plugin; the shim covers bare environments).
        parser.addini(
            "timeout",
            "per-test wall-clock timeout in seconds (pytest-timeout fallback shim)",
            default="0",
        )
        parser.addoption(
            "--timeout",
            action="store",
            default=None,
            help="per-test wall-clock timeout in seconds (fallback shim)",
        )


def pytest_configure(config):
    if not _HAVE_PYTEST_TIMEOUT:
        config.addinivalue_line(
            "markers",
            "timeout(seconds): fail the test if it runs longer (fallback shim)",
        )


def _shim_timeout_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    option = item.config.getoption("--timeout", default=None)
    if option:
        return float(option)
    try:
        return float(item.config.getini("timeout") or 0.0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM-based per-test timeout when pytest-timeout is unavailable.

    A hung chaos test (a worker kill the recovery machinery fails to detect,
    a deadline that never fires) aborts with a clear failure instead of
    wedging the whole run.  Main-thread/Unix only -- exactly where the chaos
    suite runs; the real plugin takes over wherever it is installed.
    """
    import signal
    import threading

    seconds = 0.0
    if not _HAVE_PYTEST_TIMEOUT and threading.current_thread() is threading.main_thread():
        seconds = _shim_timeout_seconds(item)
    if seconds <= 0.0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded the {seconds:g}s timeout (fallback shim)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow") or os.environ.get("CI"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: needs --runslow (or CI)")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

from repro.dbms.buffer_pool import BufferPool
from repro.dbms.catalog import DatabaseCatalog
from repro.dbms.datagen import SyntheticTableSpec, build_synthetic_catalog
from repro.dbms.executor import WorkloadEstimator
from repro.dbms.query import JoinSpec, Query, TableAccess, WriteOp
from repro.storage import catalog as storage_catalog
from repro.storage.io_profile import IOProfile, IOType
from repro.storage.storage_class import StorageClass, StorageSystem
from repro.workloads.workload import Workload


# ---------------------------------------------------------------------------
# Storage fixtures
# ---------------------------------------------------------------------------

@pytest.fixture(scope="session")
def paper_storage_classes():
    """The five paper storage classes keyed by Table 1 name."""
    return storage_catalog.all_storage_classes()


@pytest.fixture(scope="session")
def box1_system():
    """The paper's Box 1 storage system."""
    return storage_catalog.box1()


@pytest.fixture(scope="session")
def box2_system():
    """The paper's Box 2 storage system."""
    return storage_catalog.box2()


@pytest.fixture
def flat_profile():
    """A concurrency-independent I/O profile for simple arithmetic in tests."""
    return IOProfile.constant(
        {
            IOType.SEQ_READ: 0.1,
            IOType.RAND_READ: 1.0,
            IOType.SEQ_WRITE: 0.2,
            IOType.RAND_WRITE: 2.0,
        }
    )


@pytest.fixture
def two_class_system(flat_profile):
    """A tiny two-class system: a fast expensive class and a slow cheap class."""
    fast = StorageClass(
        name="fast",
        capacity_gb=100.0,
        price_cents_per_gb_hour=0.1,
        io_profile=IOProfile.constant(
            {
                IOType.SEQ_READ: 0.01,
                IOType.RAND_READ: 0.05,
                IOType.SEQ_WRITE: 0.01,
                IOType.RAND_WRITE: 0.05,
            }
        ),
    )
    slow = StorageClass(
        name="slow",
        capacity_gb=1000.0,
        price_cents_per_gb_hour=0.001,
        io_profile=IOProfile.constant(
            {
                IOType.SEQ_READ: 0.05,
                IOType.RAND_READ: 10.0,
                IOType.SEQ_WRITE: 0.05,
                IOType.RAND_WRITE: 10.0,
            }
        ),
    )
    return StorageSystem([fast, slow], name="two-class")


# ---------------------------------------------------------------------------
# DBMS fixtures
# ---------------------------------------------------------------------------

@pytest.fixture
def small_catalog() -> DatabaseCatalog:
    """A small synthetic catalog: one fact table, one dimension table."""
    return build_synthetic_catalog(
        [
            SyntheticTableSpec("fact", row_count=2_000_000, row_width_bytes=120),
            SyntheticTableSpec("dim", row_count=50_000, row_width_bytes=200),
        ],
        name="small",
    )


@pytest.fixture
def small_estimator(small_catalog) -> WorkloadEstimator:
    """Estimator over the small catalog with deterministic noise."""
    return WorkloadEstimator(small_catalog, noise=0.0, buffer_pool=None, seed=7)


@pytest.fixture
def scan_query() -> Query:
    """A full scan of the fact table."""
    return Query(name="scan_fact", accesses=(TableAccess("fact", selectivity=0.9),),
                 aggregate_rows=1_800_000)


@pytest.fixture
def lookup_query() -> Query:
    """A selective keyed lookup on the fact table."""
    return Query(
        name="lookup_fact",
        accesses=(
            TableAccess("fact", selectivity=0.0001, index="fact_pkey", key_lookup=True),
        ),
    )


@pytest.fixture
def join_query() -> Query:
    """A dim-to-fact join with an indexed inner table."""
    return Query(
        name="join_dim_fact",
        accesses=(
            TableAccess("dim", selectivity=0.01),
            TableAccess("fact", selectivity=1.0, index="fact_pkey"),
        ),
        joins=(JoinSpec(inner_position=1, rows_per_outer=5.0, inner_index="fact_pkey"),),
        aggregate_rows=2500,
    )


@pytest.fixture
def write_query() -> Query:
    """A small batch of keyed updates against the dimension table."""
    return Query(
        name="update_dim",
        writes=(WriteOp("dim", rows=100, sequential=False, indexes=("dim_pkey",)),),
    )


@pytest.fixture
def small_workload(scan_query, lookup_query, join_query, write_query) -> Workload:
    """A mixed DSS workload over the small catalog."""
    return Workload(
        name="small-mixed",
        kind="dss",
        queries=(scan_query, lookup_query, join_query, write_query, scan_query, lookup_query),
        concurrency=1,
    )


@pytest.fixture
def small_objects(small_catalog):
    """The placeable objects of the small catalog."""
    return small_catalog.database_objects()


def uniform_placement(catalog: DatabaseCatalog, storage_class: StorageClass):
    """Helper: place every catalog object on one storage class."""
    return {obj.name: storage_class for obj in catalog.database_objects()}
