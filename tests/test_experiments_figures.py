"""Golden-number tests for the store-driven figure pipeline.

The load-bearing property: a figure assembled from a freshly populated
results store is **bitwise-equal** (on its deterministic ``data``/``text``
zones -- :func:`strip_timing` drops the honest wall-clock measurements) to
the same figure computed by running the solvers directly, and both stay
stable across a crash/re-run of the sweep.  Figure 9 and Table 1 at the
small scenario scale keep this fast enough for every test run; their
golden JSONs live in ``tests/golden/``.

To refresh the goldens after an intentional numeric change::

    REPRO_WRITE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_experiments_figures.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import __main__ as cli
from repro.experiments import orchestrator, specs
from repro.experiments.store import ResultsStore

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FIGURES = ("fig9", "table1")
SCALE = "small"


def _populate(path):
    """Populate a fresh store with everything the golden figures need."""
    store = ResultsStore(path)
    report = orchestrator.run_figures(
        GOLDEN_FIGURES, store, scale=SCALE, workers=2
    )
    assert report.complete, f"sweep failed: {report.failed}"
    return store


@pytest.fixture(scope="module")
def small_store(tmp_path_factory):
    return _populate(tmp_path_factory.mktemp("figures") / "experiments.sqlite")


def _golden_view(figure, lookup):
    return specs.strip_timing(specs.assemble_figure(figure, lookup, SCALE))


@pytest.mark.parametrize("figure", GOLDEN_FIGURES)
def test_store_path_equals_direct_path_bitwise(small_store, figure):
    from_store = _golden_view(figure, orchestrator.store_lookup(small_store))
    direct = _golden_view(figure, orchestrator.direct_lookup())
    # Dict equality on round-tripped JSON floats is bitwise float equality.
    assert from_store == direct


@pytest.mark.parametrize("figure", GOLDEN_FIGURES)
def test_figures_match_committed_goldens(small_store, figure):
    golden_path = GOLDEN_DIR / f"{figure}.json"
    view = _golden_view(figure, orchestrator.store_lookup(small_store))
    rendered = json.dumps(view, indent=2, sort_keys=True, allow_nan=False) + "\n"
    if os.environ.get("REPRO_WRITE_GOLDEN"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(rendered)
        pytest.skip(f"rewrote golden {golden_path}")
    assert golden_path.exists(), (
        f"missing golden {golden_path}; generate it with "
        "REPRO_WRITE_GOLDEN=1 pytest tests/test_experiments_figures.py"
    )
    golden = json.loads(golden_path.read_text())
    assert view == golden, (
        f"{figure} drifted from its golden; if the change is intentional, "
        "refresh with REPRO_WRITE_GOLDEN=1"
    )


def test_regenerated_store_reproduces_identical_figures(small_store, tmp_path):
    """A second sweep into a fresh store (simulating re-run after a crash
    wiped the first) lands on bitwise-identical figure data."""
    second = _populate(tmp_path / "experiments-rerun.sqlite")
    for figure in GOLDEN_FIGURES:
        assert _golden_view(figure, orchestrator.store_lookup(second)) == _golden_view(
            figure, orchestrator.store_lookup(small_store)
        )


def test_resumed_sweep_completes_only_the_remainder(tmp_path):
    """Populate half the matrix, then resume: the second sweep executes
    exactly the missing specs and the assembled figures match the goldens'
    source store anyway."""
    path = tmp_path / "experiments-resume.sqlite"
    store = ResultsStore(path)
    matrix = specs.matrix(SCALE, GOLDEN_FIGURES)
    half = matrix[: len(matrix) // 2]
    first = orchestrator.run_specs(half, store, workers=2)
    assert first.complete

    resumed = orchestrator.run_figures(GOLDEN_FIGURES, store, scale=SCALE, workers=2)
    assert resumed.complete
    executed = {spec.signature for spec in resumed.executed}
    skipped = {spec.signature for spec in resumed.skipped}
    assert skipped == {spec.signature for spec in half}
    assert executed == {spec.signature for spec in matrix} - skipped

    for figure in GOLDEN_FIGURES:
        assert _golden_view(figure, orchestrator.store_lookup(store)) == _golden_view(
            figure, orchestrator.direct_lookup()
        )


class TestFiguresCli:
    def test_check_passes_against_committed_goldens(self, small_store, capsys):
        if os.environ.get("REPRO_WRITE_GOLDEN"):
            pytest.skip("goldens are being rewritten this run")
        code = cli.main([
            "figures",
            "--store", str(small_store.path),
            "--scale", SCALE,
            "--figures", ",".join(GOLDEN_FIGURES),
            "--check", str(GOLDEN_DIR),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "2 figures match their goldens" in out

    def test_check_flags_drift(self, small_store, tmp_path, capsys):
        drifted_dir = tmp_path / "golden"
        drifted_dir.mkdir()
        golden = json.loads((GOLDEN_DIR / "table1.json").read_text())
        golden["data"]["prices_cents_per_gb_hour"]["HDD"] = 123456.0
        (drifted_dir / "table1.json").write_text(json.dumps(golden))
        code = cli.main([
            "figures",
            "--store", str(small_store.path),
            "--scale", SCALE,
            "--figures", "table1",
            "--check", str(drifted_dir),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "drifted" in captured.err

    def test_check_refuses_an_empty_golden_dir(self, small_store, tmp_path, capsys):
        empty = tmp_path / "golden-empty"
        empty.mkdir()
        code = cli.main([
            "figures",
            "--store", str(small_store.path),
            "--scale", SCALE,
            "--figures", "fig9",
            "--check", str(empty),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "no goldens found" in captured.err

    def test_unpopulated_store_is_a_clear_error_not_a_crash(self, tmp_path, capsys):
        empty_store = tmp_path / "empty.sqlite"
        ResultsStore(empty_store)
        code = cli.main([
            "figures",
            "--store", str(empty_store),
            "--scale", SCALE,
            "--figures", "table1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "python -m repro.experiments run" in captured.err

    def test_out_writes_full_payloads_with_timing(self, small_store, tmp_path):
        out_dir = tmp_path / "out"
        code = cli.main([
            "figures",
            "--store", str(small_store.path),
            "--scale", SCALE,
            "--figures", "fig9",
            "--out", str(out_dir),
        ])
        assert code == 0
        written = json.loads((out_dir / "fig9.json").read_text())
        arm = next(iter(written.values()))
        assert "timing" in arm  # --out keeps the wall-clock zone
        assert specs.strip_timing(written) == _golden_view(
            "fig9", orchestrator.store_lookup(small_store)
        )
