"""Device specs, RAID composition and pricing (Tables 1 and 2)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.storage import catalog
from repro.storage.device import DeviceKind, DeviceSpec
from repro.storage.pricing import PricingModel, amortized_price_cents_per_gb_hour
from repro.storage.raid import DEFAULT_RAID0_SCALING, Raid0Array, RaidController
from repro.storage.io_profile import IOType


class TestDeviceSpec:
    def test_table2_hdd_spec(self):
        assert catalog.HDD_DEVICE.capacity_gb == 500
        assert catalog.HDD_DEVICE.purchase_cost_usd == 34
        assert catalog.HDD_DEVICE.rpm == 7200
        assert catalog.HDD_DEVICE.is_hdd and not catalog.HDD_DEVICE.is_ssd

    def test_table2_hssd_spec(self):
        assert catalog.HSSD_DEVICE.capacity_gb == 80
        assert catalog.HSSD_DEVICE.purchase_cost_usd == 3550
        assert catalog.HSSD_DEVICE.flash_type == "SLC"
        assert catalog.HSSD_DEVICE.is_ssd

    def test_dollars_per_gb(self):
        assert catalog.LSSD_DEVICE.dollars_per_gb == pytest.approx(253 / 128)

    def test_describe_mentions_name_and_capacity(self):
        text = catalog.HDD_DEVICE.describe()
        assert "WD Caviar Black" in text and "500" in text

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec("bad", DeviceKind.HDD, capacity_gb=0, purchase_cost_usd=10, power_watts=5)

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec("bad", DeviceKind.HDD, capacity_gb=10, purchase_cost_usd=-1, power_watts=5)


class TestRaid0:
    def test_capacity_and_cost_aggregation(self):
        array = Raid0Array(member=catalog.HDD_DEVICE, num_members=2,
                           controller=catalog.RAID_CONTROLLER)
        assert array.capacity_gb == 1000
        assert array.purchase_cost_usd == pytest.approx(2 * 34 + 110)
        assert array.power_watts == pytest.approx(2 * 8.3 + 8.25)

    def test_name_mentions_raid(self):
        array = Raid0Array(member=catalog.LSSD_DEVICE)
        assert "RAID 0" in array.name

    def test_zero_members_rejected(self):
        with pytest.raises(ConfigurationError):
            Raid0Array(member=catalog.HDD_DEVICE, num_members=0)

    def test_derived_profile_is_faster_for_sequential_reads(self):
        array = Raid0Array(member=catalog.HDD_DEVICE, num_members=2)
        derived = array.derive_profile(catalog.HDD_PROFILE)
        assert derived.service_time_ms(IOType.SEQ_READ, 1) < catalog.HDD_PROFILE.service_time_ms(
            IOType.SEQ_READ, 1
        )

    def test_derived_profile_larger_arrays_scale_sequential(self):
        two = Raid0Array(member=catalog.HDD_DEVICE, num_members=2)
        four = Raid0Array(member=catalog.HDD_DEVICE, num_members=4)
        assert four.derive_profile(catalog.HDD_PROFILE).service_time_ms(
            IOType.SEQ_READ, 1
        ) < two.derive_profile(catalog.HDD_PROFILE).service_time_ms(IOType.SEQ_READ, 1)

    def test_controller_validation(self):
        with pytest.raises(ConfigurationError):
            RaidController(purchase_cost_usd=-5)


class TestPricing:
    def test_paper_prices_within_ten_percent(self):
        """The regenerated cent/GB/hour prices match Table 1 within 10 %."""
        for name, storage_class in catalog.all_storage_classes().items():
            published = catalog.PUBLISHED_PRICES_CENTS_PER_GB_HOUR[name]
            assert storage_class.price_cents_per_gb_hour == pytest.approx(published, rel=0.10)

    def test_lssd_price_matches_paper_closely(self):
        price = catalog.lssd().price_cents_per_gb_hour
        assert price == pytest.approx(7.65e-3, rel=0.01)

    def test_hssd_is_three_orders_of_magnitude_pricier_than_hdd(self):
        prices = {name: sc.price_cents_per_gb_hour for name, sc in catalog.all_storage_classes().items()}
        assert prices["H-SSD"] / prices["HDD"] > 300

    def test_energy_component(self):
        model = PricingModel()
        # 1 kW at $0.07/kWh is 7 cents per hour.
        assert model.energy_cents_per_hour(1000.0) == pytest.approx(7.0)

    def test_amortized_purchase_component(self):
        model = PricingModel(lifespan_months=36)
        cents_per_hour = model.amortized_purchase_cents_per_hour(3550.0)
        assert cents_per_hour == pytest.approx(3550 * 100 / (36 * 730.5))

    def test_functional_shortcut_matches_class(self):
        direct = amortized_price_cents_per_gb_hour(100.0, 10.0, 50.0)
        model = PricingModel().price_cents_per_gb_hour(100.0, 10.0, 50.0)
        assert direct == pytest.approx(model)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            PricingModel().price_cents_per_gb_hour(10.0, 1.0, 0.0)

    def test_negative_energy_price_rejected(self):
        with pytest.raises(ConfigurationError):
            PricingModel(energy_usd_per_kwh=-0.01)


class TestBuiltinCatalog:
    def test_five_storage_classes(self):
        assert set(catalog.STORAGE_CLASS_NAMES) == set(catalog.all_storage_classes())

    def test_make_storage_class_unknown_name(self):
        with pytest.raises(KeyError):
            catalog.make_storage_class("floppy")

    def test_box1_composition(self):
        names = set(catalog.box1().class_names)
        assert names == {"H-SSD", "L-SSD", "HDD RAID 0"}

    def test_box2_composition(self):
        names = set(catalog.box2().class_names)
        assert names == {"H-SSD", "L-SSD RAID 0", "HDD"}

    def test_full_system_has_all_classes_sorted_by_price(self):
        system = catalog.full_system()
        prices = [sc.price_cents_per_gb_hour for sc in system]
        assert prices == sorted(prices, reverse=True)
        assert len(system) == 5

    def test_raid_scaling_constants_are_speedups(self):
        assert all(0 < factor <= 1.0 for factor in DEFAULT_RAID0_SCALING.values())
