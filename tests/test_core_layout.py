"""Objects, groups, layouts, TOC model, profiles, moves and feasibility."""

import pytest

from repro.core.feasibility import FeasibilityChecker
from repro.core.layout import Layout
from repro.core.moves import Move, enumerate_moves, group_cost_cents_per_hour
from repro.core.profiler import WorkloadProfiler
from repro.core.profiles import WorkloadProfileSet, baseline_placements, placement_for_group
from repro.core.toc import TOCModel
from repro.exceptions import (
    CapacityError,
    ConfigurationError,
    ProfileError,
    UnknownObjectError,
    UnknownStorageClassError,
)
from repro.objects import DatabaseObject, ObjectGroup, ObjectKind, group_objects, total_size_gb
from repro.sla.constraints import ResponseTimeConstraint
from repro.storage import catalog as storage_catalog
from repro.storage.io_profile import IOType


@pytest.fixture
def objects():
    return [
        DatabaseObject("orders", 10.0, ObjectKind.TABLE, table="orders"),
        DatabaseObject("orders_pkey", 2.0, ObjectKind.INDEX, table="orders"),
        DatabaseObject("items", 30.0, ObjectKind.TABLE, table="items"),
        DatabaseObject("wal", 1.0, ObjectKind.LOG),
    ]


@pytest.fixture
def box1(box1_system):
    return box1_system


class TestObjectsAndGroups:
    def test_grouping_puts_index_with_table(self, objects):
        groups = {group.key: group for group in group_objects(objects)}
        assert groups["orders"].member_names == ("orders", "orders_pkey")
        assert groups["items"].member_names == ("items",)
        assert groups["wal"].member_names == ("wal",)

    def test_orphan_index_forms_own_group(self):
        orphan = DatabaseObject("ghost_idx", 1.0, ObjectKind.INDEX, table="missing")
        groups = group_objects([orphan])
        assert groups[0].key == "ghost_idx"

    def test_duplicate_names_rejected(self):
        duplicate = DatabaseObject("a", 1.0)
        with pytest.raises(ConfigurationError):
            group_objects([duplicate, duplicate])

    def test_group_size_and_member_lookup(self, objects):
        group = group_objects(objects)[0]
        assert group.size_gb == pytest.approx(12.0)
        assert group.member("orders_pkey").is_index
        with pytest.raises(KeyError):
            group.member("zzz")

    def test_total_size(self, objects):
        assert total_size_gb(objects) == pytest.approx(43.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            DatabaseObject("bad", -1.0)


class TestLayout:
    def test_uniform_layout(self, objects, box1):
        layout = Layout.uniform(objects, box1, "H-SSD")
        assert all(layout.class_name_of(obj.name) == "H-SSD" for obj in objects)
        assert layout.space_used_gb()["H-SSD"] == pytest.approx(43.0)

    def test_missing_assignment_rejected(self, objects, box1):
        with pytest.raises(ConfigurationError):
            Layout(objects, box1, {"orders": "H-SSD"})

    def test_unknown_object_rejected(self, objects, box1):
        assignment = {obj.name: "H-SSD" for obj in objects}
        assignment["ghost"] = "H-SSD"
        with pytest.raises(UnknownObjectError):
            Layout(objects, box1, assignment)

    def test_unknown_class_rejected(self, objects, box1):
        assignment = {obj.name: "H-SSD" for obj in objects}
        assignment["orders"] = "floppy"
        with pytest.raises(UnknownStorageClassError):
            Layout(objects, box1, assignment)

    def test_storage_cost_is_price_times_space(self, objects, box1):
        layout = Layout.uniform(objects, box1, "L-SSD")
        expected = 43.0 * box1["L-SSD"].price_cents_per_gb_hour
        assert layout.storage_cost_cents_per_hour() == pytest.approx(expected)

    def test_capacity_violation_detected(self, objects, box1):
        # H-SSD holds only 80 GB; force 43 GB -> fine, then shrink capacity.
        limited = box1.with_capacity_limits({"H-SSD": 20.0})
        layout = Layout.uniform(objects, limited, "H-SSD")
        assert not layout.satisfies_capacity()
        assert layout.excess_gb() == pytest.approx(23.0)
        with pytest.raises(CapacityError):
            layout.validate_capacity()

    def test_with_assignment_returns_new_layout(self, objects, box1):
        layout = Layout.uniform(objects, box1, "H-SSD")
        moved = layout.with_assignment("items", "HDD RAID 0")
        assert layout.class_name_of("items") == "H-SSD"
        assert moved.class_name_of("items") == "HDD RAID 0"
        assert moved.storage_cost_cents_per_hour() < layout.storage_cost_cents_per_hour()

    def test_with_group_placement(self, objects, box1):
        layout = Layout.uniform(objects, box1, "H-SSD")
        group = group_objects(objects)[0]
        moved = layout.with_group_placement(group, ("HDD RAID 0", "L-SSD"))
        assert moved.class_name_of("orders") == "HDD RAID 0"
        assert moved.class_name_of("orders_pkey") == "L-SSD"

    def test_with_group_placement_length_mismatch(self, objects, box1):
        layout = Layout.uniform(objects, box1, "H-SSD")
        group = group_objects(objects)[0]
        with pytest.raises(ConfigurationError):
            layout.with_group_placement(group, ("HDD RAID 0",))

    def test_objects_on_and_describe(self, objects, box1):
        layout = Layout.uniform(objects, box1, "H-SSD").with_assignment("wal", "L-SSD")
        assert [obj.name for obj in layout.objects_on("L-SSD")] == ["wal"]
        assert "wal" in layout.describe()

    def test_equality_and_hash_by_assignment(self, objects, box1):
        first = Layout.uniform(objects, box1, "H-SSD")
        second = Layout.uniform(objects, box1, "H-SSD").renamed("other")
        assert first == second
        assert hash(first) == hash(second)

    def test_placement_maps_to_storage_classes(self, objects, box1):
        placement = Layout.uniform(objects, box1, "H-SSD").placement()
        assert placement["orders"].name == "H-SSD"

    def test_placement_is_cached(self, objects, box1):
        """Repeated placement() calls return the same mapping object -- DOT
        and the batch evaluators call it once per candidate evaluation."""
        layout = Layout.uniform(objects, box1, "H-SSD")
        assert layout.placement() is layout.placement()

    def test_derived_layouts_do_not_share_placement_cache(self, objects, box1):
        layout = Layout.uniform(objects, box1, "H-SSD")
        original = layout.placement()
        moved = layout.with_assignment("orders", "HDD RAID 0")
        assert moved.placement() is not original
        assert original["orders"].name == "H-SSD"
        assert moved.placement()["orders"].name == "HDD RAID 0"


class TestProfilesAndProfiler:
    def test_baseline_placements_count(self, box1):
        assert len(baseline_placements(box1, 2)) == 9
        assert len(baseline_placements(box1, 1)) == 3

    def test_placement_for_group_prefix_and_padding(self, objects, box1):
        groups = group_objects(objects)
        pattern = ("H-SSD", "L-SSD")
        assert placement_for_group(pattern, groups[0]) == ("H-SSD", "L-SSD")
        assert placement_for_group(pattern, groups[1]) == ("H-SSD",)
        assert placement_for_group(("H-SSD",), groups[0]) == ("H-SSD", "H-SSD")

    def test_profiler_produces_profiles_for_all_patterns(
        self, small_objects, box1, small_estimator, small_workload
    ):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        assert len(profiles.patterns) == len(box1) ** profiler.max_group_size
        assert "fact" in profiles.objects_profiled()

    def test_profile_single_pattern(self, small_objects, box1, small_estimator, small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        pattern = profiler.single_baseline_pattern()
        profiles = profiler.profile(small_workload, patterns=[pattern])
        assert profiles.patterns == (pattern,)

    def test_io_time_share_uses_placement_latencies(
        self, small_objects, box1, small_estimator, small_workload
    ):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        group = next(g for g in profiler.groups if g.key == "fact")
        fast = profiles.io_time_share_ms(group, ("H-SSD", "H-SSD"))
        slow = profiles.io_time_share_ms(group, ("HDD RAID 0", "HDD RAID 0"))
        assert slow > fast

    def test_io_time_share_length_mismatch(self, small_objects, box1, small_estimator,
                                            small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        group = profiler.groups[0]
        with pytest.raises(ProfileError):
            profiles.io_time_share_ms(group, ("H-SSD",) * (len(group) + 1))

    def test_unknown_pattern_without_fallback_raises(self, box1):
        profiles = WorkloadProfileSet(system=box1)
        profiles.add(("H-SSD",), {"a": {IOType.SEQ_READ: 1.0}})
        profiles.add(("L-SSD",), {"a": {IOType.SEQ_READ: 2.0}})
        with pytest.raises(ProfileError):
            profiles.io_counts(("HDD RAID 0",), "a")

    def test_invalid_mode_rejected(self, small_objects, box1, small_estimator, small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        with pytest.raises(ProfileError):
            profiler.profile(small_workload, mode="magic")

    def test_testrun_profiles_differ_from_estimates_with_buffer(
        self, small_objects, box1, small_catalog, small_workload
    ):
        from repro.dbms.buffer_pool import BufferPool
        from repro.dbms.executor import WorkloadEstimator

        estimator = WorkloadEstimator(small_catalog, buffer_pool=BufferPool(2.0), noise=0.0)
        profiler = WorkloadProfiler(small_objects, box1, estimator)
        pattern = profiler.single_baseline_pattern()
        estimated = profiler.profile(small_workload, mode="estimate", patterns=[pattern])
        actual = profiler.profile(small_workload, mode="testrun", patterns=[pattern])
        group = profiler.groups[0]
        placement = placement_for_group(pattern, group)
        assert actual.io_time_share_ms(group, placement) <= estimated.io_time_share_ms(
            group, placement
        )


class TestMoves:
    def test_enumerate_moves_counts(self, small_objects, box1, small_estimator, small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        moves = enumerate_moves(profiler.groups, box1, profiles)
        # Two groups of size two: each has 3^2 - 1 = 8 non-initial placements.
        assert len(moves) == 16

    def test_moves_sorted_by_score(self, small_objects, box1, small_estimator, small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        moves = enumerate_moves(profiler.groups, box1, profiles)
        scores = [move.score for move in moves]
        assert scores == sorted(scores)

    def test_move_apply_changes_group_placement(self, small_objects, box1, small_estimator,
                                                small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        moves = enumerate_moves(profiler.groups, box1, profiles)
        layout = Layout.uniform(small_objects, box1, "H-SSD")
        moved = moves[0].apply_to(layout)
        assert moved.group_placement(moves[0].group) == moves[0].placement

    def test_all_moves_save_cost_by_default(self, small_objects, box1, small_estimator,
                                            small_workload):
        profiler = WorkloadProfiler(small_objects, box1, small_estimator)
        profiles = profiler.profile(small_workload, mode="estimate")
        for move in enumerate_moves(profiler.groups, box1, profiles):
            assert move.saves_cost

    def test_group_cost(self, objects, box1):
        group = group_objects(objects)[0]
        cost = group_cost_cents_per_hour(group, ("H-SSD", "H-SSD"), box1)
        assert cost == pytest.approx(12.0 * box1["H-SSD"].price_cents_per_gb_hour)

    def test_move_describe_mentions_group_and_score(self, objects, box1):
        group = group_objects(objects)[0]
        move = Move(group=group, placement=("L-SSD", "L-SSD"), time_penalty_ms=5.0,
                    cost_saving_cents_per_hour=2.0)
        text = move.describe()
        assert "orders" in text and "score" in text
        assert move.score == pytest.approx(2.5)

    def test_zero_saving_move_scores_infinite(self, objects, box1):
        group = group_objects(objects)[0]
        move = Move(group=group, placement=("H-SSD", "H-SSD"), time_penalty_ms=5.0,
                    cost_saving_cents_per_hour=0.0)
        assert move.score == float("inf")


class TestTOCAndFeasibility:
    def test_dss_toc_is_cost_times_hours(self, small_objects, box1, small_estimator,
                                         small_workload):
        toc = TOCModel(small_estimator)
        layout = Layout.uniform(small_objects, box1, "H-SSD")
        report = toc.evaluate(layout, small_workload, mode="estimate")
        assert report.metric == "cents_per_workload_execution"
        assert report.toc_cents == pytest.approx(
            report.layout_cost_cents_per_hour * report.execution_time_s / 3600.0
        )

    def test_cheaper_class_has_lower_layout_cost_but_longer_time(
        self, small_objects, box1, small_estimator, small_workload
    ):
        toc = TOCModel(small_estimator)
        expensive = toc.evaluate(Layout.uniform(small_objects, box1, "H-SSD"), small_workload)
        cheap = toc.evaluate(Layout.uniform(small_objects, box1, "HDD RAID 0"), small_workload)
        assert cheap.layout_cost_cents_per_hour < expensive.layout_cost_cents_per_hour
        assert cheap.execution_time_s > expensive.execution_time_s

    def test_cost_override_changes_layout_cost(self, small_objects, box1, small_estimator,
                                               small_workload):
        toc = TOCModel(small_estimator, cost_override=lambda layout: 42.0)
        report = toc.evaluate(Layout.uniform(small_objects, box1, "H-SSD"), small_workload)
        assert report.layout_cost_cents_per_hour == 42.0

    def test_compare_returns_all_layouts(self, small_objects, box1, small_estimator,
                                         small_workload):
        toc = TOCModel(small_estimator)
        layouts = {
            "a": Layout.uniform(small_objects, box1, "H-SSD"),
            "b": Layout.uniform(small_objects, box1, "L-SSD"),
        }
        reports = toc.compare(layouts, small_workload)
        assert set(reports) == {"a", "b"}

    def test_feasibility_capacity_and_performance(self, small_objects, box1, small_estimator,
                                                  small_workload):
        toc = TOCModel(small_estimator)
        layout = Layout.uniform(small_objects, box1, "H-SSD")
        report = toc.evaluate(layout, small_workload, mode="estimate")
        generous = FeasibilityChecker(
            ResponseTimeConstraint({name: 1e12 for name in small_workload.query_names})
        )
        assert generous.check(layout, report.run_result).feasible
        strict = FeasibilityChecker(
            ResponseTimeConstraint({name: 1e-6 for name in small_workload.query_names})
        )
        result = strict.check(layout, report.run_result)
        assert not result.feasible and result.capacity_ok and not result.performance_ok

    def test_feasibility_capacity_violation(self, small_objects, box1):
        limited = box1.with_capacity_limits({"H-SSD": 0.01})
        layout = Layout.uniform(small_objects, limited, "H-SSD")
        result = FeasibilityChecker().check_capacity(layout)
        assert not result.capacity_ok
        assert "capacity violated" in result.describe()

    def test_checker_with_constraint_copy(self):
        checker = FeasibilityChecker()
        assert checker.with_constraint(None).constraint is None
