"""The sharded, pruned parallel enumeration engine.

The contract under test mirrors the batch engine's: serial scalar, serial
batch and parallel pruned enumeration must return *bitwise identical* best
layouts and TOCs on every supported configuration (flat and per-group
enumeration, pinned objects, SLAs, OLTP mixes, the Figure 9 TPC-C study),
and the branch-and-bound pruning must be sound -- the pruned engine finds
the same optimum as the unpruned enumeration on randomized spaces.
"""

import pickle

import numpy as np
import pytest

from repro.core.batch_eval import (
    BatchLayoutEvaluator,
    UnsupportedBatchEvaluation,
    _mixed_radix_weights,
    iter_assignment_chunks,
)
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.layout import Layout
from repro.core.parallel_search import (
    EnumerationSpec,
    ParallelEnumerationEngine,
    SearchProgress,
    _process_shard,
    _Incumbent,
    _PruningBounds,
)
from repro.core.toc import TOCModel
from repro.dbms.datagen import SyntheticTableSpec, build_synthetic_catalog
from repro.exceptions import ShardFailureError
from repro.dbms.executor import WorkloadEstimator
from repro.dbms.query import Query, TableAccess
from repro.sla.constraints import RelativeSLA
from repro.storage import catalog as storage_catalog
from repro.workloads.workload import Workload

WORKERS = 2


def fresh_estimator(catalog):
    return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)


@pytest.fixture
def loose_constraint(small_objects, box1_system, small_catalog, small_workload):
    toc = TOCModel(fresh_estimator(small_catalog))
    reference = toc.evaluate(
        Layout.uniform(small_objects, box1_system, "H-SSD"), small_workload, mode="estimate"
    )
    return RelativeSLA(0.25).resolve(reference.run_result)


@pytest.fixture
def oltp_workload(scan_query, lookup_query, write_query):
    return Workload(
        name="tiny-oltp",
        kind="oltp",
        transaction_mix=((scan_query, 1.0), (lookup_query, 8.0), (write_query, 3.0)),
        concurrency=50,
        measured_transaction_fraction=0.4,
    )


# ---------------------------------------------------------------------------
# Sub-range enumeration
# ---------------------------------------------------------------------------

class TestRangeEnumeration:
    def test_subrange_matches_full_enumeration(self):
        full = np.concatenate([chunk for _, chunk in iter_assignment_chunks(4, 3, 16)])
        rows = np.concatenate(
            [chunk for _, chunk in iter_assignment_chunks(4, 3, 7, start=13, stop=61)]
        )
        assert (rows == full[13:61]).all()

    def test_subrange_start_indices(self):
        starts = [start for start, _ in iter_assignment_chunks(4, 3, 10, start=5, stop=40)]
        assert starts == [5, 15, 25, 35]

    def test_empty_and_invalid_ranges(self):
        assert list(iter_assignment_chunks(3, 3, 4, start=7, stop=7)) == []
        with pytest.raises(ValueError):
            list(iter_assignment_chunks(3, 3, 4, start=-1))
        with pytest.raises(ValueError):
            list(iter_assignment_chunks(3, 3, 4, start=5, stop=3))
        with pytest.raises(ValueError):
            list(iter_assignment_chunks(3, 3, 4, stop=3**3 + 1))

    # -- edge cases at the paper's full 19-object width -------------------

    @staticmethod
    def decode_index(index, num_objects, num_classes):
        """Reference mixed-radix decode in arbitrary-precision python ints."""
        row = []
        for _ in range(num_objects):
            row.append(index % num_classes)
            index //= num_classes
        return row[::-1]

    def test_int64_overflow_guard(self):
        # Mixed-radix indices live in int64; a space that does not fit must
        # be refused up front, not silently wrapped.  3^40 and 2^63 both
        # exceed int64; 2^62 is the largest clean power-of-two space.
        with pytest.raises(ValueError):
            next(iter_assignment_chunks(40, 3))
        with pytest.raises(ValueError):
            next(iter_assignment_chunks(63, 2))
        start = 2**62 - 3
        rows = np.concatenate(
            [chunk for _, chunk in
             iter_assignment_chunks(62, 2, 8, start=start, stop=2**62)]
        )
        assert rows.shape == (3, 62)
        assert (rows[-1] == 1).all()  # the final assignment of the space
        with pytest.raises(UnsupportedBatchEvaluation):
            _mixed_radix_weights(64, 2)  # the 2^63 weight cannot be encoded

    def test_last_partial_chunk_at_paper_width(self):
        # The final chunk of a 3^19 stream is almost always partial; its
        # geometry (start index, row count, decoded digits) must be exact.
        total = 3**19
        start = total - 10
        chunks = list(iter_assignment_chunks(19, 3, 7, start=start, stop=total))
        assert [chunk_start for chunk_start, _ in chunks] == [start, start + 7]
        assert [matrix.shape[0] for _, matrix in chunks] == [7, 3]
        rows = np.concatenate([matrix for _, matrix in chunks])
        for offset, row in enumerate(rows):
            assert list(row) == self.decode_index(start + offset, 19, 3)
        assert (rows[-1] == 2).all()  # the very last assignment: all on class 2

    def test_steal_boundaries_cover_each_index_once(self):
        # The steal schedule splits one subtree range into many fine units;
        # stitching their chunk streams back together must visit each index
        # exactly once, in order, bitwise equal to a single direct pass.
        total = 3**19
        window_lo, window_hi = total - 5000, total - 17
        boundaries = np.unique(
            np.linspace(window_lo, window_hi, 23).astype(np.int64)
        )
        pieces = []
        for unit_lo, unit_hi in zip(boundaries[:-1], boundaries[1:]):
            pieces.extend(
                iter_assignment_chunks(19, 3, 64, start=int(unit_lo), stop=int(unit_hi))
            )
        expected_start = window_lo
        for chunk_start, matrix in pieces:
            assert chunk_start == expected_start  # no skip, no overlap
            expected_start += matrix.shape[0]
        assert expected_start == window_hi
        stitched = np.concatenate([matrix for _, matrix in pieces])
        direct = np.concatenate(
            [matrix for _, matrix in
             iter_assignment_chunks(19, 3, 512, start=window_lo, stop=window_hi)]
        )
        assert (stitched == direct).all()


# ---------------------------------------------------------------------------
# Serial vs parallel identity
# ---------------------------------------------------------------------------

def run_three_paths(objects, system, catalog, workload, **kwargs):
    scalar = ExhaustiveSearch(
        objects, system, fresh_estimator(catalog), batch=False, **kwargs
    ).search(workload)
    batch = ExhaustiveSearch(
        objects, system, fresh_estimator(catalog), batch=True, **kwargs
    ).search(workload)
    parallel = ExhaustiveSearch(
        objects, system, fresh_estimator(catalog), batch=True, workers=WORKERS, **kwargs
    ).search(workload)
    return scalar, batch, parallel


def assert_identical(reference, candidate):
    assert candidate.feasible == reference.feasible
    assert candidate.toc_cents == reference.toc_cents
    assert candidate.layout == reference.layout


class TestParallelIdentity:
    @pytest.mark.parametrize("per_group", [False, True])
    def test_unconstrained(self, small_objects, box1_system, small_catalog, small_workload,
                           per_group):
        scalar, batch, parallel = run_three_paths(
            small_objects, box1_system, small_catalog, small_workload, per_group=per_group
        )
        assert_identical(scalar, batch)
        assert_identical(scalar, parallel)

    def test_with_response_time_sla(self, small_objects, box1_system, small_catalog,
                                    small_workload, loose_constraint):
        scalar, batch, parallel = run_three_paths(
            small_objects, box1_system, small_catalog, small_workload,
            constraint=loose_constraint,
        )
        assert_identical(scalar, batch)
        assert_identical(scalar, parallel)

    def test_with_pinned_objects(self, small_objects, box1_system, small_catalog,
                                 small_workload):
        movable = [obj for obj in small_objects if obj.table == "fact"]
        pinned = [obj for obj in small_objects if obj.table != "fact"]
        scalar, batch, parallel = run_three_paths(
            movable, box1_system, small_catalog, small_workload,
            pinned_objects=pinned, pinned_class="HDD RAID 0",
        )
        assert_identical(scalar, batch)
        assert_identical(scalar, parallel)
        for obj in pinned:
            assert parallel.layout.class_name_of(obj.name) == "HDD RAID 0"

    def test_oltp_identity(self, small_objects, box1_system, small_catalog, oltp_workload):
        scalar, batch, parallel = run_three_paths(
            small_objects, box1_system, small_catalog, oltp_workload
        )
        assert_identical(scalar, batch)
        assert_identical(scalar, parallel)

    def test_capacity_limited_space(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        """A binding capacity limit exercises the subtree pruning bound."""
        total = sum(obj.size_gb for obj in small_objects)
        limited = box1_system.with_capacity_limits({"H-SSD": total * 0.4})
        scalar, batch, parallel = run_three_paths(
            small_objects, limited, small_catalog, small_workload
        )
        assert_identical(scalar, batch)
        assert_identical(scalar, parallel)

    def test_fully_infeasible_space(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        tiny = box1_system.with_capacity_limits(
            {name: 1e-6 for name in box1_system.class_names}
        )
        scalar, batch, parallel = run_three_paths(
            small_objects, tiny, small_catalog, small_workload
        )
        assert not scalar.feasible and not batch.feasible and not parallel.feasible
        assert parallel.toc_cents == float("inf")
        assert parallel.layout is None

    def test_soft_max_layouts_guard(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        """The parallel path may exceed max_layouts; the serial path may not."""
        from repro.exceptions import ConfigurationError

        space = len(box1_system) ** len(small_objects)
        with pytest.raises(ConfigurationError):
            ExhaustiveSearch(
                small_objects, box1_system, fresh_estimator(small_catalog),
                max_layouts=space - 1,
            ).search(small_workload)
        parallel = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            max_layouts=space - 1, workers=WORKERS,
        ).search(small_workload)
        serial = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).search(small_workload)
        assert_identical(serial, parallel)

    def test_parallel_records_stats(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        search = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), workers=WORKERS
        )
        result = search.search(small_workload)
        stats = search.last_batch_stats
        assert stats is not None
        assert stats.workers == WORKERS
        assert stats.shards > 0
        assert stats.build_s > 0.0
        space = search.search_space_size()
        assert result.evaluated_layouts + stats.pruned_layouts == space
        assert stats.candidates == result.evaluated_layouts


# ---------------------------------------------------------------------------
# Build-time accounting (ES-vs-DOT timing fairness)
# ---------------------------------------------------------------------------

class TestBuildTiming:
    def test_serial_batch_reports_build_separately(self, small_objects, box1_system,
                                                   small_catalog, small_workload):
        search = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=True
        )
        result = search.search(small_workload)
        assert search.last_batch_stats.build_s > 0.0
        assert result.elapsed_s > 0.0

    def test_warm_cache_shrinks_build_time_not_elapsed_meaning(
            self, small_objects, box1_system, small_catalog, small_workload):
        """With one shared cache, the second search's estimator work happens
        at build/warm-up time; the enumeration time stays comparable."""
        from repro.core.batch_eval import QueryEstimateCache

        estimator = fresh_estimator(small_catalog)
        cache = QueryEstimateCache(estimator, small_workload.concurrency)
        first = ExhaustiveSearch(
            small_objects, box1_system, estimator, estimate_cache=cache
        )
        first.search(small_workload)
        misses_before = cache.misses
        second = ExhaustiveSearch(
            small_objects, box1_system, estimator, estimate_cache=cache
        )
        second.search(small_workload)
        assert cache.misses == misses_before  # fully warm: no new estimates
        assert second.last_batch_stats.build_s > 0.0


# ---------------------------------------------------------------------------
# Pruning soundness on randomized spaces
# ---------------------------------------------------------------------------

def random_scenario(seed):
    """A seeded random catalog/workload/system with binding capacity limits."""
    rng = np.random.default_rng(seed)
    num_tables = int(rng.integers(2, 4))
    specs = [
        SyntheticTableSpec(
            f"t{i}",
            row_count=int(rng.integers(50_000, 2_000_000)),
            row_width_bytes=int(rng.integers(60, 300)),
        )
        for i in range(num_tables)
    ]
    catalog = build_synthetic_catalog(specs, name=f"rand-{seed}")
    queries = []
    for i in range(num_tables):
        queries.append(Query(
            name=f"scan_t{i}",
            accesses=(TableAccess(f"t{i}", selectivity=float(rng.uniform(0.3, 0.9))),),
            aggregate_rows=10_000,
        ))
        queries.append(Query(
            name=f"lookup_t{i}",
            accesses=(TableAccess(f"t{i}", selectivity=0.0001, index=f"t{i}_pkey",
                                  key_lookup=True),),
        ))
    workload = Workload(name=f"rand-{seed}", kind="dss", queries=tuple(queries),
                        concurrency=1)
    objects = catalog.database_objects()
    total_gb = sum(obj.size_gb for obj in objects)
    system = storage_catalog.box1().with_capacity_limits(
        {
            "H-SSD": total_gb * float(rng.uniform(0.2, 0.7)),
            "L-SSD": total_gb * float(rng.uniform(0.4, 1.2)),
        }
    )
    return catalog, workload, objects, system


def engine_run(objects, system, catalog, workload, prune, workers=1):
    """Run the enumeration engine directly (in-process unless workers > 1)."""
    estimator = fresh_estimator(catalog)
    evaluator = BatchLayoutEvaluator(objects, system, estimator, workload)
    spec = EnumerationSpec(
        variable_objects=objects, system=system, estimator=estimator,
        workload=workload, pinned=[], constraint=None, cache=evaluator.cache,
        chunk_size=64,
    )
    engine = ParallelEnumerationEngine.from_evaluator(
        evaluator, spec, workers=workers, prune=prune
    )
    progress = engine.run()
    layout = None
    if progress.best_row is not None:
        row = np.array(progress.best_row, dtype=np.int64)
        layout = Layout(list(objects), system, evaluator.assignment_for_row(row), name="ES")
    return progress, layout, engine


class TestPruningSoundness:
    @pytest.mark.parametrize("seed", [11, 23, 47, 101])
    def test_pruned_engine_matches_unpruned_optimum(self, seed):
        catalog, workload, objects, system = random_scenario(seed)
        space = len(system) ** len(objects)

        unpruned, unpruned_layout, _ = engine_run(objects, system, catalog, workload,
                                                  prune=False)
        pruned, pruned_layout, _ = engine_run(objects, system, catalog, workload,
                                              prune=True)
        assert unpruned.evaluated == space
        assert pruned.best_toc == unpruned.best_toc
        assert pruned.best_index == unpruned.best_index
        assert pruned_layout == unpruned_layout
        assert pruned.evaluated <= unpruned.evaluated
        assert pruned.evaluated + pruned.stats.pruned_layouts == space

        # And the reference: the serial batch exhaustive search.
        serial = ExhaustiveSearch(
            objects, system, fresh_estimator(catalog), max_layouts=space
        ).search(workload)
        if serial.feasible:
            assert pruned.best_toc == serial.toc_cents
            assert pruned_layout == serial.layout
        else:
            assert pruned_layout is None

    @pytest.mark.parametrize("seed", [7, 91])
    def test_pruned_pool_matches_unpruned_optimum(self, seed):
        catalog, workload, objects, system = random_scenario(seed)
        unpruned, unpruned_layout, _ = engine_run(objects, system, catalog, workload,
                                                  prune=False)
        pruned, pruned_layout, _ = engine_run(objects, system, catalog, workload,
                                              prune=True, workers=WORKERS)
        assert pruned.best_toc == unpruned.best_toc
        assert pruned.best_index == unpruned.best_index
        assert pruned_layout == unpruned_layout


# ---------------------------------------------------------------------------
# Pruning bounds never cut a capacity-feasible completion
# ---------------------------------------------------------------------------

class TestPruningBounds:
    def test_admissibility_is_conservative(self, small_objects, box1_system,
                                           small_catalog, small_workload):
        total = sum(obj.size_gb for obj in small_objects)
        limited = box1_system.with_capacity_limits({"H-SSD": total * 0.3})
        evaluator = BatchLayoutEvaluator(
            small_objects, limited, fresh_estimator(small_catalog), small_workload
        )
        prefix_depth = max(1, len(small_objects) - 2)
        bounds = _PruningBounds(evaluator, prefix_depth)
        num_classes = evaluator.num_classes
        subtree_size = num_classes ** (len(small_objects) - prefix_depth)
        _, prefixes = next(iter_assignment_chunks(
            prefix_depth, num_classes, chunk_size=num_classes**prefix_depth
        ))
        keep, cost_lb = bounds.admissible(prefixes)
        for position in range(prefixes.shape[0]):
            lo, hi = position * subtree_size, (position + 1) * subtree_size
            chunk = np.concatenate([
                c for _, c in iter_assignment_chunks(
                    len(small_objects), num_classes, subtree_size, start=lo, stop=hi
                )
            ])
            evaluation = evaluator.evaluate_chunk(chunk)
            if not keep[position]:
                # A pruned subtree must contain no capacity-feasible candidate.
                assert not evaluation.capacity_ok.any()
            # The cost bound must under-estimate every candidate's TOC/cost.
            finite = np.isfinite(evaluation.toc_cents)
            if finite.any() and evaluator.toc_floor_factor() > 0:
                floor = cost_lb[position] * evaluator.toc_floor_factor()
                assert (evaluation.toc_cents[finite] >= floor).all()


# ---------------------------------------------------------------------------
# Resumability and worker reconstruction
# ---------------------------------------------------------------------------

class TestResume:
    def test_partial_progress_resumes_to_identical_result(
            self, small_objects, box1_system, small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, estimator, small_workload
        )
        spec = EnumerationSpec(
            variable_objects=small_objects, system=box1_system, estimator=estimator,
            workload=small_workload, pinned=[], constraint=None,
            cache=evaluator.cache, chunk_size=64,
        )
        engine = ParallelEnumerationEngine.from_evaluator(evaluator, spec, workers=1)
        shards = engine.shard_ranges()
        assert len(shards) >= 2

        # Process the first half of the shards "before the interruption".
        partial = SearchProgress(total_shards=len(shards))
        bounds = _PruningBounds(engine.evaluator, engine.prefix_depth)
        incumbent = _Incumbent()
        for shard_id, lo, hi in shards[: len(shards) // 2]:
            partial.record(_process_shard(
                engine.evaluator, bounds, incumbent, shard_id, lo, hi,
                spec.chunk_size, engine.toc_floor_factor, True,
            ))
        assert not partial.finished

        # The checkpoint survives pickling (what an on-disk resume would do).
        partial = pickle.loads(pickle.dumps(partial))
        resumed = engine.run(partial)
        assert resumed.finished

        reference = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).search(small_workload)
        row = np.array(resumed.best_row, dtype=np.int64)
        layout = Layout(list(small_objects), box1_system,
                        engine.evaluator.assignment_for_row(row), name="ES")
        assert resumed.best_toc == reference.toc_cents
        assert layout == reference.layout

    def test_resume_under_different_geometry_is_refused(
            self, small_objects, box1_system, small_catalog, small_workload):
        """Shard ids only mean something under one geometry: a checkpoint
        recorded at one prefix depth must not resume at another, even when
        the shard counts coincide."""
        from repro.exceptions import ConfigurationError

        estimator = fresh_estimator(small_catalog)
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, estimator, small_workload
        )
        spec = EnumerationSpec(
            variable_objects=small_objects, system=box1_system, estimator=estimator,
            workload=small_workload, pinned=[], constraint=None,
            cache=evaluator.cache,
        )
        # Static schedule: both engines then cut the same shard count, so the
        # refusal must come from the prefix-depth stamp, not the shard count.
        engine_a = ParallelEnumerationEngine.from_evaluator(
            evaluator, spec, workers=1, prefix_depth=2, schedule="static"
        )
        engine_b = ParallelEnumerationEngine.from_evaluator(
            evaluator, spec, workers=1, prefix_depth=3, schedule="static"
        )
        assert len(engine_a.shard_ranges()) == len(engine_b.shard_ranges())
        progress = engine_a.run()
        with pytest.raises(ConfigurationError):
            engine_b.run(progress)

    def test_finished_progress_is_not_rerun(self, small_objects, box1_system,
                                            small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, estimator, small_workload
        )
        spec = EnumerationSpec(
            variable_objects=small_objects, system=box1_system, estimator=estimator,
            workload=small_workload, pinned=[], constraint=None,
            cache=evaluator.cache,
        )
        engine = ParallelEnumerationEngine.from_evaluator(evaluator, spec, workers=1)
        progress = engine.run()
        evaluated = progress.evaluated
        again = engine.run(progress)
        assert again is progress
        assert again.evaluated == evaluated


class TestWorkerReconstruction:
    def test_pickled_spec_rebuilds_a_read_only_evaluator(
            self, small_objects, box1_system, small_catalog, small_workload):
        """After the parent warms every signature, a worker reconstructed
        from the pickled spec never calls the optimizer again."""
        estimator = fresh_estimator(small_catalog)
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, estimator, small_workload
        )
        assert evaluator.warm_signatures()
        spec = EnumerationSpec(
            variable_objects=small_objects, system=box1_system, estimator=estimator,
            workload=small_workload, pinned=[], constraint=None,
            cache=evaluator.cache,
        )
        clone_spec = pickle.loads(pickle.dumps(spec))
        clone = clone_spec.build_evaluator()
        misses_before = clone.cache.misses
        for _, chunk in iter_assignment_chunks(
            len(small_objects), len(box1_system), 128
        ):
            clone.evaluate_chunk(chunk)
        assert clone.cache.misses == misses_before
        assert clone.stats.estimator_calls == 0

    def test_warmed_floor_factor_is_positive_for_dss(
            self, small_objects, box1_system, small_catalog, small_workload):
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, fresh_estimator(small_catalog), small_workload
        )
        assert evaluator.toc_floor_factor() == 0.0  # not warmed yet
        assert evaluator.warm_signatures()
        assert evaluator.toc_floor_factor() > 0.0


# ---------------------------------------------------------------------------
# The Figure 9 TPC-C configuration, parallel vs serial, bit for bit
# ---------------------------------------------------------------------------

class TestFigure9Parallel:
    def test_parallel_matches_batch_on_fig9_config(self):
        from repro.dbms.buffer_pool import BufferPool
        from repro.experiments import boxes
        from repro.experiments.runner import ExperimentRunner
        from repro.workloads import tpcc

        warehouses, concurrency = 300, 300
        catalog = tpcc.build_catalog(warehouses)
        workload = tpcc.oltp_workload(warehouses, concurrency=concurrency)
        all_objects = catalog.database_objects()
        hot_groups = {"stock", "order_line", "customer"}
        hot = [obj for obj in all_objects if (obj.table or obj.name) in hot_groups]
        cold = [obj for obj in all_objects if obj not in hot]
        system = boxes.box2(capacity_limits_gb={"H-SSD": 21.0})

        def build_search(**kwargs):
            estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
            runner = ExperimentRunner(all_objects, system, estimator)
            constraint = runner.resolve_constraint(
                workload, RelativeSLA(0.25, metric="throughput"), mode="estimate"
            )
            return ExhaustiveSearch(
                hot, system, estimator, constraint=constraint, per_group=True,
                pinned_objects=cold, pinned_class=system.most_expensive().name,
                **kwargs,
            )

        batch = build_search(batch=True).search(workload)
        parallel_search = build_search(batch=True, workers=WORKERS)
        parallel = parallel_search.search(workload)
        assert batch.feasible and parallel.feasible
        assert parallel.layout == batch.layout
        assert parallel.toc_cents == batch.toc_cents
        stats = parallel_search.last_batch_stats
        assert stats.workers == WORKERS
        assert parallel.evaluated_layouts + stats.pruned_layouts == \
            parallel_search.search_space_size()


# ---------------------------------------------------------------------------
# Persisted checkpoints (JSON save/load)
# ---------------------------------------------------------------------------

class TestDiskCheckpoint:
    """`SearchProgress.save`/`load`: the multi-hour-run resume story."""

    def _engine(self, small_objects, box1_system, small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, estimator, small_workload
        )
        spec = EnumerationSpec(
            variable_objects=small_objects, system=box1_system, estimator=estimator,
            workload=small_workload, pinned=[], constraint=None,
            cache=evaluator.cache, chunk_size=64,
        )
        return ParallelEnumerationEngine.from_evaluator(evaluator, spec, workers=1)

    def test_json_round_trip_preserves_every_field(self, small_objects, box1_system,
                                                   small_catalog, small_workload,
                                                   tmp_path):
        engine = self._engine(small_objects, box1_system, small_catalog, small_workload)
        progress = engine.run()
        assert progress.finished and progress.best_row is not None

        path = progress.save(tmp_path / "progress.json")
        loaded = SearchProgress.load(path)
        assert loaded.to_json() == progress.to_json()
        assert loaded.completed == progress.completed
        assert loaded.best_toc == progress.best_toc
        assert loaded.best_index == progress.best_index
        assert loaded.best_row == progress.best_row
        assert loaded.evaluated == progress.evaluated
        assert loaded.stats.candidates == progress.stats.candidates
        assert loaded.stats.pruned_subtrees == progress.stats.pruned_subtrees
        assert loaded.space == progress.space
        assert loaded.prefix_depth == progress.prefix_depth

    def test_infinite_incumbent_survives_the_round_trip(self, tmp_path):
        empty = SearchProgress(total_shards=4, space=81, prefix_depth=2)
        loaded = SearchProgress.load(empty.save(tmp_path / "empty.json"))
        assert loaded.best_toc == float("inf")
        assert loaded.best_row is None and loaded.best_index == -1
        assert not loaded.finished

    def test_partial_checkpoint_resumes_from_disk_to_identical_result(
            self, small_objects, box1_system, small_catalog, small_workload, tmp_path):
        engine = self._engine(small_objects, box1_system, small_catalog, small_workload)
        shards = engine.shard_ranges()
        assert len(shards) >= 2

        # Process the first half of the shards "before the interruption",
        # checkpoint to disk, and resume from the file in a fresh object.
        partial = SearchProgress(total_shards=len(shards))
        bounds = _PruningBounds(engine.evaluator, engine.prefix_depth)
        incumbent = _Incumbent()
        for shard_id, lo, hi in shards[: len(shards) // 2]:
            partial.record(_process_shard(
                engine.evaluator, bounds, incumbent, shard_id, lo, hi,
                engine.spec.chunk_size, engine.toc_floor_factor, True,
            ))
        assert not partial.finished
        evaluated_before = partial.evaluated

        restored = SearchProgress.load(partial.save(tmp_path / "partial.json"))
        resumed = engine.run(restored)
        assert resumed.finished
        assert resumed.evaluated >= evaluated_before

        reference = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).search(small_workload)
        row = np.array(resumed.best_row, dtype=np.int64)
        layout = Layout(list(small_objects), box1_system,
                        engine.evaluator.assignment_for_row(row), name="ES")
        assert resumed.best_toc == reference.toc_cents
        assert layout == reference.layout

    def test_geometry_stamp_is_enforced_after_loading(
            self, small_objects, box1_system, small_catalog, small_workload, tmp_path):
        from repro.exceptions import ConfigurationError

        engine = self._engine(small_objects, box1_system, small_catalog, small_workload)
        progress = engine.run()
        loaded = SearchProgress.load(progress.save(tmp_path / "done.json"))
        loaded.prefix_depth = (loaded.prefix_depth or 1) + 1
        with pytest.raises(ConfigurationError):
            engine.run(loaded)

    def test_unsupported_format_version_is_refused(self, tmp_path):
        from repro.exceptions import ConfigurationError

        payload = SearchProgress(total_shards=1).to_json()
        payload["format"] = 999
        with pytest.raises(ConfigurationError):
            SearchProgress.from_json(payload)

    def test_unknown_stats_fields_are_refused(self):
        from repro.exceptions import ConfigurationError

        payload = SearchProgress(total_shards=1).to_json()
        payload["stats"]["definitely_not_a_counter"] = 3
        with pytest.raises(ConfigurationError):
            SearchProgress.from_json(payload)

    def test_checkpoint_persists_per_shard_across_a_crash(
            self, small_objects, box1_system, small_catalog, small_workload,
            tmp_path, monkeypatch):
        """Killing the run mid-way must leave a resumable on-disk checkpoint
        covering every shard that completed before the crash."""
        import repro.core.parallel_search as ps

        engine = self._engine(small_objects, box1_system, small_catalog, small_workload)
        path = tmp_path / "crash.json"
        real_process_shard = ps._process_shard
        completed_before_crash = 2

        calls = {"n": 0}

        def crashing_process_shard(*args, **kwargs):
            if calls["n"] >= completed_before_crash:
                raise RuntimeError("simulated kill")
            calls["n"] += 1
            return real_process_shard(*args, **kwargs)

        monkeypatch.setattr(ps, "_process_shard", crashing_process_shard)
        # The engine retries each shard (bounded) and then surfaces the
        # persistent failure as ShardFailureError with the cause embedded.
        with pytest.raises(ShardFailureError, match="simulated kill"):
            engine.run(checkpoint_path=path)

        saved = SearchProgress.load(path)
        assert len(saved.completed) == completed_before_crash
        assert not saved.finished

        monkeypatch.setattr(ps, "_process_shard", real_process_shard)
        resumed = engine.run(SearchProgress.load(path), checkpoint_path=path)
        assert resumed.finished

        reference = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).search(small_workload)
        assert resumed.best_toc == reference.toc_cents
        # The final state also landed on disk.
        assert SearchProgress.load(path).finished

    def test_save_is_atomic_and_leaves_no_scratch_file(self, tmp_path):
        progress = SearchProgress(total_shards=3, space=27, prefix_depth=1)
        path = progress.save(tmp_path / "atomic.json")
        progress.completed.add(0)
        progress.save(path)  # overwrite in place
        assert SearchProgress.load(path).completed == {0}
        assert list(tmp_path.iterdir()) == [path]
