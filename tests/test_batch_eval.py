"""The vectorized batch layout evaluation engine.

The contract under test is strict: the batch exhaustive search and the
incremental DOT walk must return *bitwise identical* layouts, TOCs and move
histories compared to the scalar reference paths -- including on the paper's
Figure 9 ES-vs-DOT TPC-C configuration.
"""

import itertools

import numpy as np
import pytest

from repro.core.batch_eval import (
    BatchLayoutEvaluator,
    IncrementalWorkloadEvaluator,
    UnsupportedBatchEvaluation,
    group_placement_coefficients,
    iter_assignment_chunks,
)
from repro.core.dot import DOTOptimizer
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.feasibility import constraint_signature
from repro.core.layout import Layout
from repro.core.moves import group_cost_cents_per_hour
from repro.core.profiler import WorkloadProfiler
from repro.core.toc import TOCModel
from repro.dbms.executor import WorkloadEstimator
from repro.sla.constraints import (
    RelativeSLA,
    ResponseTimeConstraint,
    ThroughputConstraint,
)
from repro.workloads.workload import Workload


def fresh_estimator(catalog):
    """A fresh estimator (independent plan-cache state per search path)."""
    return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)


@pytest.fixture
def loose_constraint(small_objects, box1_system, small_catalog, small_workload):
    toc = TOCModel(fresh_estimator(small_catalog))
    reference = toc.evaluate(
        Layout.uniform(small_objects, box1_system, "H-SSD"), small_workload, mode="estimate"
    )
    return RelativeSLA(0.25).resolve(reference.run_result)


@pytest.fixture
def oltp_workload(scan_query, lookup_query, write_query):
    return Workload(
        name="tiny-oltp",
        kind="oltp",
        transaction_mix=((scan_query, 1.0), (lookup_query, 8.0), (write_query, 3.0)),
        concurrency=50,
        measured_transaction_fraction=0.4,
    )


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------

class TestAssignmentChunks:
    def test_matches_itertools_product_order(self):
        rows = np.concatenate(
            [chunk for _, chunk in iter_assignment_chunks(3, 4, chunk_size=7)]
        )
        expected = np.array(list(itertools.product(range(4), repeat=3)))
        assert rows.shape == expected.shape
        assert (rows == expected).all()

    def test_chunk_starts_and_sizes(self):
        starts = []
        total = 0
        for start, chunk in iter_assignment_chunks(4, 3, chunk_size=10):
            starts.append(start)
            assert chunk.shape[0] <= 10
            total += chunk.shape[0]
        assert total == 3**4
        assert starts == list(range(0, 3**4, 10))

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            next(iter_assignment_chunks(0, 3))
        with pytest.raises(ValueError):
            next(iter_assignment_chunks(3, 0))
        with pytest.raises(ValueError):
            next(iter_assignment_chunks(3, 3, chunk_size=0))


# ---------------------------------------------------------------------------
# Exhaustive search identity (DSS)
# ---------------------------------------------------------------------------

def run_both_paths(objects, system, catalog, workload, **kwargs):
    scalar = ExhaustiveSearch(
        objects, system, fresh_estimator(catalog), batch=False, **kwargs
    ).search(workload)
    batch = ExhaustiveSearch(
        objects, system, fresh_estimator(catalog), batch=True, **kwargs
    ).search(workload)
    return scalar, batch


class TestBatchExhaustiveIdentity:
    @pytest.mark.parametrize("per_group", [False, True])
    def test_unconstrained(self, small_objects, box1_system, small_catalog, small_workload,
                           per_group):
        scalar, batch = run_both_paths(
            small_objects, box1_system, small_catalog, small_workload, per_group=per_group
        )
        assert batch.layout == scalar.layout
        assert batch.toc_cents == scalar.toc_cents
        assert batch.evaluated_layouts == scalar.evaluated_layouts

    @pytest.mark.parametrize("per_group", [False, True])
    def test_with_response_time_sla(self, small_objects, box1_system, small_catalog,
                                    small_workload, loose_constraint, per_group):
        scalar, batch = run_both_paths(
            small_objects, box1_system, small_catalog, small_workload,
            constraint=loose_constraint, per_group=per_group,
        )
        assert batch.layout == scalar.layout
        assert batch.toc_cents == scalar.toc_cents

    def test_with_pinned_objects(self, small_objects, box1_system, small_catalog,
                                 small_workload):
        movable = [obj for obj in small_objects if obj.table == "fact"]
        pinned = [obj for obj in small_objects if obj.table != "fact"]
        scalar, batch = run_both_paths(
            small_objects[:0] + movable, box1_system, small_catalog, small_workload,
            pinned_objects=pinned, pinned_class="HDD RAID 0",
        )
        assert batch.layout == scalar.layout
        assert batch.toc_cents == scalar.toc_cents
        for obj in pinned:
            assert batch.layout.class_name_of(obj.name) == "HDD RAID 0"

    def test_oltp_identity(self, small_objects, box1_system, small_catalog, oltp_workload):
        scalar, batch = run_both_paths(
            small_objects, box1_system, small_catalog, oltp_workload
        )
        assert batch.layout == scalar.layout
        assert batch.toc_cents == scalar.toc_cents

    def test_oltp_with_throughput_sla(self, small_objects, box1_system, small_catalog,
                                      oltp_workload):
        toc = TOCModel(fresh_estimator(small_catalog))
        reference = toc.evaluate(
            Layout.uniform(small_objects, box1_system, "H-SSD"), oltp_workload,
            mode="estimate",
        )
        constraint = RelativeSLA(0.25, metric="throughput").resolve(reference.run_result)
        scalar, batch = run_both_paths(
            small_objects, box1_system, small_catalog, oltp_workload, constraint=constraint
        )
        assert batch.feasible == scalar.feasible
        assert batch.toc_cents == scalar.toc_cents
        assert batch.layout == scalar.layout

    def test_infeasible_constraint(self, small_objects, box1_system, small_catalog,
                                   small_workload):
        impossible = ResponseTimeConstraint(
            {name: 1e-9 for name in small_workload.query_names}
        )
        scalar, batch = run_both_paths(
            small_objects, box1_system, small_catalog, small_workload, constraint=impossible
        )
        assert not scalar.feasible and not batch.feasible
        assert batch.toc_cents == scalar.toc_cents == float("inf")

    def test_batch_path_records_stats(self, small_objects, box1_system, small_catalog,
                                      small_workload):
        search = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=True
        )
        search.search(small_workload)
        stats = search.last_batch_stats
        assert stats is not None
        assert stats.candidates == search.search_space_size()
        # Signature dedup: far fewer optimizer estimates than candidates x queries.
        assert 0 < stats.estimator_calls < stats.candidates

    def test_cost_override_falls_back_to_scalar(self, small_objects, box1_system,
                                                small_catalog, small_workload):
        search = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            cost_override=lambda layout: 42.0, batch=True,
        )
        result = search.search(small_workload)
        assert search.last_batch_stats is None  # scalar path ran
        assert result.feasible

    def test_unknown_constraint_type_falls_back_to_scalar(self, small_objects, box1_system,
                                                          small_catalog, small_workload):
        class PickyConstraint(ResponseTimeConstraint):
            pass

        picky = PickyConstraint({name: 1e12 for name in small_workload.query_names})
        search = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            constraint=picky, batch=True,
        )
        result = search.search(small_workload)
        assert search.last_batch_stats is None
        scalar = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            constraint=picky, batch=False,
        ).search(small_workload)
        assert result.layout == scalar.layout
        assert result.toc_cents == scalar.toc_cents


# ---------------------------------------------------------------------------
# The evaluator building blocks
# ---------------------------------------------------------------------------

class TestBatchLayoutEvaluator:
    def test_capacity_infeasible_candidates_get_inf(self, small_objects, box1_system,
                                                    small_catalog, small_workload):
        total = sum(obj.size_gb for obj in small_objects)
        limited = box1_system.with_capacity_limits({"H-SSD": total * 0.01})
        evaluator = BatchLayoutEvaluator(
            small_objects, limited, fresh_estimator(small_catalog), small_workload
        )
        hssd = limited.class_names.index("H-SSD")
        all_hssd = np.full((1, len(small_objects)), hssd)
        evaluation = evaluator.evaluate_chunk(all_hssd)
        assert evaluation.toc_cents[0] == float("inf")
        assert not evaluation.capacity_ok[0]
        assert evaluation.best_index is None

    def test_chunk_toc_matches_scalar_toc_model(self, small_objects, box1_system,
                                                small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        evaluator = BatchLayoutEvaluator(
            small_objects, box1_system, estimator, small_workload
        )
        toc_model = TOCModel(fresh_estimator(small_catalog))
        rows = np.array([
            [0] * len(small_objects),
            [1] * len(small_objects),
            [0, 1, 2, 0][: len(small_objects)],
        ])
        evaluation = evaluator.evaluate_chunk(rows)
        for row, toc_cents in zip(rows, evaluation.toc_cents):
            layout = Layout(
                small_objects, box1_system, evaluator.assignment_for_row(row)
            )
            expected = toc_model.evaluate(layout, small_workload, mode="estimate")
            assert toc_cents == expected.toc_cents

    def test_requires_variable_objects(self, box1_system, small_catalog, small_workload):
        with pytest.raises(UnsupportedBatchEvaluation):
            BatchLayoutEvaluator(
                [], box1_system, fresh_estimator(small_catalog), small_workload
            )


class TestIncrementalEvaluator:
    def test_dss_report_matches_full_evaluation(self, small_objects, box1_system,
                                                small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        toc_model = TOCModel(estimator)
        fast = IncrementalWorkloadEvaluator(estimator, small_workload, toc_model)
        reference_model = TOCModel(fresh_estimator(small_catalog))
        for class_name in box1_system.class_names:
            layout = Layout.uniform(small_objects, box1_system, class_name)
            fast_report = fast.evaluate(layout)
            full_report = reference_model.evaluate(layout, small_workload, mode="estimate")
            assert fast_report.toc_cents == full_report.toc_cents
            assert (fast_report.run_result.per_query_times_ms
                    == full_report.run_result.per_query_times_ms)

    def test_oltp_report_matches_full_evaluation(self, small_objects, box1_system,
                                                 small_catalog, oltp_workload):
        estimator = fresh_estimator(small_catalog)
        toc_model = TOCModel(estimator)
        fast = IncrementalWorkloadEvaluator(estimator, oltp_workload, toc_model)
        reference_model = TOCModel(fresh_estimator(small_catalog))
        for class_name in box1_system.class_names:
            layout = Layout.uniform(small_objects, box1_system, class_name)
            fast_report = fast.evaluate(layout)
            full_report = reference_model.evaluate(layout, oltp_workload, mode="estimate")
            assert fast_report.toc_cents == full_report.toc_cents
            assert (fast_report.run_result.transactions_per_minute
                    == full_report.run_result.transactions_per_minute)
            assert (fast_report.run_result.busy_time_by_class_ms
                    == full_report.run_result.busy_time_by_class_ms)

    def test_repeated_evaluations_hit_the_cache(self, small_objects, box1_system,
                                                small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        fast = IncrementalWorkloadEvaluator(estimator, small_workload, TOCModel(estimator))
        layout = Layout.uniform(small_objects, box1_system, "H-SSD")
        fast.evaluate(layout)
        misses = fast.cache.misses
        # Moving an object no query touches re-uses every cached estimate.
        fast.evaluate(layout)
        assert fast.cache.misses == misses
        assert fast.cache.hits > 0


class TestConstraintSignature:
    def test_known_types(self):
        assert constraint_signature(None) == ("none", None)
        kind, caps = constraint_signature(ResponseTimeConstraint({"q": 5.0}))
        assert kind == "response_time" and caps == {"q": 5.0}
        kind, floor = constraint_signature(ThroughputConstraint(100.0))
        assert kind == "throughput" and floor == 100.0

    def test_subclasses_are_not_vectorizable(self):
        class Custom(ThroughputConstraint):
            pass

        assert constraint_signature(Custom(100.0)) is None


# ---------------------------------------------------------------------------
# DOT incremental path identity
# ---------------------------------------------------------------------------

class TestDOTIncrementalIdentity:
    @pytest.mark.parametrize("workload_fixture", ["small_workload", "oltp_workload"])
    def test_walk_is_bitwise_identical(self, request, small_objects, box1_system,
                                       small_catalog, workload_fixture):
        workload = request.getfixturevalue(workload_fixture)
        results = {}
        for incremental in (False, True):
            estimator = fresh_estimator(small_catalog)
            profiles = WorkloadProfiler(small_objects, box1_system, estimator).profile(
                workload, mode="estimate"
            )
            dot = DOTOptimizer(small_objects, box1_system, estimator,
                               incremental=incremental)
            results[incremental] = dot.optimize(workload, profiles)
        scalar, fast = results[False], results[True]
        assert fast.layout == scalar.layout
        assert fast.toc_cents == scalar.toc_cents
        assert len(fast.history) == len(scalar.history)
        for fast_move, scalar_move in zip(fast.history, scalar.history):
            assert fast_move.move_description == scalar_move.move_description
            assert fast_move.accepted == scalar_move.accepted
            assert fast_move.feasible == scalar_move.feasible
            assert fast_move.toc_cents == scalar_move.toc_cents
            assert fast_move.feasibility == scalar_move.feasibility


# ---------------------------------------------------------------------------
# MILP coefficient tables
# ---------------------------------------------------------------------------

class TestGroupPlacementCoefficients:
    def test_matches_scalar_helpers(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        estimator = fresh_estimator(small_catalog)
        profiles = WorkloadProfiler(small_objects, box1_system, estimator).profile(
            small_workload, mode="estimate"
        )
        from repro.objects import group_objects

        groups = group_objects(small_objects)
        candidates, costs, times = group_placement_coefficients(
            groups, box1_system, profiles
        )
        position = 0
        for group in groups:
            for combo in itertools.product(box1_system.class_names, repeat=len(group)):
                candidate_group, placement = candidates[position]
                assert candidate_group.key == group.key
                assert placement == tuple(combo)
                assert costs[position] == group_cost_cents_per_hour(
                    group, placement, box1_system
                )
                assert times[position] == profiles.io_time_share_ms(group, placement)
                position += 1
        assert position == len(candidates)


# ---------------------------------------------------------------------------
# The acceptance bar: the Figure 9 ES configuration, bit for bit
# ---------------------------------------------------------------------------

class TestFigure9Configuration:
    @pytest.fixture(scope="class")
    def fig9_setup(self):
        from repro.dbms.buffer_pool import BufferPool
        from repro.experiments import boxes
        from repro.workloads import tpcc

        warehouses, concurrency = 300, 300
        catalog = tpcc.build_catalog(warehouses)
        workload = tpcc.oltp_workload(warehouses, concurrency=concurrency)
        all_objects = catalog.database_objects()
        hot_groups = {"stock", "order_line", "customer"}
        hot = [obj for obj in all_objects if (obj.table or obj.name) in hot_groups]
        cold = [obj for obj in all_objects if obj not in hot]
        system = boxes.box2(capacity_limits_gb={"H-SSD": 21.0})

        def build_search(batch):
            estimator = WorkloadEstimator(catalog, buffer_pool=BufferPool(size_gb=4.0))
            from repro.experiments.runner import ExperimentRunner

            runner = ExperimentRunner(all_objects, system, estimator)
            constraint = runner.resolve_constraint(
                workload, RelativeSLA(0.25, metric="throughput"), mode="estimate"
            )
            return ExhaustiveSearch(
                hot, system, estimator, constraint=constraint, per_group=True,
                pinned_objects=cold, pinned_class=system.most_expensive().name,
                batch=batch,
            )

        return workload, build_search

    def test_batch_es_bitwise_identical_to_scalar(self, fig9_setup):
        """Section 4.5.3 / Figure 9, H-SSD capped at 21 GB: the batch path
        must return the identical best layout and TOC, bit for bit."""
        workload, build_search = fig9_setup
        scalar = build_search(batch=False).search(workload)
        batch = build_search(batch=True).search(workload)
        assert scalar.feasible and batch.feasible
        assert batch.layout == scalar.layout
        assert batch.toc_cents == scalar.toc_cents
        assert batch.evaluated_layouts == scalar.evaluated_layouts


# ---------------------------------------------------------------------------
# Shared estimate tables: profiler fast path, ES+DOT cache sharing
# ---------------------------------------------------------------------------

class TestProfilerFastPath:
    def test_dss_profiles_bitwise_equal_scalar(self, small_objects, box1_system,
                                               small_catalog, small_workload):
        """Estimate-mode profiling through the estimate tables must produce
        the identical M^K profile set, profile for profile, bit for bit."""
        scalar = WorkloadProfiler(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).profile(small_workload, mode="estimate", fast=False)
        fast = WorkloadProfiler(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).profile(small_workload, mode="estimate", fast=True)
        assert fast.patterns == scalar.patterns
        assert fast.profiles == scalar.profiles

    def test_oltp_profiles_bitwise_equal_scalar(self, small_objects, box1_system,
                                                small_catalog, oltp_workload):
        scalar = WorkloadProfiler(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).profile(oltp_workload, mode="estimate", fast=False)
        fast = WorkloadProfiler(
            small_objects, box1_system, fresh_estimator(small_catalog)
        ).profile(oltp_workload, mode="estimate", fast=True)
        assert fast.profiles == scalar.profiles

    def test_fast_path_deduplicates_estimates(self, small_objects, box1_system,
                                              small_catalog, small_workload):
        """Across M^K baseline patterns, a query is estimated only once per
        distinct touched-placement signature."""
        from repro.core.batch_eval import QueryEstimateCache

        estimator = fresh_estimator(small_catalog)
        cache = QueryEstimateCache(estimator, small_workload.concurrency)
        profiler = WorkloadProfiler(small_objects, box1_system, estimator,
                                    estimate_cache=cache)
        profiler.profile(small_workload, mode="estimate")
        patterns = len(profiler.baseline_patterns())
        stream_evals = patterns * len(small_workload.queries)
        assert cache.misses + cache.hits == stream_evals
        assert cache.misses < stream_evals

    def test_testrun_mode_ignores_fast_flag(self, small_objects, box1_system,
                                            small_catalog, small_workload):
        """Test runs are stateful (noise RNG, buffer pool) and must never be
        served from the estimate tables."""
        estimator_a = WorkloadEstimator(small_catalog, noise=0.05, buffer_pool=None, seed=7)
        estimator_b = WorkloadEstimator(small_catalog, noise=0.05, buffer_pool=None, seed=7)
        run_a = WorkloadProfiler(small_objects, box1_system, estimator_a).profile(
            small_workload, mode="testrun", fast=True
        )
        run_b = WorkloadProfiler(small_objects, box1_system, estimator_b).profile(
            small_workload, mode="testrun", fast=False
        )
        assert run_a.profiles == run_b.profiles


class TestSharedEstimateCache:
    def test_es_and_dot_share_one_table(self, small_objects, box1_system, small_catalog,
                                        small_workload, loose_constraint):
        """DOT then ES over one shared cache must match the unshared runs
        bitwise while actually reusing estimates across the two searches."""
        from repro.core.batch_eval import QueryEstimateCache

        # Independent reference runs (fresh estimator each, as before).
        dot_reference = DOTOptimizer(
            small_objects, box1_system, fresh_estimator(small_catalog),
            constraint=loose_constraint,
        )
        profiles = WorkloadProfiler(
            small_objects, box1_system, dot_reference.estimator
        ).profile(small_workload, mode="estimate")
        dot_expected = dot_reference.optimize(small_workload, profiles)
        es_expected = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog),
            constraint=loose_constraint,
        ).search(small_workload)

        # Shared-cache runs over one estimator.
        estimator = fresh_estimator(small_catalog)
        cache = QueryEstimateCache(estimator, small_workload.concurrency)
        shared_profiles = WorkloadProfiler(
            small_objects, box1_system, estimator, estimate_cache=cache
        ).profile(small_workload, mode="estimate")
        dot_shared = DOTOptimizer(
            small_objects, box1_system, estimator, constraint=loose_constraint,
            estimate_cache=cache,
        ).optimize(small_workload, shared_profiles)
        misses_after_dot = cache.misses
        es_shared = ExhaustiveSearch(
            small_objects, box1_system, estimator, constraint=loose_constraint,
            estimate_cache=cache,
        ).search(small_workload)

        assert dot_shared.layout == dot_expected.layout
        assert dot_shared.toc_cents == dot_expected.toc_cents
        assert es_shared.layout == es_expected.layout
        assert es_shared.toc_cents == es_expected.toc_cents
        # The search must have hit estimates that profiling/DOT already paid for.
        assert cache.hits > 0
        assert misses_after_dot > 0

    def test_concurrency_mismatch_is_rejected(self, small_catalog, small_workload,
                                              small_objects, box1_system):
        from repro.core.batch_eval import QueryEstimateCache, _adopt_cache

        estimator = fresh_estimator(small_catalog)
        cache = QueryEstimateCache(estimator, concurrency=300)
        with pytest.raises(UnsupportedBatchEvaluation):
            _adopt_cache(cache, estimator, concurrency=1)
        with pytest.raises(UnsupportedBatchEvaluation):
            _adopt_cache(cache, fresh_estimator(small_catalog), concurrency=300)
