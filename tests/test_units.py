"""Unit conversions."""

import pytest

from repro import units


class TestSizes:
    def test_bytes_gb_roundtrip(self):
        assert units.bytes_to_gb(units.gb_to_bytes(3.5)) == pytest.approx(3.5)

    def test_gb_to_bytes(self):
        assert units.gb_to_bytes(1) == 1024**3

    def test_mb_to_gb(self):
        assert units.mb_to_gb(2048) == pytest.approx(2.0)

    def test_pages_to_gb(self):
        assert units.pages_to_gb(units.gb_to_pages(2.0)) == pytest.approx(2.0)

    def test_page_size_is_8k(self):
        assert units.PAGE_SIZE_BYTES == 8192


class TestTime:
    def test_ms_seconds_roundtrip(self):
        assert units.seconds_to_ms(units.ms_to_seconds(1500)) == pytest.approx(1500)

    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(7200) == pytest.approx(2.0)

    def test_hours_to_seconds(self):
        assert units.hours_to_seconds(0.5) == pytest.approx(1800)

    def test_months_to_hours_36_months(self):
        # 36 months at 730.5 hours/month: the paper's amortisation window.
        assert units.months_to_hours(36) == pytest.approx(36 * 730.5)


class TestMoneyEnergy:
    def test_dollars_cents_roundtrip(self):
        assert units.cents_to_dollars(units.dollars_to_cents(12.34)) == pytest.approx(12.34)

    def test_watts_to_kilowatts(self):
        assert units.watts_to_kilowatts(250) == pytest.approx(0.25)
