"""Property-based tests (hypothesis) for core invariants."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layout import Layout
from repro.core.moves import group_cost_cents_per_hour
from repro.dbms import pages as page_math
from repro.objects import DatabaseObject, ObjectKind, group_objects
from repro.storage.io_profile import ALL_IO_TYPES, IOProfile, IOType
from repro.storage.pricing import PricingModel
from repro.storage import catalog as storage_catalog


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

positive_floats = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False,
                            allow_infinity=False)


@st.composite
def io_profiles(draw):
    """Random two-point I/O profiles with positive latencies."""
    latencies = {}
    for io_type in ALL_IO_TYPES:
        single = draw(st.floats(min_value=1e-3, max_value=100.0))
        concurrent = draw(st.floats(min_value=1e-3, max_value=100.0))
        latencies[io_type] = {1: single, 300: concurrent}
    return IOProfile(latencies)


@st.composite
def object_sets(draw):
    """Random sets of tables with optional indexes."""
    num_tables = draw(st.integers(min_value=1, max_value=6))
    objects = []
    for table_index in range(num_tables):
        table_name = f"t{table_index}"
        objects.append(
            DatabaseObject(table_name, draw(st.floats(min_value=0.01, max_value=50.0)),
                           ObjectKind.TABLE, table=table_name)
        )
        for index_position in range(draw(st.integers(min_value=0, max_value=2))):
            objects.append(
                DatabaseObject(
                    f"{table_name}_idx{index_position}",
                    draw(st.floats(min_value=0.001, max_value=5.0)),
                    ObjectKind.INDEX,
                    table=table_name,
                )
            )
    return objects


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

class TestPricingProperties:
    @given(purchase=st.floats(min_value=0, max_value=1e6),
           power=st.floats(min_value=0, max_value=1e4),
           capacity=st.floats(min_value=1, max_value=1e5))
    def test_price_is_positive_and_monotone_in_cost(self, purchase, power, capacity):
        model = PricingModel()
        price = model.price_cents_per_gb_hour(purchase, power, capacity)
        assert price >= 0
        assert model.price_cents_per_gb_hour(purchase + 100, power, capacity) >= price

    @given(purchase=st.floats(min_value=1, max_value=1e6),
           power=st.floats(min_value=0, max_value=1e4),
           capacity=st.floats(min_value=1, max_value=1e5),
           factor=st.floats(min_value=1.1, max_value=10))
    def test_price_decreases_with_capacity(self, purchase, power, capacity, factor):
        model = PricingModel()
        assert model.price_cents_per_gb_hour(purchase, power, capacity * factor) < (
            model.price_cents_per_gb_hour(purchase, power, capacity)
        )


class TestIOProfileProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(profile=io_profiles(),
           concurrency=st.integers(min_value=1, max_value=1000))
    def test_interpolation_within_calibrated_envelope(self, profile, concurrency):
        for io_type in ALL_IO_TYPES:
            value = profile.service_time_ms(io_type, concurrency)
            low = min(profile.latencies_ms[io_type].values())
            high = max(profile.latencies_ms[io_type].values())
            assert low - 1e-9 <= value <= high + 1e-9

    @settings(deadline=None)
    @given(profile=io_profiles(), factor=st.floats(min_value=0.1, max_value=10))
    def test_scaling_scales_latencies_linearly(self, profile, factor):
        scaled = profile.scaled({io_type: factor for io_type in ALL_IO_TYPES})
        for io_type in ALL_IO_TYPES:
            assert scaled.service_time_ms(io_type, 1) == pytest.approx(
                profile.service_time_ms(io_type, 1) * factor
            )


class TestPageMathProperties:
    @given(rows=st.integers(min_value=0, max_value=10_000_000),
           width=st.integers(min_value=1, max_value=4000))
    def test_heap_pages_hold_all_rows(self, rows, width):
        pages = page_math.heap_pages(rows, width)
        if rows == 0:
            assert pages == 0
        else:
            rows_per_page = max(1.0, (8192 * 0.9) / width)
            assert pages * rows_per_page >= rows
            # Never more than one page per row (plus rounding).
            assert pages <= rows

    @given(leaves=st.integers(min_value=1, max_value=10_000_000))
    def test_btree_height_is_logarithmic(self, leaves):
        height = page_math.btree_height(leaves)
        assert height >= 1
        assert height <= 2 + math.ceil(math.log(max(leaves, 2), 250))


class TestGroupingProperties:
    @settings(deadline=None)
    @given(objects=object_sets())
    def test_grouping_is_a_partition(self, objects):
        groups = group_objects(objects)
        names = [member.name for group in groups for member in group.members]
        assert sorted(names) == sorted(obj.name for obj in objects)

    @settings(deadline=None)
    @given(objects=object_sets())
    def test_indexes_grouped_with_their_table(self, objects):
        groups = {group.key: group for group in group_objects(objects)}
        for obj in objects:
            if obj.is_index:
                assert obj.name in groups[obj.table].member_names


class TestLayoutProperties:
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(objects=object_sets(), data=st.data())
    def test_layout_cost_equals_sum_of_class_costs(self, objects, data):
        system = storage_catalog.box1()
        class_names = list(system.class_names)
        assignment = {
            obj.name: data.draw(st.sampled_from(class_names), label=obj.name) for obj in objects
        }
        layout = Layout(objects, system, assignment)
        expected = sum(
            system[class_name].price_cents_per_gb_hour * used
            for class_name, used in layout.space_used_gb().items()
        )
        assert layout.storage_cost_cents_per_hour() == pytest.approx(expected)
        # Space accounting is a partition of the total size.
        assert sum(layout.space_used_gb().values()) == pytest.approx(
            sum(obj.size_gb for obj in objects)
        )

    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(objects=object_sets(), data=st.data())
    def test_moving_to_cheaper_class_never_raises_cost(self, objects, data):
        system = storage_catalog.box1()
        layout = Layout.uniform(objects, system, "H-SSD")
        obj = data.draw(st.sampled_from(objects), label="object")
        cheaper = data.draw(st.sampled_from(["L-SSD", "HDD RAID 0"]), label="target")
        moved = layout.with_assignment(obj.name, cheaper)
        assert moved.storage_cost_cents_per_hour() <= layout.storage_cost_cents_per_hour() + 1e-12

    @settings(deadline=None)
    @given(objects=object_sets())
    def test_group_cost_matches_layout_cost_for_uniform_placement(self, objects):
        system = storage_catalog.box1()
        groups = group_objects(objects)
        layout = Layout.uniform(objects, system, "L-SSD")
        via_groups = sum(
            group_cost_cents_per_hour(group, tuple(["L-SSD"] * len(group)), system)
            for group in groups
        )
        assert via_groups == pytest.approx(layout.storage_cost_cents_per_hour())
