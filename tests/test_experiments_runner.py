"""Tests for the sweep orchestrator (repro.experiments.orchestrator).

The sweeps here run a synthetic ``_test_echo`` executor registered just for
the test session, so the resume/chaos properties are exercised on
millisecond-cheap specs rather than real solver runs.  The contract pinned
down: a sweep executes *exactly* the specs missing from the store (Hypothesis
property over random matrices and random pre-populated subsets), injected
transient faults are retried while persistent ones are reported-not-recorded,
and a hard-killed run (child process exiting mid-sweep) leaves no row behind
-- so the resumed sweep completes exactly the remainder.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import orchestrator, specs as spec_registry
from repro.experiments.store import ExperimentSpec, ResultsStore
from repro.resilience.faults import FaultPlan, FaultSpec


def _echo_executor(spec: ExperimentSpec, checkpoint_dir=None):
    return {
        "data": {"echo": dict(spec.knobs), "seed": spec.seed},
        "timing": {"elapsed_s": 0.0},
        "text": f"echo {spec.signature[:8]}",
    }


@pytest.fixture()
def echo_executor():
    """Register the synthetic executor for the duration of one test."""
    spec_registry.EXECUTORS["_test_echo"] = _echo_executor
    try:
        yield
    finally:
        spec_registry.EXECUTORS.pop("_test_echo", None)


def echo_spec(i: int, **extra) -> ExperimentSpec:
    return ExperimentSpec(
        experiment="_test_echo", solver="echo", seed=0, knobs={"i": i, **extra}
    )


# ---------------------------------------------------------------------------
# plan(): the matrix/store diff
# ---------------------------------------------------------------------------

class TestPlan:
    def test_plan_splits_missing_from_present_in_matrix_order(self, tmp_path,
                                                              echo_executor):
        store = ResultsStore(tmp_path / "exp.sqlite")
        matrix = [echo_spec(i) for i in range(6)]
        for present in (matrix[0], matrix[4]):
            store.record(present, _echo_executor(present))
        missing, present = orchestrator.plan(matrix, store)
        assert missing == [matrix[1], matrix[2], matrix[3], matrix[5]]
        assert present == [matrix[0], matrix[4]]

    def test_empty_store_means_everything_is_missing(self, tmp_path):
        store = ResultsStore(tmp_path / "exp.sqlite")
        matrix = [echo_spec(i) for i in range(3)]
        missing, present = orchestrator.plan(matrix, store)
        assert missing == matrix
        assert present == []


# ---------------------------------------------------------------------------
# run_specs(): run only what's missing
# ---------------------------------------------------------------------------

class TestRunOnlyMissing:
    def test_fresh_store_runs_everything_second_sweep_runs_nothing(
        self, tmp_path, echo_executor
    ):
        store = ResultsStore(tmp_path / "exp.sqlite")
        matrix = [echo_spec(i) for i in range(5)]

        first = orchestrator.run_specs(matrix, store, workers=2)
        assert first.complete
        assert sorted(s.signature for s in first.executed) == sorted(
            s.signature for s in matrix
        )
        assert first.skipped == []

        second = orchestrator.run_specs(matrix, store, workers=2)
        assert second.complete
        assert second.executed == []
        assert len(second.skipped) == len(matrix)

    def test_duplicate_specs_in_the_matrix_run_once(self, tmp_path, echo_executor):
        store = ResultsStore(tmp_path / "exp.sqlite")
        matrix = [echo_spec(0), echo_spec(1), echo_spec(0), echo_spec(1)]
        report = orchestrator.run_specs(matrix, store)
        assert report.complete
        assert len(report.executed) == 2
        assert len(store) == 2

    def test_recorded_provenance_carries_attempts_and_weight(
        self, tmp_path, echo_executor
    ):
        store = ResultsStore(tmp_path / "exp.sqlite")
        spec = echo_spec(0)
        orchestrator.run_specs([spec], store)
        stored = store.get(spec)
        assert stored.record.stats["attempts"] == 1
        assert stored.record.stats["weight"] == 1
        assert stored.record.kind == "experiment"
        assert stored.record.git_rev  # provenance pins the code revision

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        matrix_ids=st.lists(st.integers(min_value=0, max_value=11),
                            min_size=1, max_size=12),
        prepopulated_mask=st.lists(st.booleans(), min_size=12, max_size=12),
        workers=st.integers(min_value=1, max_value=4),
    )
    def test_property_sweep_executes_exactly_the_missing_specs(
        self, tmp_path_factory, echo_executor, matrix_ids, prepopulated_mask, workers
    ):
        store = ResultsStore(tmp_path_factory.mktemp("prop") / "exp.sqlite")
        matrix = [echo_spec(i) for i in matrix_ids]
        prepopulated = {
            spec.signature
            for spec in matrix
            if prepopulated_mask[spec.knobs["i"]]
        }
        for spec in matrix:
            if spec.signature in prepopulated:
                store.record(spec, _echo_executor(spec))

        report = orchestrator.run_specs(matrix, store, workers=workers)

        assert report.complete
        unique = {spec.signature for spec in matrix}
        executed = {spec.signature for spec in report.executed}
        # Executed exactly the unique missing signatures: no re-runs, no gaps.
        assert executed == unique - prepopulated
        assert len(report.executed) == len(executed)
        assert {spec.signature for spec in report.skipped} == prepopulated
        # And afterwards the store holds the whole matrix.
        assert store.missing(matrix) == []


# ---------------------------------------------------------------------------
# Chaos: injected faults
# ---------------------------------------------------------------------------

class TestChaos:
    def test_transient_fault_is_retried_and_the_retry_is_recorded(
        self, tmp_path, echo_executor
    ):
        store = ResultsStore(tmp_path / "exp.sqlite")
        matrix = [echo_spec(i) for i in range(3)]
        plan = FaultPlan().add_shard_fault(
            1, FaultSpec(kind="shard_exception"), attempt=0
        )
        report = orchestrator.run_specs(
            matrix, store, fault_plan=plan, allow_process_kill=False
        )
        assert report.complete
        assert store.missing(matrix) == []
        assert store.get(matrix[1]).record.stats["attempts"] == 2
        assert store.get(matrix[0]).record.stats["attempts"] == 1

    def test_persistent_fault_is_reported_not_recorded(self, tmp_path, echo_executor):
        store = ResultsStore(tmp_path / "exp.sqlite")
        matrix = [echo_spec(i) for i in range(3)]
        plan = FaultPlan()
        for attempt in range(3):
            plan.add_shard_fault(
                1, FaultSpec(kind="shard_exception"), attempt=attempt
            )
        report = orchestrator.run_specs(
            matrix, store, fault_plan=plan, max_attempts=3, allow_process_kill=False
        )
        assert not report.complete
        assert [spec.signature for spec, _ in report.failed] == [matrix[1].signature]
        # The doomed spec left no row; the healthy ones all landed.
        assert matrix[1] not in store
        assert matrix[0] in store and matrix[2] in store
        assert "FAILED" in report.summary()

        # A later fault-free sweep heals the store: only the gap re-runs.
        healed = orchestrator.run_specs(matrix, store, allow_process_kill=False)
        assert healed.complete
        assert [s.signature for s in healed.executed] == [matrix[1].signature]

    def test_straggler_delay_does_not_consume_a_retry(self, tmp_path, echo_executor):
        store = ResultsStore(tmp_path / "exp.sqlite")
        spec = echo_spec(0)
        plan = FaultPlan().add_shard_fault(
            0, FaultSpec(kind="straggler_delay", delay_s=0.01), attempt=0
        )
        report = orchestrator.run_specs(
            [spec], store, fault_plan=plan, allow_process_kill=False
        )
        assert report.complete
        assert store.get(spec).record.stats["attempts"] == 1

    def test_worker_crash_without_kill_permission_is_a_retryable_fault(
        self, tmp_path, echo_executor
    ):
        store = ResultsStore(tmp_path / "exp.sqlite")
        spec = echo_spec(0)
        plan = FaultPlan().add_shard_fault(
            0, FaultSpec(kind="worker_crash"), attempt=0
        )
        report = orchestrator.run_specs(
            [spec], store, fault_plan=plan, allow_process_kill=False
        )
        assert report.complete
        assert store.get(spec).record.stats["attempts"] == 2


# ---------------------------------------------------------------------------
# Hard kill: a crashed sweep records nothing for the killed run, resume
# completes exactly the remainder
# ---------------------------------------------------------------------------

_CRASHING_SWEEP = """
import sys
sys.path.insert(0, sys.argv[1])
from repro.experiments import orchestrator, specs as spec_registry
from repro.experiments.store import ExperimentSpec, ResultsStore
from repro.resilience.faults import FaultPlan, FaultSpec

def echo(spec, checkpoint_dir=None):
    return {"data": {"i": spec.knobs["i"]}, "timing": {"elapsed_s": 0.0}}

spec_registry.EXECUTORS["_test_echo"] = echo
matrix = [
    ExperimentSpec(experiment="_test_echo", solver="echo", seed=0, knobs={"i": i})
    for i in range(5)
]
store = ResultsStore(sys.argv[2])
# worker_crash at matrix index 2, attempt 0: the process dies via os._exit(17)
# before that spec's executor runs.
plan = FaultPlan().add_shard_fault(2, FaultSpec(kind="worker_crash"), attempt=0)
orchestrator.run_specs(matrix, store, workers=1, fault_plan=plan,
                       allow_process_kill=True)
print("unreachable: the sweep should have died at index 2")
sys.exit(0)
"""


class TestHardKillAndResume:
    def test_killed_sweep_records_nothing_for_the_dead_run_and_resumes(
        self, tmp_path, echo_executor
    ):
        path = tmp_path / "exp.sqlite"
        src = str(Path(__file__).resolve().parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", _CRASHING_SWEEP, src, str(path)],
            capture_output=True, text=True, timeout=120,
        )
        # The injected worker_crash hard-kills the child mid-sweep.
        assert result.returncode == 17, result.stderr
        assert "unreachable" not in result.stdout

        matrix = [echo_spec(i) for i in range(5)]
        store = ResultsStore(path)
        # Sequential sweep (workers=1): specs 0 and 1 were recorded before the
        # kill; the killed spec and everything after it left no rows.
        assert matrix[0] in store and matrix[1] in store
        assert store.missing(matrix) == matrix[2:]

        resumed = orchestrator.run_specs(matrix, store, allow_process_kill=False)
        assert resumed.complete
        assert [s.signature for s in resumed.executed] == [
            s.signature for s in matrix[2:]
        ]
        assert len(resumed.skipped) == 2
        assert store.missing(matrix) == []


# ---------------------------------------------------------------------------
# Scheduling weights
# ---------------------------------------------------------------------------

class TestWeights:
    def test_fig9_arms_weigh_their_es_workers(self):
        arm = spec_registry.fig9_arm_spec(None, es_workers=3)
        assert spec_registry.spec_weight(arm) == 3
        assert spec_registry.spec_weight(spec_registry.table1_spec()) == 1
        assert spec_registry.spec_weight(echo_spec(0)) == 1

    def test_heavy_specs_never_run_beside_each_other(self, tmp_path, echo_executor):
        import threading

        active = set()
        overlaps = []
        lock = threading.Lock()

        def heavy(spec, checkpoint_dir=None):
            with lock:
                active.add(spec.signature)
                if len(active) > 1:
                    overlaps.append(set(active))
            import time
            time.sleep(0.02)
            with lock:
                active.discard(spec.signature)
            return {"data": {"i": spec.knobs["i"]}, "timing": {"elapsed_s": 0.0}}

        spec_registry.EXECUTORS["_test_heavy"] = heavy
        original_weight = spec_registry.spec_weight
        spec_registry_weight_patch = (
            lambda spec: 2 if spec.experiment == "_test_heavy"
            else original_weight(spec)
        )
        spec_registry.spec_weight = spec_registry_weight_patch
        orchestrator.spec_registry.spec_weight = spec_registry_weight_patch
        try:
            store = ResultsStore(tmp_path / "exp.sqlite")
            matrix = [
                ExperimentSpec(experiment="_test_heavy", solver="echo", seed=0,
                               knobs={"i": i})
                for i in range(4)
            ]
            # Pool of 2 slots, each spec weighs 2: they must serialize.
            report = orchestrator.run_specs(matrix, store, workers=2)
            assert report.complete
            assert overlaps == []
        finally:
            spec_registry.spec_weight = original_weight
            orchestrator.spec_registry.spec_weight = original_weight
            spec_registry.EXECUTORS.pop("_test_heavy", None)
