"""The online re-provisioning subsystem.

Covers the ISSUE 2 acceptance properties (seeded drift schedules are
deterministic, migration cost is conserved, a no-drift workload never
triggers a re-tier, the end-to-end crossfade beats the frozen layout net of
migration charges) plus the ISSUE 5 closed-loop properties: telemetry-driven
re-profiling is bitwise-identical to the estimator replay on plan-stable
workloads and skips the per-epoch estimate-cache warm-up, the trend
predictor fires before a ramp peaks and never on a stationary stream,
simulated migration I/O agrees with the analytic model, and cross-kind
epochs blend the two TOC metrics.
"""

import pytest

from repro.core.dot import DOTOptimizer
from repro.core.layout import Layout
from repro.core.profiler import WorkloadProfiler
from repro.dbms.executor import WorkloadEstimator
from repro.dbms.query import Query, TableAccess
from repro.exceptions import WorkloadError
from repro.online.controller import OnlineAdvisor
from repro.online.drift import (
    DriftingWorkloadGenerator,
    PhaseSchedule,
    WorkloadPhase,
)
from repro.online.migration import (
    MigrationCostModel,
    MigrationExecutor,
    MigrationPlan,
    ReProvisioningPolicy,
)
from repro.online.monitor import (
    DriftThresholds,
    TelemetryMonitor,
    TrendPredictor,
)
from repro.sla.constraints import RelativeSLA
from repro.storage.simulator import MultiClassSimulator
from repro.workloads.workload import CrossKindWorkload, Workload, blend_transaction_mixes


def fresh_estimator(catalog):
    return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)


@pytest.fixture
def olap_phase(small_workload):
    return WorkloadPhase("olap", small_workload)


@pytest.fixture
def oltp_style_phase(lookup_query, write_query, small_workload):
    stream = (lookup_query, write_query) * 3
    return WorkloadPhase("oltp", small_workload.with_stream(stream, name="oltp-style"))


@pytest.fixture
def two_phase_generator(oltp_style_phase, olap_phase):
    # Ramp early, then hold the drifted mix: the tail must be longer than the
    # policy's amortization horizon, or a late re-tier's payback is truncated
    # by the end of the run and the online-vs-frozen margin becomes noise.
    schedule = PhaseSchedule.ramp(12, start_epoch=1, end_epoch=5,
                                  phase_names=("oltp", "olap"))
    return DriftingWorkloadGenerator(
        [oltp_style_phase, olap_phase], schedule, seed=11, name="test-drift"
    )


# ---------------------------------------------------------------------------
# Phase schedules
# ---------------------------------------------------------------------------

class TestPhaseSchedule:
    def test_rows_are_normalised(self):
        schedule = PhaseSchedule(("a", "b"), [(2.0, 2.0), (1.0, 3.0)])
        assert schedule.weights_at(0) == (0.5, 0.5)
        assert schedule.weights_at(1) == (0.25, 0.75)

    def test_crossfade_endpoints(self):
        for shape in ("linear", "smoothstep"):
            schedule = PhaseSchedule.crossfade(10, shape=shape)
            assert schedule.weights_at(0) == (1.0, 0.0)
            assert schedule.weights_at(9) == (0.0, 1.0)
            # Weights move monotonically toward phase B.
            b_weights = [schedule.weights_at(epoch)[1] for epoch in range(10)]
            assert b_weights == sorted(b_weights)

    def test_ramp_holds_endpoints(self):
        schedule = PhaseSchedule.ramp(10, start_epoch=2, end_epoch=6)
        assert schedule.weights_at(2) == (1.0, 0.0)
        assert schedule.weights_at(4) == (0.5, 0.5)
        assert schedule.weights_at(8) == (0.0, 1.0)

    def test_diurnal_period(self):
        schedule = PhaseSchedule.diurnal(9, period=8)
        assert schedule.weights_at(0)[1] == pytest.approx(0.0)
        assert schedule.weights_at(4)[1] == pytest.approx(1.0)
        assert schedule.weights_at(8)[1] == pytest.approx(0.0)

    def test_flash_crowd_spike(self):
        schedule = PhaseSchedule.flash_crowd(7, spike_epoch=3, width=2)
        crowd = [schedule.weights_at(epoch)[1] for epoch in range(7)]
        assert crowd[3] == 1.0
        assert crowd[0] == 0.0 and crowd[6] == 0.0
        assert crowd[2] == 0.5 and crowd[4] == 0.5

    def test_rejects_bad_rows(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule(("a", "b"), [(1.0,)])
        with pytest.raises(WorkloadError):
            PhaseSchedule(("a", "b"), [(-1.0, 2.0)])
        with pytest.raises(WorkloadError):
            PhaseSchedule(("a", "b"), [(0.0, 0.0)])


# ---------------------------------------------------------------------------
# Drifting workload generation
# ---------------------------------------------------------------------------

class TestDriftingWorkloadGenerator:
    def test_seeded_epochs_are_deterministic(self, oltp_style_phase, olap_phase):
        schedule = PhaseSchedule.crossfade(6, ("oltp", "olap"))

        def stream_names(seed):
            generator = DriftingWorkloadGenerator(
                [oltp_style_phase, olap_phase], schedule, seed=seed
            )
            return [
                tuple(query.name for query in epoch.workload.queries)
                for epoch in generator.epochs()
            ]

        assert stream_names(97) == stream_names(97)
        assert stream_names(97) != stream_names(98)

    def test_epoch_composition_tracks_weights(self, two_phase_generator,
                                              oltp_style_phase, olap_phase):
        first = two_phase_generator.epoch_workload(0)
        last = two_phase_generator.epoch_workload(two_phase_generator.num_epochs - 1)
        oltp_names = {query.name for query in oltp_style_phase.workload.queries}
        assert all(query.name in oltp_names for query in first.workload.queries)
        olap_names = {query.name for query in olap_phase.workload.queries}
        assert all(query.name in olap_names for query in last.workload.queries)

    def test_every_epoch_is_a_valid_workload(self, two_phase_generator):
        for epoch in two_phase_generator.epochs():
            assert epoch.workload.queries
            assert epoch.workload.kind == "dss"
            assert sum(epoch.weights) == pytest.approx(1.0)

    def test_phase_validation(self, olap_phase, scan_query):
        oltp = Workload(
            name="mix", kind="oltp", transaction_mix=((scan_query, 1.0),), concurrency=5
        )
        with pytest.raises(WorkloadError):
            DriftingWorkloadGenerator(
                [olap_phase, WorkloadPhase("oltp", oltp)],
                PhaseSchedule.crossfade(4, ("olap", "oltp")),
            )

    def test_oltp_blend(self, scan_query, lookup_query, write_query):
        mix_a = Workload(
            name="a", kind="oltp",
            transaction_mix=((lookup_query, 3.0), (write_query, 1.0)),
            concurrency=10, measured_transaction_fraction=0.5,
        )
        mix_b = Workload(
            name="b", kind="oltp", transaction_mix=((scan_query, 1.0),),
            concurrency=10, measured_transaction_fraction=1.0,
        )
        blended = blend_transaction_mixes([mix_a, mix_b], (0.75, 0.25), name="ab")
        weights = {query.name: weight for query, weight in blended.transaction_mix}
        assert weights[lookup_query.name] == pytest.approx(0.75 * 0.75)
        assert weights[write_query.name] == pytest.approx(0.75 * 0.25)
        assert weights[scan_query.name] == pytest.approx(0.25)
        assert blended.measured_transaction_fraction == pytest.approx(
            0.75 * 0.5 + 0.25 * 1.0
        )

    def test_oltp_blend_rejects_mismatched_windows(self, scan_query, lookup_query):
        mix_a = Workload(name="a", kind="oltp", transaction_mix=((lookup_query, 1.0),),
                         concurrency=10, duration_s=3600.0)
        mix_b = Workload(name="b", kind="oltp", transaction_mix=((scan_query, 1.0),),
                         concurrency=10, duration_s=7200.0)
        with pytest.raises(WorkloadError):
            blend_transaction_mixes([mix_a, mix_b], (0.5, 0.5), name="ab")


# ---------------------------------------------------------------------------
# Migration plans and cost conservation
# ---------------------------------------------------------------------------

class TestMigration:
    @pytest.fixture
    def layouts(self, small_objects, box1_system):
        everything_fast = Layout.uniform(small_objects, box1_system, "H-SSD")
        split = everything_fast.with_assignment("fact", "HDD RAID 0").with_assignment(
            "dim", "L-SSD"
        )
        return everything_fast, split

    def test_plan_lists_changed_objects_only(self, layouts):
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        moved = {move.object_name: (move.source, move.target) for move in plan.moves}
        assert moved["fact"] == ("H-SSD", "HDD RAID 0")
        assert moved["dim"] == ("H-SSD", "L-SSD")
        assert all(name in ("fact", "dim") for name in moved)
        assert MigrationPlan.between(source, source).is_empty

    def test_cost_is_conserved_over_class_pairs(self, layouts, box1_system):
        """Total cost must equal bytes moved per class pair times that pair's
        per-GB price -- no bytes may be dropped or double-charged."""
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        model = MigrationCostModel(box1_system)
        cost = model.assess(plan)

        assert cost.bytes_moved_gb == pytest.approx(
            sum(move.size_gb for move in plan.moves)
        )
        by_pair_total = sum(cost.bytes_by_class_pair.values())
        assert by_pair_total == pytest.approx(cost.bytes_moved_gb)
        expected_cents = sum(
            gigabytes * model.cents_per_gb(source_class, target_class)
            for (source_class, target_class), gigabytes in cost.bytes_by_class_pair.items()
        )
        assert cost.transfer_cents == pytest.approx(expected_cents)
        expected_seconds = sum(
            gigabytes * model.seconds_per_gb(source_class, target_class)
            for (source_class, target_class), gigabytes in cost.bytes_by_class_pair.items()
        )
        assert cost.io_time_s == pytest.approx(expected_seconds)

    def test_empty_plan_costs_nothing(self, layouts, box1_system):
        source, _ = layouts
        cost = MigrationCostModel(box1_system).assess(MigrationPlan.between(source, source))
        assert cost.cost_cents == 0.0
        assert cost.io_time_s == 0.0
        assert cost.bytes_moved_gb == 0.0

    def test_disruption_prices_io_time_at_layout_rate(self, layouts, box1_system):
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        model = MigrationCostModel(box1_system)
        rate = 7.5  # cents/hour
        cost = model.assess(plan, layout_cost_cents_per_hour=rate)
        assert cost.disruption_cents == pytest.approx(rate * cost.io_time_s / 3600.0)

    def test_simulated_migration_matches_analytic_time(self, layouts, box1_system):
        """Replaying the plan's I/O batches on the deterministic device
        simulator must accumulate exactly the analytic migration time."""
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        model = MigrationCostModel(box1_system)
        simulator = MultiClassSimulator(box1_system, jitter=0.0, seed=3)
        busy_ms = simulator.run_batches(model.io_requests(plan))
        assert busy_ms / 1000.0 == pytest.approx(model.io_time_s(plan))
        assert simulator.elapsed_ms() <= busy_ms

    def test_policy_amortization(self):
        policy = ReProvisioningPolicy(horizon_epochs=4)
        # Saves 1 cent/epoch over 4 epochs; migration costs 3: migrate.
        assert policy.should_migrate(10.0, 9.0, 3.0)
        # Migration costs 5 > projected saving 4: stay.
        assert not policy.should_migrate(10.0, 9.0, 5.0)
        # A regression never migrates, whatever the cost.
        assert not policy.should_migrate(9.0, 10.0, 0.0)


# ---------------------------------------------------------------------------
# Telemetry monitoring
# ---------------------------------------------------------------------------

class TestTelemetryMonitor:
    class _FakeResult:
        def __init__(self, name, io_by_object):
            self.workload_name = name
            self.io_by_object = io_by_object

    def test_identical_epochs_never_drift(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        counts = {"fact": {"SR": 100.0}, "dim": {"RR": 50.0}}
        for epoch in range(5):
            monitor.observe(epoch, self._FakeResult("w", counts))
            decision = monitor.check_drift()
            assert not decision.drifted
            assert decision.share_distance == 0.0

    def test_share_shift_triggers(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(share_threshold=0.2)
        )
        monitor.observe(0, self._FakeResult("w", {"fact": {"RR": 90.0}, "dim": {"RR": 10.0}}))
        assert not monitor.check_drift().drifted
        monitor.observe(1, self._FakeResult("w", {"fact": {"RR": 10.0}, "dim": {"RR": 90.0}}))
        decision = monitor.check_drift()
        assert decision.drifted
        assert decision.share_distance == pytest.approx(0.8)

    def test_volume_change_triggers(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(volume_threshold=0.5)
        )
        monitor.observe(0, self._FakeResult("w", {"fact": {"RR": 100.0}}))
        monitor.observe(1, self._FakeResult("w", {"fact": {"RR": 300.0}}))
        decision = monitor.check_drift()
        assert decision.drifted
        assert decision.volume_change == pytest.approx(2.0)

    def test_cooldown_suppresses_retier(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system,
            thresholds=DriftThresholds(share_threshold=0.1, min_epochs_between=3),
        )
        monitor.observe(0, self._FakeResult("w", {"fact": {"RR": 90.0}, "dim": {"RR": 10.0}}))
        monitor.mark_reprovisioned(0)
        monitor.observe(1, self._FakeResult("w", {"fact": {"RR": 10.0}, "dim": {"RR": 90.0}}))
        assert not monitor.check_drift().drifted  # still cooling down
        monitor.observe(3, self._FakeResult("w", {"fact": {"RR": 10.0}, "dim": {"RR": 90.0}}))
        assert monitor.check_drift().drifted

    def test_reprovision_rebases_reference_on_new_layout(self, box1_system):
        """Telemetry is layout-dependent: after a re-tier the reference must
        be the counts seen under the *new* layout, so an unchanged workload
        scores zero drift instead of phantom plan-flip drift."""
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(share_threshold=0.1)
        )
        old_layout_counts = {"fact": {"RR": 90.0}, "dim": {"RR": 10.0}}
        new_layout_counts = {"fact": {"SR": 40.0}, "dim": {"SR": 60.0}}
        monitor.observe(0, self._FakeResult("w", old_layout_counts))
        monitor.mark_reprovisioned(0, self._FakeResult("w", new_layout_counts))
        monitor.observe(1, self._FakeResult("w", new_layout_counts))
        decision = monitor.check_drift()
        assert not decision.drifted
        assert decision.share_distance == 0.0

    def test_profile_set_wraps_latest_epoch(self, box1_system):
        monitor = TelemetryMonitor(box1_system, concurrency=4)
        counts = {"fact": {"SR": 10.0}}
        monitor.observe(0, self._FakeResult("w", counts))
        profile = monitor.profile_set()
        assert profile.concurrency == 4
        assert profile.profiles[(box1_system.most_expensive().name,)] == counts


# ---------------------------------------------------------------------------
# DOT warm start
# ---------------------------------------------------------------------------

class TestWarmStart:
    def test_warm_start_from_l0_equals_cold(self, small_objects, box1_system,
                                            small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        profiles = WorkloadProfiler(small_objects, box1_system, estimator).profile(
            small_workload, mode="estimate"
        )
        optimizer = DOTOptimizer(small_objects, box1_system, estimator)
        cold = optimizer.optimize(small_workload, profiles)
        warm = optimizer.optimize(
            small_workload, profiles, initial_layout=optimizer.initial_layout()
        )
        assert warm.layout == cold.layout
        assert warm.toc_cents == cold.toc_cents

    def test_warm_start_from_optimum_keeps_it(self, small_objects, box1_system,
                                              small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        profiles = WorkloadProfiler(small_objects, box1_system, estimator).profile(
            small_workload, mode="estimate"
        )
        optimizer = DOTOptimizer(small_objects, box1_system, estimator)
        cold = optimizer.optimize(small_workload, profiles)
        warm = optimizer.optimize(small_workload, profiles, initial_layout=cold.layout)
        assert warm.feasible
        assert warm.toc_cents <= cold.toc_cents


# ---------------------------------------------------------------------------
# The epoch loop
# ---------------------------------------------------------------------------

class TestOnlineAdvisor:
    def test_no_drift_never_retiers(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        """A workload that never changes must provision once and only once."""
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
        )
        result = advisor.run([small_workload] * 6)
        assert result.num_epochs == 6
        assert result.retier_epochs == ()
        assert result.total_migration_cents == 0.0
        first_layout = result.records[0].layout
        assert all(record.layout == first_layout for record in result.records)
        assert all(not record.reoptimized for record in result.records[1:])

    def test_crossfade_beats_frozen_net_of_migration(self, small_objects, box1_system,
                                                     small_catalog, two_phase_generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
        )
        online = advisor.run(two_phase_generator.epochs())
        frozen = advisor.evaluate_frozen(
            two_phase_generator.epochs(), online.records[0].layout
        )
        assert online.num_epochs == two_phase_generator.num_epochs
        assert online.min_psr >= 0.5
        assert online.cumulative_cost_cents <= frozen.cumulative_cost_cents
        # Cumulative cost is monotone in epochs.
        running = [record.cumulative_cost_cents for record in online.records]
        assert running == sorted(running)

    def test_run_is_deterministic(self, small_objects, box1_system, small_catalog,
                                  two_phase_generator):
        def run_once():
            advisor = OnlineAdvisor(
                small_objects, box1_system, fresh_estimator(small_catalog),
                sla=RelativeSLA(0.5),
            )
            return advisor.run(two_phase_generator.epochs())

        first, second = run_once(), run_once()
        assert first.describe() == second.describe()
        assert first.cumulative_cost_cents == second.cumulative_cost_cents

    def test_migration_charges_enter_cumulative_cost(self, small_objects, box1_system,
                                                     small_catalog, two_phase_generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
        )
        online = advisor.run(two_phase_generator.epochs())
        toc_only = sum(record.toc_cents for record in online.records)
        assert online.cumulative_cost_cents == pytest.approx(
            toc_only + online.total_migration_cents
        )


# ---------------------------------------------------------------------------
# Trend prediction
# ---------------------------------------------------------------------------

class _FakeResult:
    def __init__(self, name, io_by_object):
        self.workload_name = name
        self.io_by_object = io_by_object


def _ramp_counts(step, total=1000.0):
    """Telemetry whose I/O share ramps from `fact` toward `dim` by 10 %/epoch."""
    dim_share = min(0.1 * step, 1.0)
    return {
        "fact": {"RR": total * (1.0 - dim_share)},
        "dim": {"RR": total * dim_share},
    }


class TestTrendPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrendPredictor(window=1)
        with pytest.raises(ValueError):
            TrendPredictor(horizon_epochs=0)
        with pytest.raises(ValueError):
            TrendPredictor(method="spline")
        with pytest.raises(ValueError):
            TrendPredictor(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            TrendPredictor(min_history=1)
        with pytest.raises(ValueError):
            # Default min_history=3 could never be met by a 2-epoch window;
            # the predictor would silently never fire.
            TrendPredictor(window=2)

    def test_insufficient_history_predicts_nothing(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        predictor = TrendPredictor(window=4, min_history=3)
        monitor.observe(0, _FakeResult("w", _ramp_counts(0)))
        monitor.observe(1, _FakeResult("w", _ramp_counts(1)))
        decision = monitor.check_predicted_drift(predictor)
        assert not decision.predicted
        assert "insufficient telemetry" in decision.reason

    @pytest.mark.parametrize("method", ["linear", "ewma"])
    def test_ramp_is_anticipated_before_threshold(self, box1_system, method):
        """At 10 %/epoch share drift, a horizon-3 projection crosses a 40 %
        threshold while the observed distance is still at ~20 %."""
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(share_threshold=0.40)
        )
        predictor = TrendPredictor(window=3, horizon_epochs=3, min_history=2,
                                   method=method)
        for epoch in range(3):
            monitor.observe(epoch, _FakeResult("w", _ramp_counts(epoch)))
        assert not monitor.check_drift().drifted  # observed: 20 % < 40 %
        decision = monitor.check_predicted_drift(predictor)
        assert decision.predicted
        assert decision.share_distance > 0.40
        # The projected counts keep ramping toward `dim`.
        projected_dim = sum(decision.io_by_object["dim"].values())
        projected_total = sum(
            sum(by_type.values()) for by_type in decision.io_by_object.values()
        )
        assert projected_dim / projected_total == pytest.approx(0.5, abs=0.01)

    def test_stationary_stream_never_predicts(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        predictor = TrendPredictor(window=4, horizon_epochs=4, min_history=2)
        for epoch in range(6):
            monitor.observe(epoch, _FakeResult("w", _ramp_counts(0)))
            decision = monitor.check_predicted_drift(predictor)
            assert not decision.predicted
            assert decision.share_distance == pytest.approx(0.0)

    def test_reprovision_restarts_the_window(self, box1_system):
        """Slopes must never be fitted across a re-tier boundary."""
        monitor = TelemetryMonitor(box1_system)
        predictor = TrendPredictor(window=4, horizon_epochs=3, min_history=3)
        for epoch in range(4):
            monitor.observe(epoch, _FakeResult("w", _ramp_counts(epoch)))
        monitor.mark_reprovisioned(3, _FakeResult("w", _ramp_counts(3)))
        # Only the rebased reference + one fresh epoch: below min_history.
        monitor.observe(4, _FakeResult("w", _ramp_counts(4)))
        decision = monitor.check_predicted_drift(predictor)
        assert not decision.predicted
        assert "insufficient telemetry" in decision.reason

    def test_cooldown_suppresses_prediction(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system,
            thresholds=DriftThresholds(share_threshold=0.05, min_epochs_between=3),
        )
        predictor = TrendPredictor(window=3, horizon_epochs=3, min_history=2)
        monitor.observe(0, _FakeResult("w", _ramp_counts(0)))
        monitor.mark_reprovisioned(0)
        monitor.observe(1, _FakeResult("w", _ramp_counts(1)))
        monitor.observe(2, _FakeResult("w", _ramp_counts(2)))
        decision = monitor.check_predicted_drift(predictor)
        assert not decision.predicted
        assert "cooldown" in decision.reason


# ---------------------------------------------------------------------------
# Telemetry-driven re-profiling
# ---------------------------------------------------------------------------

@pytest.fixture
def plan_stable_generator(small_workload):
    """A drift between two scan-only streams whose plans never flip.

    Full table scans have no index alternative, so the optimizer's plan --
    and therefore the per-object I/O counts -- are identical under every
    placement.  On such a workload the telemetry observed under the deployed
    layout equals the estimator replay's profile for *every* baseline
    pattern, which is the regime where telemetry-driven re-profiling must
    reproduce the estimator-profiled loop bit for bit.
    """
    scan_fact = Query(name="scan_fact_ps",
                      accesses=(TableAccess("fact", selectivity=0.9),),
                      aggregate_rows=1_800_000)
    scan_dim = Query(name="scan_dim_ps",
                     accesses=(TableAccess("dim", selectivity=0.9),),
                     aggregate_rows=45_000)
    fact_heavy = small_workload.with_stream(
        (scan_fact, scan_fact, scan_fact, scan_dim), name="fact-heavy")
    dim_heavy = small_workload.with_stream(
        (scan_dim, scan_dim, scan_dim, scan_fact), name="dim-heavy")
    schedule = PhaseSchedule.ramp(10, start_epoch=1, end_epoch=5,
                                  phase_names=("fact", "dim"))
    return DriftingWorkloadGenerator(
        [WorkloadPhase("fact", fact_heavy), WorkloadPhase("dim", dim_heavy)],
        schedule, seed=13, name="plan-stable-drift",
    )


class TestTelemetryProfiling:
    def _run(self, source, small_objects, box1_system, small_catalog, generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
            profile_source=source,
        )
        return advisor.run(generator.epochs())

    def test_rejects_unknown_profile_source(self, small_objects, box1_system,
                                            small_catalog):
        with pytest.raises(ValueError):
            OnlineAdvisor(small_objects, box1_system,
                          fresh_estimator(small_catalog), profile_source="oracle")

    def test_bitwise_equal_to_estimator_replay_when_plans_are_stable(
            self, small_objects, box1_system, small_catalog, plan_stable_generator):
        """ISSUE 5 regression lock: when the observed telemetry equals the
        estimator replay (plan-stable workload, estimate mode), the
        telemetry-profiled reactive loop is bitwise identical to the
        estimator-profiled (PR-4) loop."""
        telemetry = self._run("telemetry", small_objects, box1_system,
                              small_catalog, plan_stable_generator)
        estimator = self._run("estimator", small_objects, box1_system,
                              small_catalog, plan_stable_generator)
        assert telemetry.describe() == estimator.describe()
        assert telemetry.cumulative_cost_cents == estimator.cumulative_cost_cents
        assert [record.layout for record in telemetry.records] == [
            record.layout for record in estimator.records
        ]

    def test_warm_epochs_skip_the_profiler(self, small_objects, box1_system,
                                           small_catalog, plan_stable_generator,
                                           monkeypatch):
        """Telemetry-driven re-profiling must not re-run the ``M^K``
        estimator enumeration after the cold start."""
        calls = []
        original = WorkloadProfiler.profile

        def counting_profile(self, workload, *args, **kwargs):
            calls.append(getattr(workload, "name", "?"))
            return original(self, workload, *args, **kwargs)

        monkeypatch.setattr(WorkloadProfiler, "profile", counting_profile)
        online = self._run("telemetry", small_objects, box1_system,
                           small_catalog, plan_stable_generator)
        assert sum(1 for record in online.records if record.reoptimized) > 1
        # Only the cold initial provisioning profiles through the estimator.
        assert len(calls) == 1

    def test_cache_stats_regression_no_per_epoch_rewarm(
            self, small_objects, box1_system, small_catalog, plan_stable_generator):
        """ISSUE 5 satellite: the estimator-profiling path re-warms the
        shared estimate cache on every drifted epoch (pure replay -- extra
        hits, identical misses on a plan-stable workload); the telemetry
        path must not pay those hits."""
        telemetry = self._run("telemetry", small_objects, box1_system,
                              small_catalog, plan_stable_generator)
        estimator = self._run("estimator", small_objects, box1_system,
                              small_catalog, plan_stable_generator)
        # Same estimates were needed (identical layout walks)...
        assert telemetry.cache_misses == estimator.cache_misses
        # ...but the per-epoch M^K warm-up replay is gone.
        assert telemetry.cache_hits < estimator.cache_hits


# ---------------------------------------------------------------------------
# Predictive re-tiering (controller level)
# ---------------------------------------------------------------------------

@pytest.fixture
def balanced_catalog():
    """Two tables of comparable size, so phase blends shift I/O *gradually*.

    (The `small` catalog's fact table dwarfs its dimension table, which
    makes the share distance between streams saturate at the tiniest blend
    -- no ramp for a trend to be fitted on.)
    """
    from repro.dbms.datagen import SyntheticTableSpec, build_synthetic_catalog

    return build_synthetic_catalog(
        [
            SyntheticTableSpec("t0", row_count=2_000_000, row_width_bytes=120),
            SyntheticTableSpec("t1", row_count=1_600_000, row_width_bytes=140),
        ],
        name="balanced",
    )


@pytest.fixture
def balanced_flash_generator(balanced_catalog):
    """A flash crowd shifting scans from t0 to t1, peaking at epoch 8.

    Scans have no index alternative (plan-stable), and the two streams move
    comparable I/O volumes, so the telemetry share drifts roughly linearly
    with the crowd weight: the shape a trend extrapolator can anticipate.
    """
    scan_t0 = Query(name="scan_t0", accesses=(TableAccess("t0", selectivity=0.9),),
                    aggregate_rows=100_000)
    scan_t1 = Query(name="scan_t1", accesses=(TableAccess("t1", selectivity=0.9),),
                    aggregate_rows=100_000)
    # Eight-query streams ordered so weight-proportional *prefixes* shift the
    # blend smoothly (t1's I/O share grows ~0.5 * crowd_weight per epoch).
    steady = Workload(name="steady", kind="dss",
                      queries=(scan_t0,) * 6 + (scan_t1,) * 2, concurrency=1)
    crowd = Workload(name="crowd", kind="dss",
                     queries=(scan_t1,) * 6 + (scan_t0,) * 2, concurrency=1)
    schedule = PhaseSchedule.flash_crowd(14, spike_epoch=8, width=4,
                                         phase_names=("steady", "crowd"))
    return DriftingWorkloadGenerator(
        [WorkloadPhase("steady", steady), WorkloadPhase("crowd", crowd)],
        schedule, seed=11, name="balanced-flash",
    )


class TestPredictiveController:
    def _advisor(self, objects, box1_system, catalog, predictor,
                 share_threshold=0.35):
        return OnlineAdvisor(
            objects, box1_system, fresh_estimator(catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=share_threshold),
            predictor=predictor,
        )

    def test_trigger_fires_before_the_peak(self, box1_system, balanced_catalog,
                                           balanced_flash_generator):
        """ISSUE 5: on the seeded ramp into the flash crowd, the predictive
        trigger must re-optimize at an epoch strictly before the spike."""
        predictor = TrendPredictor(window=3, horizon_epochs=3, min_history=3)
        advisor = self._advisor(balanced_catalog.database_objects(), box1_system,
                                balanced_catalog, predictor)
        online = advisor.run(balanced_flash_generator.epochs())
        predicted_epochs = [record.epoch for record in online.records
                            if record.reoptimized and record.predicted]
        assert predicted_epochs
        assert min(predicted_epochs) < 8
        # The prediction pre-empted the reactive threshold: at the firing
        # epoch the *observed* distance was still inside it.
        fired = next(record for record in online.records
                     if record.reoptimized and record.predicted)
        assert fired.drift.share_distance <= advisor.thresholds.share_threshold
        assert fired.forecast is not None and fired.forecast.predicted
        assert fired.forecast.share_distance > advisor.thresholds.share_threshold

    def test_never_fires_on_a_stationary_stream(self, small_objects, box1_system,
                                                small_catalog, small_workload):
        """ISSUE 5: a workload that never changes must not trip the
        predictor, however long it runs."""
        predictor = TrendPredictor(window=3, horizon_epochs=4, min_history=2)
        advisor = self._advisor(small_objects, box1_system, small_catalog, predictor)
        online = advisor.run([small_workload] * 10)
        assert all(not record.predicted for record in online.records)
        assert all(not record.reoptimized for record in online.records[1:])
        assert online.retier_epochs == ()

    def test_predictive_run_is_deterministic(self, box1_system, balanced_catalog,
                                             balanced_flash_generator):
        def run_once():
            predictor = TrendPredictor(window=3, horizon_epochs=3, min_history=3)
            advisor = self._advisor(balanced_catalog.database_objects(), box1_system,
                                    balanced_catalog, predictor)
            return advisor.run(balanced_flash_generator.epochs())

        first, second = run_once(), run_once()
        assert first.describe() == second.describe()
        assert first.predicted_retier_epochs == second.predicted_retier_epochs


# ---------------------------------------------------------------------------
# Simulated (executor-backed) migration I/O
# ---------------------------------------------------------------------------

class TestMigrationExecutor:
    @pytest.fixture
    def plan(self, small_objects, box1_system):
        fast = Layout.uniform(small_objects, box1_system, "H-SSD")
        target = fast.with_assignment("fact", "HDD RAID 0").with_assignment(
            "dim", "L-SSD")
        return MigrationPlan.between(fast, target)

    def test_idle_system_reproduces_the_analytic_model_exactly(self, plan,
                                                               box1_system):
        """With no background load and a deterministic simulator, executing
        the plan's batches must price exactly what the closed form says."""
        executor = MigrationExecutor(box1_system, jitter=0.0)
        cost = executor.execute(plan)
        assert cost.io_time_s == pytest.approx(cost.analytic.io_time_s, rel=1e-12)
        assert cost.contended_time_s == pytest.approx(cost.analytic.io_time_s, rel=1e-12)
        assert cost.transfer_cents == pytest.approx(cost.analytic.transfer_cents, rel=1e-12)
        assert cost.contention_factor == pytest.approx(1.0)

    def test_contention_stretches_the_double_occupancy_charge(self, plan,
                                                              box1_system):
        """A busy device slows the mover down: the simulated charge must
        exceed the analytic one, bounded by the idle-fraction stretch."""

        class _Load:
            workload_name = "bg"
            total_time_s = 100.0
            busy_time_by_class_ms = {"H-SSD": 50_000.0, "L-SSD": 25_000.0}

        executor = MigrationExecutor(box1_system, jitter=0.0)
        cost = executor.execute(plan, workload_result=_Load())
        assert cost.utilization_by_class["H-SSD"] == pytest.approx(0.5)
        assert cost.utilization_by_class["L-SSD"] == pytest.approx(0.25)
        # Busy time is load-independent; only the in-flight window stretches.
        assert cost.io_time_s == pytest.approx(cost.analytic.io_time_s, rel=1e-12)
        assert cost.transfer_cents > cost.analytic.transfer_cents
        max_stretch = 1.0 / (1.0 - max(cost.utilization_by_class.values()))
        assert cost.transfer_cents <= cost.analytic.transfer_cents * max_stretch
        assert 1.0 < cost.contention_factor <= max_stretch

    def test_utilization_is_capped(self, plan, box1_system):
        class _Saturated:
            workload_name = "bg"
            total_time_s = 10.0
            busy_time_by_class_ms = {"H-SSD": 1e9}

        executor = MigrationExecutor(box1_system, jitter=0.0, max_utilization=0.9)
        cost = executor.execute(plan, workload_result=_Saturated())
        assert cost.utilization_by_class["H-SSD"] == pytest.approx(0.9)
        assert cost.transfer_cents < float("inf")

    def test_crossfade_simulated_vs_analytic_within_tolerance(
            self, small_objects, box1_system, small_catalog, two_phase_generator):
        """ISSUE 5: on the (single-phase-at-a-time) crossfade, every re-tier
        priced by the executor must agree with the analytic model within the
        contention bound -- same busy time, charge within the idle-fraction
        stretch of the busiest class."""
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
            # The contended price is steeper than the analytic one on this
            # I/O-bound toy workload; widen the amortization window so the
            # re-tier still happens and the price can be cross-checked.
            policy=ReProvisioningPolicy(horizon_epochs=24),
            migration_execution="simulated",
        )
        online = advisor.run(two_phase_generator.epochs())
        migrations = [record.migration for record in online.records
                      if record.migrated and record.migration is not None]
        assert migrations
        for cost in migrations:
            assert cost.io_time_s == pytest.approx(cost.analytic.io_time_s, rel=1e-9)
            assert cost.transfer_cents >= cost.analytic.transfer_cents
            max_stretch = 1.0 / (1.0 - max(
                cost.utilization_by_class.values(), default=0.0))
            assert cost.cost_cents <= cost.analytic.cost_cents * max_stretch * (1 + 1e-9)


# ---------------------------------------------------------------------------
# Cross-kind drift
# ---------------------------------------------------------------------------

class TestCrossKind:
    @pytest.fixture
    def oltp_mix(self, lookup_query, write_query):
        return Workload(
            name="small-oltp", kind="oltp",
            transaction_mix=((lookup_query, 3.0), (write_query, 1.0)),
            concurrency=10,
        )

    @pytest.fixture
    def crosskind_generator(self, oltp_mix, small_workload):
        # Ramp early, then hold: the tail must outlast the amortization
        # horizon or a late re-tier's payback is truncated by the end of
        # the run (same shaping as two_phase_generator).
        schedule = PhaseSchedule.ramp(12, start_epoch=1, end_epoch=5,
                                      phase_names=("oltp", "dss"))
        return DriftingWorkloadGenerator(
            [WorkloadPhase("oltp", oltp_mix), WorkloadPhase("dss", small_workload)],
            schedule, seed=7, name="crosskind", cross_kind=True,
        )

    def test_mixed_kinds_require_the_flag(self, oltp_mix, small_workload):
        with pytest.raises(WorkloadError):
            DriftingWorkloadGenerator(
                [WorkloadPhase("oltp", oltp_mix), WorkloadPhase("dss", small_workload)],
                PhaseSchedule.crossfade(4, ("oltp", "dss")),
            )

    def test_endpoints_are_pure_and_middle_is_mixed(self, crosskind_generator):
        epochs = list(crosskind_generator.epochs())
        assert epochs[0].workload.kind == "oltp"
        assert epochs[-1].workload.kind == "dss"
        middle = epochs[3].workload
        assert isinstance(middle, CrossKindWorkload)
        assert middle.kind == "mixed"
        assert sum(middle.weights) == pytest.approx(1.0)
        kinds = {component.kind for component, _ in middle.components}
        assert kinds == {"oltp", "dss"}

    def test_crosskind_workload_validation(self, oltp_mix, small_workload):
        with pytest.raises(WorkloadError):
            CrossKindWorkload(name="empty", components=())
        with pytest.raises(WorkloadError):
            CrossKindWorkload(name="bad-weight",
                              components=((oltp_mix, 0.0), (small_workload, 1.0)))
        nested = CrossKindWorkload(
            name="ok", components=((oltp_mix, 1.0), (small_workload, 3.0)))
        with pytest.raises(WorkloadError):
            CrossKindWorkload(name="nested", components=((nested, 1.0),))
        assert nested.weights == pytest.approx((0.25, 0.75))
        assert nested.dominant is small_workload
        assert nested.concurrency == small_workload.concurrency

    def test_controller_blends_toc_across_kinds(self, small_objects, box1_system,
                                                small_catalog, crosskind_generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
        )
        online = advisor.run(crosskind_generator.epochs())
        assert online.num_epochs == crosskind_generator.num_epochs
        mixed_records = [record for record in online.records
                         if record.report is not None
                         and record.report.metric == "cents_blended"]
        assert len(mixed_records) >= 2
        running = [record.cumulative_cost_cents for record in online.records]
        assert running == sorted(running)
        # The blend is a convex combination: a mixed epoch's TOC lies
        # between the two components' own TOCs on the same layout.
        record = mixed_records[0]
        epoch_workload = next(
            epoch for epoch in crosskind_generator.epochs()
            if epoch.epoch == record.epoch
        ).workload
        component_tocs = [
            advisor.toc_model.evaluate(record.layout, component, mode="estimate").toc_cents
            for component, _ in epoch_workload.components
        ]
        assert min(component_tocs) <= record.toc_cents <= max(component_tocs)

    def test_simulated_migration_on_mixed_epochs(self, small_objects, box1_system,
                                                 small_catalog, crosskind_generator):
        """Executor-priced migrations must work on kind-mixed epochs too,
        reconstructing contention per component (each at its own
        concurrency) rather than typing the merged counts at one point."""
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
            policy=ReProvisioningPolicy(horizon_epochs=24),
            migration_execution="simulated",
        )
        online = advisor.run(crosskind_generator.epochs())
        migrations = [record.migration for record in online.records
                      if record.migrated and record.migration is not None]
        assert migrations
        for cost in migrations:
            assert cost.io_time_s == pytest.approx(cost.analytic.io_time_s, rel=1e-9)
            assert cost.transfer_cents >= cost.analytic.transfer_cents
            assert all(0.0 <= value <= 0.9
                       for value in cost.utilization_by_class.values())

    def test_frozen_replay_handles_mixed_epochs(self, small_objects, box1_system,
                                                small_catalog, crosskind_generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
        )
        online = advisor.run(crosskind_generator.epochs())
        frozen = advisor.evaluate_frozen(crosskind_generator.epochs(),
                                         online.records[0].layout)
        assert len(frozen.records) == online.num_epochs
        assert online.cumulative_cost_cents <= frozen.cumulative_cost_cents


# ---------------------------------------------------------------------------
# Epoch-loop stress (CI only)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_long_diurnal_epoch_loop_stress(small_objects, box1_system, small_catalog,
                                        small_workload, lookup_query, write_query):
    """A 48-epoch diurnal loop: the controller must stay feasible, keep the
    SLA, keep cumulative cost monotone and re-tier a bounded number of times
    (no thrashing: the cooldown caps re-tiers at one per two epochs)."""
    oltp_style = small_workload.with_stream((lookup_query, write_query) * 4,
                                            name="night-oltp")
    generator = DriftingWorkloadGenerator(
        [WorkloadPhase("day", small_workload), WorkloadPhase("night", oltp_style)],
        PhaseSchedule.diurnal(48, period=12, phase_names=("day", "night")),
        seed=5,
    )
    advisor = OnlineAdvisor(
        small_objects, box1_system, fresh_estimator(small_catalog),
        sla=RelativeSLA(0.5),
        thresholds=DriftThresholds(share_threshold=0.05, min_epochs_between=2),
    )
    result = advisor.run(generator.epochs())
    assert result.num_epochs == 48
    assert result.min_psr >= 0.5
    running = [record.cumulative_cost_cents for record in result.records]
    assert running == sorted(running)
    assert 1 <= len(result.retier_epochs) <= 24
