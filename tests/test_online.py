"""The online re-provisioning subsystem.

Covers the ISSUE 2 acceptance properties: seeded drift schedules are
deterministic, migration cost is conserved (bytes moved times class-pair
prices), a no-drift workload never triggers a re-tier, and the epoch loop's
end-to-end crossfade beats the frozen layout net of migration charges.
"""

import pytest

from repro.core.dot import DOTOptimizer
from repro.core.layout import Layout
from repro.core.profiler import WorkloadProfiler
from repro.dbms.executor import WorkloadEstimator
from repro.exceptions import WorkloadError
from repro.online.controller import OnlineAdvisor
from repro.online.drift import (
    DriftingWorkloadGenerator,
    PhaseSchedule,
    WorkloadPhase,
)
from repro.online.migration import (
    MigrationCostModel,
    MigrationPlan,
    ReProvisioningPolicy,
)
from repro.online.monitor import DriftThresholds, TelemetryMonitor
from repro.sla.constraints import RelativeSLA
from repro.storage.simulator import MultiClassSimulator
from repro.workloads.workload import Workload, blend_transaction_mixes


def fresh_estimator(catalog):
    return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)


@pytest.fixture
def olap_phase(small_workload):
    return WorkloadPhase("olap", small_workload)


@pytest.fixture
def oltp_style_phase(lookup_query, write_query, small_workload):
    stream = (lookup_query, write_query) * 3
    return WorkloadPhase("oltp", small_workload.with_stream(stream, name="oltp-style"))


@pytest.fixture
def two_phase_generator(oltp_style_phase, olap_phase):
    # Ramp early, then hold the drifted mix: the tail must be longer than the
    # policy's amortization horizon, or a late re-tier's payback is truncated
    # by the end of the run and the online-vs-frozen margin becomes noise.
    schedule = PhaseSchedule.ramp(12, start_epoch=1, end_epoch=5,
                                  phase_names=("oltp", "olap"))
    return DriftingWorkloadGenerator(
        [oltp_style_phase, olap_phase], schedule, seed=11, name="test-drift"
    )


# ---------------------------------------------------------------------------
# Phase schedules
# ---------------------------------------------------------------------------

class TestPhaseSchedule:
    def test_rows_are_normalised(self):
        schedule = PhaseSchedule(("a", "b"), [(2.0, 2.0), (1.0, 3.0)])
        assert schedule.weights_at(0) == (0.5, 0.5)
        assert schedule.weights_at(1) == (0.25, 0.75)

    def test_crossfade_endpoints(self):
        for shape in ("linear", "smoothstep"):
            schedule = PhaseSchedule.crossfade(10, shape=shape)
            assert schedule.weights_at(0) == (1.0, 0.0)
            assert schedule.weights_at(9) == (0.0, 1.0)
            # Weights move monotonically toward phase B.
            b_weights = [schedule.weights_at(epoch)[1] for epoch in range(10)]
            assert b_weights == sorted(b_weights)

    def test_ramp_holds_endpoints(self):
        schedule = PhaseSchedule.ramp(10, start_epoch=2, end_epoch=6)
        assert schedule.weights_at(2) == (1.0, 0.0)
        assert schedule.weights_at(4) == (0.5, 0.5)
        assert schedule.weights_at(8) == (0.0, 1.0)

    def test_diurnal_period(self):
        schedule = PhaseSchedule.diurnal(9, period=8)
        assert schedule.weights_at(0)[1] == pytest.approx(0.0)
        assert schedule.weights_at(4)[1] == pytest.approx(1.0)
        assert schedule.weights_at(8)[1] == pytest.approx(0.0)

    def test_flash_crowd_spike(self):
        schedule = PhaseSchedule.flash_crowd(7, spike_epoch=3, width=2)
        crowd = [schedule.weights_at(epoch)[1] for epoch in range(7)]
        assert crowd[3] == 1.0
        assert crowd[0] == 0.0 and crowd[6] == 0.0
        assert crowd[2] == 0.5 and crowd[4] == 0.5

    def test_rejects_bad_rows(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule(("a", "b"), [(1.0,)])
        with pytest.raises(WorkloadError):
            PhaseSchedule(("a", "b"), [(-1.0, 2.0)])
        with pytest.raises(WorkloadError):
            PhaseSchedule(("a", "b"), [(0.0, 0.0)])


# ---------------------------------------------------------------------------
# Drifting workload generation
# ---------------------------------------------------------------------------

class TestDriftingWorkloadGenerator:
    def test_seeded_epochs_are_deterministic(self, oltp_style_phase, olap_phase):
        schedule = PhaseSchedule.crossfade(6, ("oltp", "olap"))

        def stream_names(seed):
            generator = DriftingWorkloadGenerator(
                [oltp_style_phase, olap_phase], schedule, seed=seed
            )
            return [
                tuple(query.name for query in epoch.workload.queries)
                for epoch in generator.epochs()
            ]

        assert stream_names(97) == stream_names(97)
        assert stream_names(97) != stream_names(98)

    def test_epoch_composition_tracks_weights(self, two_phase_generator,
                                              oltp_style_phase, olap_phase):
        first = two_phase_generator.epoch_workload(0)
        last = two_phase_generator.epoch_workload(two_phase_generator.num_epochs - 1)
        oltp_names = {query.name for query in oltp_style_phase.workload.queries}
        assert all(query.name in oltp_names for query in first.workload.queries)
        olap_names = {query.name for query in olap_phase.workload.queries}
        assert all(query.name in olap_names for query in last.workload.queries)

    def test_every_epoch_is_a_valid_workload(self, two_phase_generator):
        for epoch in two_phase_generator.epochs():
            assert epoch.workload.queries
            assert epoch.workload.kind == "dss"
            assert sum(epoch.weights) == pytest.approx(1.0)

    def test_phase_validation(self, olap_phase, scan_query):
        oltp = Workload(
            name="mix", kind="oltp", transaction_mix=((scan_query, 1.0),), concurrency=5
        )
        with pytest.raises(WorkloadError):
            DriftingWorkloadGenerator(
                [olap_phase, WorkloadPhase("oltp", oltp)],
                PhaseSchedule.crossfade(4, ("olap", "oltp")),
            )

    def test_oltp_blend(self, scan_query, lookup_query, write_query):
        mix_a = Workload(
            name="a", kind="oltp",
            transaction_mix=((lookup_query, 3.0), (write_query, 1.0)),
            concurrency=10, measured_transaction_fraction=0.5,
        )
        mix_b = Workload(
            name="b", kind="oltp", transaction_mix=((scan_query, 1.0),),
            concurrency=10, measured_transaction_fraction=1.0,
        )
        blended = blend_transaction_mixes([mix_a, mix_b], (0.75, 0.25), name="ab")
        weights = {query.name: weight for query, weight in blended.transaction_mix}
        assert weights[lookup_query.name] == pytest.approx(0.75 * 0.75)
        assert weights[write_query.name] == pytest.approx(0.75 * 0.25)
        assert weights[scan_query.name] == pytest.approx(0.25)
        assert blended.measured_transaction_fraction == pytest.approx(
            0.75 * 0.5 + 0.25 * 1.0
        )

    def test_oltp_blend_rejects_mismatched_windows(self, scan_query, lookup_query):
        mix_a = Workload(name="a", kind="oltp", transaction_mix=((lookup_query, 1.0),),
                         concurrency=10, duration_s=3600.0)
        mix_b = Workload(name="b", kind="oltp", transaction_mix=((scan_query, 1.0),),
                         concurrency=10, duration_s=7200.0)
        with pytest.raises(WorkloadError):
            blend_transaction_mixes([mix_a, mix_b], (0.5, 0.5), name="ab")


# ---------------------------------------------------------------------------
# Migration plans and cost conservation
# ---------------------------------------------------------------------------

class TestMigration:
    @pytest.fixture
    def layouts(self, small_objects, box1_system):
        everything_fast = Layout.uniform(small_objects, box1_system, "H-SSD")
        split = everything_fast.with_assignment("fact", "HDD RAID 0").with_assignment(
            "dim", "L-SSD"
        )
        return everything_fast, split

    def test_plan_lists_changed_objects_only(self, layouts):
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        moved = {move.object_name: (move.source, move.target) for move in plan.moves}
        assert moved["fact"] == ("H-SSD", "HDD RAID 0")
        assert moved["dim"] == ("H-SSD", "L-SSD")
        assert all(name in ("fact", "dim") for name in moved)
        assert MigrationPlan.between(source, source).is_empty

    def test_cost_is_conserved_over_class_pairs(self, layouts, box1_system):
        """Total cost must equal bytes moved per class pair times that pair's
        per-GB price -- no bytes may be dropped or double-charged."""
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        model = MigrationCostModel(box1_system)
        cost = model.assess(plan)

        assert cost.bytes_moved_gb == pytest.approx(
            sum(move.size_gb for move in plan.moves)
        )
        by_pair_total = sum(cost.bytes_by_class_pair.values())
        assert by_pair_total == pytest.approx(cost.bytes_moved_gb)
        expected_cents = sum(
            gigabytes * model.cents_per_gb(source_class, target_class)
            for (source_class, target_class), gigabytes in cost.bytes_by_class_pair.items()
        )
        assert cost.transfer_cents == pytest.approx(expected_cents)
        expected_seconds = sum(
            gigabytes * model.seconds_per_gb(source_class, target_class)
            for (source_class, target_class), gigabytes in cost.bytes_by_class_pair.items()
        )
        assert cost.io_time_s == pytest.approx(expected_seconds)

    def test_empty_plan_costs_nothing(self, layouts, box1_system):
        source, _ = layouts
        cost = MigrationCostModel(box1_system).assess(MigrationPlan.between(source, source))
        assert cost.cost_cents == 0.0
        assert cost.io_time_s == 0.0
        assert cost.bytes_moved_gb == 0.0

    def test_disruption_prices_io_time_at_layout_rate(self, layouts, box1_system):
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        model = MigrationCostModel(box1_system)
        rate = 7.5  # cents/hour
        cost = model.assess(plan, layout_cost_cents_per_hour=rate)
        assert cost.disruption_cents == pytest.approx(rate * cost.io_time_s / 3600.0)

    def test_simulated_migration_matches_analytic_time(self, layouts, box1_system):
        """Replaying the plan's I/O batches on the deterministic device
        simulator must accumulate exactly the analytic migration time."""
        source, target = layouts
        plan = MigrationPlan.between(source, target)
        model = MigrationCostModel(box1_system)
        simulator = MultiClassSimulator(box1_system, jitter=0.0, seed=3)
        busy_ms = simulator.run_batches(model.io_requests(plan))
        assert busy_ms / 1000.0 == pytest.approx(model.io_time_s(plan))
        assert simulator.elapsed_ms() <= busy_ms

    def test_policy_amortization(self):
        policy = ReProvisioningPolicy(horizon_epochs=4)
        # Saves 1 cent/epoch over 4 epochs; migration costs 3: migrate.
        assert policy.should_migrate(10.0, 9.0, 3.0)
        # Migration costs 5 > projected saving 4: stay.
        assert not policy.should_migrate(10.0, 9.0, 5.0)
        # A regression never migrates, whatever the cost.
        assert not policy.should_migrate(9.0, 10.0, 0.0)


# ---------------------------------------------------------------------------
# Telemetry monitoring
# ---------------------------------------------------------------------------

class TestTelemetryMonitor:
    class _FakeResult:
        def __init__(self, name, io_by_object):
            self.workload_name = name
            self.io_by_object = io_by_object

    def test_identical_epochs_never_drift(self, box1_system):
        monitor = TelemetryMonitor(box1_system)
        counts = {"fact": {"SR": 100.0}, "dim": {"RR": 50.0}}
        for epoch in range(5):
            monitor.observe(epoch, self._FakeResult("w", counts))
            decision = monitor.check_drift()
            assert not decision.drifted
            assert decision.share_distance == 0.0

    def test_share_shift_triggers(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(share_threshold=0.2)
        )
        monitor.observe(0, self._FakeResult("w", {"fact": {"RR": 90.0}, "dim": {"RR": 10.0}}))
        assert not monitor.check_drift().drifted
        monitor.observe(1, self._FakeResult("w", {"fact": {"RR": 10.0}, "dim": {"RR": 90.0}}))
        decision = monitor.check_drift()
        assert decision.drifted
        assert decision.share_distance == pytest.approx(0.8)

    def test_volume_change_triggers(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(volume_threshold=0.5)
        )
        monitor.observe(0, self._FakeResult("w", {"fact": {"RR": 100.0}}))
        monitor.observe(1, self._FakeResult("w", {"fact": {"RR": 300.0}}))
        decision = monitor.check_drift()
        assert decision.drifted
        assert decision.volume_change == pytest.approx(2.0)

    def test_cooldown_suppresses_retier(self, box1_system):
        monitor = TelemetryMonitor(
            box1_system,
            thresholds=DriftThresholds(share_threshold=0.1, min_epochs_between=3),
        )
        monitor.observe(0, self._FakeResult("w", {"fact": {"RR": 90.0}, "dim": {"RR": 10.0}}))
        monitor.mark_reprovisioned(0)
        monitor.observe(1, self._FakeResult("w", {"fact": {"RR": 10.0}, "dim": {"RR": 90.0}}))
        assert not monitor.check_drift().drifted  # still cooling down
        monitor.observe(3, self._FakeResult("w", {"fact": {"RR": 10.0}, "dim": {"RR": 90.0}}))
        assert monitor.check_drift().drifted

    def test_reprovision_rebases_reference_on_new_layout(self, box1_system):
        """Telemetry is layout-dependent: after a re-tier the reference must
        be the counts seen under the *new* layout, so an unchanged workload
        scores zero drift instead of phantom plan-flip drift."""
        monitor = TelemetryMonitor(
            box1_system, thresholds=DriftThresholds(share_threshold=0.1)
        )
        old_layout_counts = {"fact": {"RR": 90.0}, "dim": {"RR": 10.0}}
        new_layout_counts = {"fact": {"SR": 40.0}, "dim": {"SR": 60.0}}
        monitor.observe(0, self._FakeResult("w", old_layout_counts))
        monitor.mark_reprovisioned(0, self._FakeResult("w", new_layout_counts))
        monitor.observe(1, self._FakeResult("w", new_layout_counts))
        decision = monitor.check_drift()
        assert not decision.drifted
        assert decision.share_distance == 0.0

    def test_profile_set_wraps_latest_epoch(self, box1_system):
        monitor = TelemetryMonitor(box1_system, concurrency=4)
        counts = {"fact": {"SR": 10.0}}
        monitor.observe(0, self._FakeResult("w", counts))
        profile = monitor.profile_set()
        assert profile.concurrency == 4
        assert profile.profiles[(box1_system.most_expensive().name,)] == counts


# ---------------------------------------------------------------------------
# DOT warm start
# ---------------------------------------------------------------------------

class TestWarmStart:
    def test_warm_start_from_l0_equals_cold(self, small_objects, box1_system,
                                            small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        profiles = WorkloadProfiler(small_objects, box1_system, estimator).profile(
            small_workload, mode="estimate"
        )
        optimizer = DOTOptimizer(small_objects, box1_system, estimator)
        cold = optimizer.optimize(small_workload, profiles)
        warm = optimizer.optimize(
            small_workload, profiles, initial_layout=optimizer.initial_layout()
        )
        assert warm.layout == cold.layout
        assert warm.toc_cents == cold.toc_cents

    def test_warm_start_from_optimum_keeps_it(self, small_objects, box1_system,
                                              small_catalog, small_workload):
        estimator = fresh_estimator(small_catalog)
        profiles = WorkloadProfiler(small_objects, box1_system, estimator).profile(
            small_workload, mode="estimate"
        )
        optimizer = DOTOptimizer(small_objects, box1_system, estimator)
        cold = optimizer.optimize(small_workload, profiles)
        warm = optimizer.optimize(small_workload, profiles, initial_layout=cold.layout)
        assert warm.feasible
        assert warm.toc_cents <= cold.toc_cents


# ---------------------------------------------------------------------------
# The epoch loop
# ---------------------------------------------------------------------------

class TestOnlineAdvisor:
    def test_no_drift_never_retiers(self, small_objects, box1_system, small_catalog,
                                    small_workload):
        """A workload that never changes must provision once and only once."""
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
        )
        result = advisor.run([small_workload] * 6)
        assert result.num_epochs == 6
        assert result.retier_epochs == ()
        assert result.total_migration_cents == 0.0
        first_layout = result.records[0].layout
        assert all(record.layout == first_layout for record in result.records)
        assert all(not record.reoptimized for record in result.records[1:])

    def test_crossfade_beats_frozen_net_of_migration(self, small_objects, box1_system,
                                                     small_catalog, two_phase_generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
        )
        online = advisor.run(two_phase_generator.epochs())
        frozen = advisor.evaluate_frozen(
            two_phase_generator.epochs(), online.records[0].layout
        )
        assert online.num_epochs == two_phase_generator.num_epochs
        assert online.min_psr >= 0.5
        assert online.cumulative_cost_cents <= frozen.cumulative_cost_cents
        # Cumulative cost is monotone in epochs.
        running = [record.cumulative_cost_cents for record in online.records]
        assert running == sorted(running)

    def test_run_is_deterministic(self, small_objects, box1_system, small_catalog,
                                  two_phase_generator):
        def run_once():
            advisor = OnlineAdvisor(
                small_objects, box1_system, fresh_estimator(small_catalog),
                sla=RelativeSLA(0.5),
            )
            return advisor.run(two_phase_generator.epochs())

        first, second = run_once(), run_once()
        assert first.describe() == second.describe()
        assert first.cumulative_cost_cents == second.cumulative_cost_cents

    def test_migration_charges_enter_cumulative_cost(self, small_objects, box1_system,
                                                     small_catalog, two_phase_generator):
        advisor = OnlineAdvisor(
            small_objects, box1_system, fresh_estimator(small_catalog),
            sla=RelativeSLA(0.5),
            thresholds=DriftThresholds(share_threshold=0.05),
        )
        online = advisor.run(two_phase_generator.epochs())
        toc_only = sum(record.toc_cents for record in online.records)
        assert online.cumulative_cost_cents == pytest.approx(
            toc_only + online.total_migration_cents
        )


# ---------------------------------------------------------------------------
# Epoch-loop stress (CI only)
# ---------------------------------------------------------------------------

@pytest.mark.slow
def test_long_diurnal_epoch_loop_stress(small_objects, box1_system, small_catalog,
                                        small_workload, lookup_query, write_query):
    """A 48-epoch diurnal loop: the controller must stay feasible, keep the
    SLA, keep cumulative cost monotone and re-tier a bounded number of times
    (no thrashing: the cooldown caps re-tiers at one per two epochs)."""
    oltp_style = small_workload.with_stream((lookup_query, write_query) * 4,
                                            name="night-oltp")
    generator = DriftingWorkloadGenerator(
        [WorkloadPhase("day", small_workload), WorkloadPhase("night", oltp_style)],
        PhaseSchedule.diurnal(48, period=12, phase_names=("day", "night")),
        seed=5,
    )
    advisor = OnlineAdvisor(
        small_objects, box1_system, fresh_estimator(small_catalog),
        sla=RelativeSLA(0.5),
        thresholds=DriftThresholds(share_threshold=0.05, min_epochs_between=2),
    )
    result = advisor.run(generator.epochs())
    assert result.num_epochs == 48
    assert result.min_psr >= 0.5
    running = [record.cumulative_cost_cents for record in result.records]
    assert running == sorted(running)
    assert 1 <= len(result.retier_epochs) <= 24
