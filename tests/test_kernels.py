"""The chunk-scoring kernel layer and the shared-memory estimate tables.

Two contracts are under test:

* **Kernel exactness** -- the ``"compiled"`` kernel (numba-jitted when numba
  is importable, numpy-backed fallback otherwise) must be *bitwise* identical
  to the ``"numpy"`` reference on every primitive and end to end: the
  three-path ES equality (scalar / batch / parallel) extends to a fourth
  path with ``==``, never ``approx``.
* **Shared-table transport** -- ``SharedEstimateTables`` must round-trip the
  coordinator's dense response tables through shared memory byte for byte,
  refuse ineligible evaluators (OLTP, partially warmed), and an evaluator
  with installed views must score chunks identically to the one that warmed
  its own tables.
"""

import numpy as np
import pytest

from repro.core.batch_eval import (
    BatchEvalStats,
    BatchLayoutEvaluator,
    UnsupportedBatchEvaluation,
    iter_assignment_chunks,
)
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.kernels import (
    HAVE_NUMBA,
    KERNEL_NAMES,
    describe_kernels,
    get_kernel,
)
from repro.core.parallel_search import SearchProgress, _ShardOutcome
from repro.core.shm_tables import SharedEstimateTables
from repro.dbms.executor import WorkloadEstimator
from repro.exceptions import ConfigurationError
from repro.workloads.workload import Workload

WORKERS = 2


def fresh_estimator(catalog):
    return WorkloadEstimator(catalog, noise=0.0, buffer_pool=None, seed=7)


def make_evaluator(objects, system, catalog, workload, **kwargs):
    return BatchLayoutEvaluator(
        objects, system, fresh_estimator(catalog), workload, **kwargs
    )


@pytest.fixture
def oltp_workload(scan_query, lookup_query, write_query):
    return Workload(
        name="tiny-oltp",
        kind="oltp",
        transaction_mix=((scan_query, 1.0), (lookup_query, 8.0), (write_query, 3.0)),
        concurrency=50,
        measured_transaction_fraction=0.4,
    )


# ---------------------------------------------------------------------------
# Kernel resolution
# ---------------------------------------------------------------------------

class TestKernelResolution:
    def test_numpy_kernel_is_the_reference(self):
        kernel = get_kernel("numpy")
        assert kernel.requested == kernel.name == "numpy"
        assert kernel.fallback_reason is None
        assert not kernel.compiled

    def test_compiled_kernel_resolves_or_falls_back(self):
        kernel = get_kernel("compiled")
        assert kernel.requested == "compiled"
        if HAVE_NUMBA:
            assert kernel.name == "compiled"
            assert kernel.compiled
            assert kernel.fallback_reason is None
        else:
            # The supported no-numba configuration: numpy-backed, exact,
            # with the downgrade documented -- never an ImportError.
            assert kernel.name == "numpy"
            assert not kernel.compiled
            assert "numba" in kernel.fallback_reason

    def test_kernels_are_cached_singletons(self):
        assert get_kernel("numpy") is get_kernel("numpy")
        assert get_kernel("compiled") is get_kernel("compiled")

    def test_unknown_kernel_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError):
            get_kernel("avx512")

    def test_describe_kernels_reports_capabilities(self):
        report = describe_kernels()
        assert report["have_numba"] is HAVE_NUMBA
        assert set(KERNEL_NAMES) == {"numpy", "compiled"}
        if HAVE_NUMBA:
            assert report["compiled_backend"] == "compiled"
            assert report["compiled_fallback_reason"] is None
        else:
            assert report["compiled_backend"] == "numpy"
            assert report["compiled_fallback_reason"]


# ---------------------------------------------------------------------------
# Primitive-level bitwise equality (numpy vs compiled)
# ---------------------------------------------------------------------------

class TestPrimitiveEquality:
    """Each compiled primitive must reproduce the numpy reference bit for bit.

    Without numba the compiled kernel serves the numpy functions and these
    pass trivially; with numba (the CI extra) they pin the jitted loops to
    the reference's IEEE 754 operation order.
    """

    @pytest.fixture
    def operands(self):
        rng = np.random.default_rng(17)
        batch, num_objects, num_classes = 257, 9, 3
        return {
            "var_assign": rng.integers(0, num_classes, size=(batch, num_objects)).astype(
                np.int64
            ),
            "num_classes": num_classes,
            "sizes": rng.uniform(0.1, 40.0, size=num_objects),
            "pinned_classes": np.array([0, 2, 1], dtype=np.int64),
            "pinned_sizes": rng.uniform(1.0, 5.0, size=3),
            "prices": rng.uniform(0.001, 0.2, size=num_classes),
        }

    def test_accumulate_space_bitwise(self, operands):
        reference = get_kernel("numpy")
        candidate = get_kernel("compiled")
        args = (operands["var_assign"], operands["num_classes"], operands["sizes"],
                operands["pinned_classes"], operands["pinned_sizes"])
        assert (reference.accumulate_space(*args) == candidate.accumulate_space(*args)).all()

    def test_layout_cost_bitwise(self, operands):
        reference = get_kernel("numpy")
        candidate = get_kernel("compiled")
        used = reference.accumulate_space(
            operands["var_assign"], operands["num_classes"], operands["sizes"],
            operands["pinned_classes"], operands["pinned_sizes"],
        )
        assert (
            reference.layout_cost(used, operands["prices"])
            == candidate.layout_cost(used, operands["prices"])
        ).all()

    def test_signature_codes_exact(self, operands):
        reference = get_kernel("numpy")
        candidate = get_kernel("compiled")
        var_columns = np.array([1, 4, 7], dtype=np.int64)
        weights = np.array([9, 3, 1], dtype=np.int64)
        expected = reference.signature_codes(operands["var_assign"], var_columns, weights)
        got = candidate.signature_codes(operands["var_assign"], var_columns, weights)
        assert expected.dtype == got.dtype == np.int64
        assert (expected == got).all()

    def test_empty_signature_is_code_zero(self, operands):
        for name in KERNEL_NAMES:
            codes = get_kernel(name).signature_codes(
                operands["var_assign"],
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
            assert (codes == 0).all()

    @pytest.mark.parametrize("cap", [float("nan"), 55.0])
    def test_add_responses_bitwise(self, operands, cap):
        rng = np.random.default_rng(23)
        table = rng.uniform(1.0, 100.0, size=27)
        slots = rng.integers(0, 27, size=257).astype(np.int64)
        results = {}
        for name in KERNEL_NAMES:
            total_ms = np.zeros(257)
            performance_ok = np.ones(257, dtype=bool)
            get_kernel(name).add_responses(total_ms, table, slots, cap, performance_ok)
            results[name] = (total_ms, performance_ok)
        assert (results["numpy"][0] == results["compiled"][0]).all()
        assert (results["numpy"][1] == results["compiled"][1]).all()
        if cap == cap:
            assert not results["numpy"][1].all()  # the finite cap must actually bite
        else:
            assert results["numpy"][1].all()  # nan cap means uncapped


# ---------------------------------------------------------------------------
# Fourth-path end-to-end identity
# ---------------------------------------------------------------------------

class TestFourPathIdentity:
    """Scalar, batch-numpy, batch-compiled and parallel-compiled must agree
    bitwise -- the PR's extension of the long-standing three-path contract."""

    def assert_identical(self, reference, candidate):
        assert candidate.feasible == reference.feasible
        assert candidate.toc_cents == reference.toc_cents
        assert candidate.layout == reference.layout

    def test_dss_four_paths(self, small_objects, box1_system, small_catalog,
                            small_workload):
        scalar = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=False
        ).search(small_workload)
        batch_numpy = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=True,
            kernel="numpy",
        ).search(small_workload)
        batch_compiled = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=True,
            kernel="compiled",
        ).search(small_workload)
        parallel_compiled = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=True,
            workers=WORKERS, kernel="compiled",
        ).search(small_workload)
        self.assert_identical(scalar, batch_numpy)
        self.assert_identical(scalar, batch_compiled)
        self.assert_identical(scalar, parallel_compiled)

    def test_oltp_compiled_matches_scalar(self, small_objects, box1_system,
                                          small_catalog, oltp_workload):
        scalar = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=False
        ).search(oltp_workload)
        compiled = ExhaustiveSearch(
            small_objects, box1_system, fresh_estimator(small_catalog), batch=True,
            kernel="compiled",
        ).search(oltp_workload)
        self.assert_identical(scalar, compiled)

    def test_chunk_scores_identical_across_kernels(self, small_objects, box1_system,
                                                   small_catalog, small_workload):
        rows = np.concatenate(
            [chunk for _, chunk in
             iter_assignment_chunks(len(small_objects), 3, 16)]
        )
        evaluations = {}
        for name in KERNEL_NAMES:
            evaluator = make_evaluator(
                small_objects, box1_system, small_catalog, small_workload, kernel=name
            )
            evaluations[name] = evaluator.evaluate_chunk(rows)
        reference, candidate = evaluations["numpy"], evaluations["compiled"]
        assert (reference.toc_cents == candidate.toc_cents).all()
        assert (reference.capacity_ok == candidate.capacity_ok).all()
        assert (reference.feasible == candidate.feasible).all()


# ---------------------------------------------------------------------------
# Shared-memory estimate tables
# ---------------------------------------------------------------------------

class TestSharedTables:
    def warmed_evaluator(self, small_objects, box1_system, small_catalog,
                         small_workload):
        evaluator = make_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        assert evaluator.warm_signatures()
        return evaluator

    def test_roundtrip_is_bitwise(self, small_objects, box1_system, small_catalog,
                                  small_workload):
        evaluator = self.warmed_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        dense = evaluator.dense_response_tables()
        with SharedEstimateTables.build(evaluator) as tables:
            assert tables.num_tables == len(dense)
            assert tables.nbytes == sum(arr.nbytes for arr in dense.values())
            attached = SharedEstimateTables.attach(tables.descriptor())
            try:
                views = attached.views()
                assert set(views) == set(dense)
                for name, arr in dense.items():
                    assert (views[name] == arr).all()
                    assert not views[name].flags.writeable
            finally:
                attached.close()

    def test_installed_views_score_identically(self, small_objects, box1_system,
                                               small_catalog, small_workload):
        warmed = self.warmed_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        rows = np.concatenate(
            [chunk for _, chunk in
             iter_assignment_chunks(len(small_objects), 3, 16)]
        )
        reference = warmed.evaluate_chunk(rows)
        with SharedEstimateTables.build(warmed) as tables:
            attached = SharedEstimateTables.attach(tables.descriptor())
            try:
                cold = make_evaluator(
                    small_objects, box1_system, small_catalog, small_workload
                )
                cold.install_dense_tables(attached.views())
                candidate = cold.evaluate_chunk(rows)
                assert (reference.toc_cents == candidate.toc_cents).all()
                assert (reference.feasible == candidate.feasible).all()
                # Installed tables answer from shared memory: no estimator
                # traffic, and the TOC floor bound stays available.
                assert cold.stats.estimator_calls == 0
                assert cold.toc_floor_factor() > 0.0
            finally:
                attached.close()

    def test_unwarmed_evaluator_is_refused(self, small_objects, box1_system,
                                           small_catalog, small_workload):
        evaluator = make_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        with pytest.raises(UnsupportedBatchEvaluation):
            evaluator.dense_response_tables()

    def test_oltp_evaluator_is_refused(self, small_objects, box1_system,
                                       small_catalog, oltp_workload):
        evaluator = make_evaluator(
            small_objects, box1_system, small_catalog, oltp_workload
        )
        evaluator.warm_signatures()
        with pytest.raises(UnsupportedBatchEvaluation):
            SharedEstimateTables.build(evaluator)

    def test_install_validates_shapes_and_coverage(self, small_objects, box1_system,
                                                   small_catalog, small_workload):
        evaluator = self.warmed_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        views = evaluator.dense_response_tables()
        target = make_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        name = next(iter(views))
        with pytest.raises(UnsupportedBatchEvaluation):
            target.install_dense_tables(
                {**views, name: views[name][:-1]}  # truncated table
            )
        missing = dict(views)
        del missing[name]
        with pytest.raises(UnsupportedBatchEvaluation):
            target.install_dense_tables(missing)

    def test_unlink_destroys_the_segment(self, small_objects, box1_system,
                                         small_catalog, small_workload):
        evaluator = self.warmed_evaluator(
            small_objects, box1_system, small_catalog, small_workload
        )
        tables = SharedEstimateTables.build(evaluator)
        descriptor = tables.descriptor()
        tables.unlink()
        tables.unlink()  # idempotent
        with pytest.raises(FileNotFoundError):
            SharedEstimateTables.attach(descriptor)


# ---------------------------------------------------------------------------
# Worker cache-delta folding
# ---------------------------------------------------------------------------

class TestCacheDeltaFolding:
    """Worker cache hit/miss deltas are measured per ``(shard_id, attempt)``
    and folded exactly once: a retried (or stolen-and-raced) shard whose
    first outcome already landed must not double-count."""

    @staticmethod
    def outcome(shard_id, hits, misses):
        stats = BatchEvalStats(cache_hits=hits, cache_misses=misses)
        return _ShardOutcome(
            shard_id=shard_id, best_toc=float("inf"), best_index=-1,
            best_row=None, evaluated=0, stats=stats,
        )

    def test_duplicate_shard_outcomes_fold_once(self):
        progress = SearchProgress(total_shards=2)
        progress.record(self.outcome(0, hits=5, misses=2))
        progress.record(self.outcome(0, hits=7, misses=9))  # late duplicate attempt
        progress.record(self.outcome(1, hits=3, misses=1))
        assert progress.stats.cache_hits == 8
        assert progress.stats.cache_misses == 3

    def test_stats_merge_folds_boot_and_steal_fields(self):
        total = BatchEvalStats()
        total.merge(BatchEvalStats(build_s=0.5, warm_s=0.25, attach_s=0.01, steals=3,
                                   cache_hits=10, cache_misses=4))
        total.merge(BatchEvalStats(build_s=0.5, warm_s=0.25, attach_s=0.02, steals=1,
                                   cache_hits=2, cache_misses=6))
        assert total.build_s == 1.0
        assert total.warm_s == 0.5
        assert total.attach_s == pytest.approx(0.03)
        assert total.steals == 4
        assert total.cache_hits == 12
        assert total.cache_misses == 10
