"""Bounded work queue, admission control and fair-share scheduling.

The service's control plane treats tenant work as pure data: one
:class:`WorkItem` per (tenant, epoch), offered to the
:class:`AdmissionController` every scheduler tick and drained by the
supervisor's workers through the :class:`WorkQueue`.  Three properties the
property tests pin:

* **Backpressure is explicit.**  The queue is bounded; an offer that does
  not fit is *shed with a reason* (``queue_full``, ``budget_exhausted``,
  ``shutting_down``) instead of blocking or growing without bound.  Shed
  work is not lost -- the daemon re-offers a tenant's next epoch every tick
  until it is admitted, so overload delays work but never skips it.
* **Scheduling is fair-share.**  :meth:`WorkQueue.take` serves tenants
  deficit-round-robin in registration order: every tenant with queued work
  is served within one full rotation, so no tenant starves however noisy
  its neighbours are.
* **Decisions are deterministic.**  Admission reads only declared costs,
  configured budgets and the queue's structural state -- replaying the same
  offer sequence (same seed, same faults) reproduces the same shed
  decisions bit for bit, which is what makes chaos runs comparable to
  fault-free runs.

Budgets are charged in *declared* cost units at admission time (the daemon
declares its smoothed per-step seconds) and settled to actual seconds when
the step commits, so accepted-at-admission work never exceeds the
configured budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import (
    AdmissionRejectedError,
    ConfigurationError,
    ServiceShutdownError,
    TenantBudgetExceededError,
)

#: Shed reasons, exactly as counted under ``service.shed.<reason>``.
SHED_QUEUE_FULL = "queue_full"
SHED_BUDGET_EXHAUSTED = "budget_exhausted"
SHED_SHUTTING_DOWN = "shutting_down"
SHED_REASONS = (SHED_QUEUE_FULL, SHED_BUDGET_EXHAUSTED, SHED_SHUTTING_DOWN)


@dataclass(frozen=True)
class WorkItem:
    """One schedulable unit: advance one tenant's loop by one epoch."""

    tenant_id: str
    epoch: int
    #: Declared cost (seconds) reserved against the tenant's budget at
    #: admission; settled to the measured cost when the step commits.
    cost_units: float = 0.0
    #: Retry ordinal (0 on first dispatch; bumped when a worker dies holding
    #: the item and the supervisor requeues it).
    attempt: int = 0
    enqueued_tick: int = 0

    def to_dict(self) -> Dict[str, object]:
        """Pure-data form for snapshots."""
        return {
            "tenant_id": self.tenant_id,
            "epoch": self.epoch,
            "cost_units": self.cost_units,
            "attempt": self.attempt,
            "enqueued_tick": self.enqueued_tick,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "WorkItem":
        """Rebuild an item from its snapshot form."""
        return cls(
            tenant_id=str(payload["tenant_id"]),
            epoch=int(payload["epoch"]),
            cost_units=float(payload.get("cost_units", 0.0)),
            attempt=int(payload.get("attempt", 0)),
            enqueued_tick=int(payload.get("enqueued_tick", 0)),
        )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission offer."""

    admitted: bool
    reason: str = "admitted"


@dataclass
class WorkQueue:
    """A bounded multi-tenant queue drained deficit-round-robin.

    Per-tenant FIFOs preserve epoch order; :meth:`take` rotates over the
    registered tenants from a cursor, serving the first tenant with pending
    work and parking the cursor just past it -- every tenant with queued
    work is served within one full rotation (the no-starvation property).
    ``max_depth`` bounds the *total* queued items across tenants; requeues
    of already-admitted work (a killed worker's in-flight item) bypass the
    bound so supervision can never lose admitted work to backpressure.
    """

    max_depth: int = 8
    _fifos: Dict[str, List[WorkItem]] = field(default_factory=dict)
    _rotation: List[str] = field(default_factory=list)
    _cursor: int = 0
    _depth: int = 0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ConfigurationError("work queue depth must be >= 1")

    def register_tenant(self, tenant_id: str) -> None:
        """Add a tenant to the fair-share rotation (idempotent)."""
        if tenant_id not in self._fifos:
            self._fifos[tenant_id] = []
            self._rotation.append(tenant_id)

    @property
    def depth(self) -> int:
        """Total queued items across all tenants."""
        return self._depth

    def slots_free(self, burst_slots: int = 0) -> int:
        """Capacity left after an injected overload burst occupies slots."""
        return max(0, self.max_depth - max(0, burst_slots) - self._depth)

    def push(self, item: WorkItem) -> None:
        """Enqueue an already-admitted item (capacity-exempt; see class doc)."""
        self.register_tenant(item.tenant_id)
        self._fifos[item.tenant_id].append(item)
        self._depth += 1

    def take(self) -> Optional[WorkItem]:
        """The next item in fair-share order, or ``None`` when empty."""
        if self._depth == 0 or not self._rotation:
            return None
        size = len(self._rotation)
        for offset in range(size):
            index = (self._cursor + offset) % size
            fifo = self._fifos[self._rotation[index]]
            if fifo:
                self._cursor = (index + 1) % size
                self._depth -= 1
                return fifo.pop(0)
        return None

    def contents(self) -> List[WorkItem]:
        """Every queued item in rotation order (for snapshots)."""
        return [item for tenant in self._rotation for item in self._fifos[tenant]]

    def snapshot(self) -> Dict[str, object]:
        """Pure-data form of the queue for the service snapshot."""
        return {
            "cursor": self._cursor,
            "items": [item.to_dict() for item in self.contents()],
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Re-seed the queue from a snapshot (tenants must be registered)."""
        self._cursor = int(payload.get("cursor", 0)) % max(1, len(self._rotation))
        for raw in payload.get("items", []):
            self.push(WorkItem.from_dict(raw))


class AdmissionController:
    """Budget- and capacity-gated admission in declared cost units.

    One controller fronts the service's :class:`WorkQueue`.  Offers are
    checked in a fixed order -- draining, tenant budget, queue capacity --
    so the shed reason is deterministic; admitted items reserve their
    declared cost against the tenant budget immediately and
    :meth:`settle` trues the reservation up to the measured seconds when
    the step commits.
    """

    def __init__(self, queue: WorkQueue):
        self.queue = queue
        self._budget_s: Dict[str, Optional[float]] = {}
        self._used_s: Dict[str, float] = {}

    def register_tenant(self, tenant_id: str, budget_s: Optional[float] = None) -> None:
        """Register a tenant and its (optional) wall-clock budget."""
        if budget_s is not None and budget_s < 0:
            raise ConfigurationError("tenant budget cannot be negative")
        self.queue.register_tenant(tenant_id)
        self._budget_s[tenant_id] = budget_s
        self._used_s.setdefault(tenant_id, 0.0)

    def used_s(self, tenant_id: str) -> float:
        """Budget units consumed (reservations plus settlements) so far."""
        return self._used_s.get(tenant_id, 0.0)

    def budget_s(self, tenant_id: str) -> Optional[float]:
        """The tenant's configured budget (``None`` = unlimited)."""
        return self._budget_s.get(tenant_id)

    def decide(self, item: WorkItem, burst_slots: int = 0,
               draining: bool = False) -> AdmissionDecision:
        """Score one offer without changing any state."""
        if draining:
            return AdmissionDecision(False, SHED_SHUTTING_DOWN)
        budget = self._budget_s.get(item.tenant_id)
        if budget is not None and self.used_s(item.tenant_id) + item.cost_units > budget:
            return AdmissionDecision(False, SHED_BUDGET_EXHAUSTED)
        if self.queue.slots_free(burst_slots) == 0:
            return AdmissionDecision(False, SHED_QUEUE_FULL)
        return AdmissionDecision(True)

    def offer(self, item: WorkItem, burst_slots: int = 0,
              draining: bool = False) -> AdmissionDecision:
        """Admit (reserve + enqueue) or shed one item."""
        decision = self.decide(item, burst_slots=burst_slots, draining=draining)
        if decision.admitted:
            self._used_s[item.tenant_id] = self.used_s(item.tenant_id) + item.cost_units
            self.queue.push(item)
        return decision

    def require(self, item: WorkItem, burst_slots: int = 0,
                draining: bool = False) -> None:
        """Admit or raise the typed error matching the shed reason."""
        decision = self.offer(item, burst_slots=burst_slots, draining=draining)
        if decision.admitted:
            return
        if decision.reason == SHED_BUDGET_EXHAUSTED:
            raise TenantBudgetExceededError(
                f"tenant {item.tenant_id!r} exhausted its budget "
                f"({self.used_s(item.tenant_id):.3f}s used of "
                f"{self._budget_s.get(item.tenant_id)}s)",
                tenant_id=item.tenant_id,
                used_s=self.used_s(item.tenant_id),
                budget_s=self._budget_s.get(item.tenant_id) or 0.0,
            )
        if decision.reason == SHED_SHUTTING_DOWN:
            raise ServiceShutdownError(
                f"service is draining; rejected work for tenant {item.tenant_id!r}"
            )
        raise AdmissionRejectedError(
            f"work queue full; shed epoch {item.epoch} of tenant {item.tenant_id!r}",
            tenant_id=item.tenant_id,
            reason=decision.reason,
        )

    def settle(self, item: WorkItem, actual_s: float) -> None:
        """Replace an admitted item's reservation with its measured cost."""
        self._used_s[item.tenant_id] = (
            self.used_s(item.tenant_id) - item.cost_units + max(0.0, actual_s)
        )

    def snapshot(self) -> Dict[str, float]:
        """Per-tenant consumed budget units (for the service snapshot)."""
        return dict(self._used_s)

    def restore(self, payload: Dict[str, float]) -> None:
        """Restore consumed budget units from a snapshot."""
        for tenant_id, used in payload.items():
            self._used_s[tenant_id] = float(used)
