"""Worker supervision: heartbeats, crash detection, restart with backoff.

The service runs tenant steps on a pool of *logical* workers driven by the
daemon's tick loop -- real process isolation already lives one layer down
(the parallel search engine kills and replaces genuine OS processes); what
the control plane needs from its pool is deterministic, replayable
supervision semantics, and a cooperative pool is the only way to get chaos
runs that converge bitwise to their fault-free twins.  The protocol is the
real one regardless:

* a worker **heartbeats** every tick it is scheduled; an injected
  ``worker_kill`` crashes it *before its in-flight step commits* (the WAL
  commit record is written after execution, so a killed step simply never
  happened) and its heartbeat stops;
* the **watchdog** declares a worker dead once its heartbeat is
  ``heartbeat_timeout_ticks`` stale, requeues nothing itself (the daemon
  requeued the lost item at kill time) and schedules a **restart with
  exponential backoff** (``restart_backoff_ticks * 2^(restarts-1)``);
* a worker past ``max_restarts`` is **retired** -- capacity shrinks rather
  than flaps, and the daemon reports it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import ConfigurationError

#: Worker states.
IDLE = "idle"
BUSY = "busy"
DEAD = "dead"
BACKOFF = "backoff"
RETIRED = "retired"


@dataclass
class Worker:
    """One logical worker slot of the service's pool."""

    worker_id: int
    state: str = IDLE
    restarts: int = 0
    last_heartbeat_tick: int = -1
    #: First tick a restarting worker may serve again.
    available_at_tick: int = 0

    def heartbeat(self, tick: int) -> None:
        """Record liveness for the watchdog."""
        self.last_heartbeat_tick = tick


class Supervisor:
    """Owns the worker pool and its failure/restart lifecycle."""

    def __init__(self, workers: int = 2, heartbeat_timeout_ticks: int = 1,
                 max_restarts: int = 3, restart_backoff_ticks: int = 1):
        if workers < 1:
            raise ConfigurationError("the service needs at least one worker")
        if heartbeat_timeout_ticks < 1:
            raise ConfigurationError("heartbeat timeout must be >= 1 tick")
        self.workers = [Worker(worker_id=i) for i in range(workers)]
        self.heartbeat_timeout_ticks = heartbeat_timeout_ticks
        self.max_restarts = max_restarts
        self.restart_backoff_ticks = restart_backoff_ticks
        self.kills = 0
        self.restarts = 0
        self.retired = 0

    # -- scheduling ----------------------------------------------------
    def available(self, tick: int) -> List[Worker]:
        """Workers that may serve this tick (backoffs that elapsed rejoin)."""
        ready = []
        for worker in self.workers:
            if worker.state == BACKOFF and tick >= worker.available_at_tick:
                worker.state = IDLE
            if worker.state == IDLE:
                worker.heartbeat(tick)
                ready.append(worker)
        return ready

    def dispatch(self, worker: Worker) -> None:
        """Mark a worker busy with one step."""
        worker.state = BUSY

    def complete(self, worker: Worker, tick: int) -> None:
        """A step committed; the worker returns to the pool."""
        worker.state = IDLE
        worker.heartbeat(tick)

    # -- failures ------------------------------------------------------
    def kill(self, worker: Worker, tick: int) -> None:
        """Crash one worker mid-step (its heartbeat stops here)."""
        worker.state = DEAD
        self.kills += 1

    def watchdog(self, tick: int) -> List[str]:
        """Detect dead workers by stale heartbeat; schedule restarts.

        Returns human-readable incidents for the service provenance trail.
        """
        incidents: List[str] = []
        for worker in self.workers:
            if worker.state != DEAD:
                continue
            if tick - worker.last_heartbeat_tick < self.heartbeat_timeout_ticks:
                continue
            worker.restarts += 1
            if worker.restarts > self.max_restarts:
                worker.state = RETIRED
                self.retired += 1
                incidents.append(
                    f"tick {tick}: worker {worker.worker_id} exceeded "
                    f"{self.max_restarts} restarts; retired"
                )
                continue
            backoff = self.restart_backoff_ticks * (2 ** (worker.restarts - 1))
            worker.state = BACKOFF
            worker.available_at_tick = tick + backoff
            self.restarts += 1
            incidents.append(
                f"tick {tick}: worker {worker.worker_id} heartbeat lost; "
                f"restart {worker.restarts}/{self.max_restarts} "
                f"after {backoff}-tick backoff"
            )
        return incidents

    # -- introspection ---------------------------------------------------
    @property
    def alive(self) -> int:
        """Workers not permanently retired."""
        return sum(1 for worker in self.workers if worker.state != RETIRED)

    def states(self) -> Dict[int, str]:
        """Current state per worker id."""
        return {worker.worker_id: worker.state for worker in self.workers}

    def snapshot(self) -> Dict[str, object]:
        """Pure-data form for the service snapshot."""
        return {
            "kills": self.kills,
            "restarts": self.restarts,
            "retired": self.retired,
            "workers": [
                {
                    "worker_id": worker.worker_id,
                    "state": worker.state,
                    "restarts": worker.restarts,
                    "last_heartbeat_tick": worker.last_heartbeat_tick,
                    "available_at_tick": worker.available_at_tick,
                }
                for worker in self.workers
            ],
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Restore pool counters and per-worker lifecycle state.

        A worker that was ``busy`` or ``dead`` at snapshot time comes back
        ``idle``: the process restart already lost whatever it held, and
        the journal decides which steps actually committed.
        """
        self.kills = int(payload.get("kills", 0))
        self.restarts = int(payload.get("restarts", 0))
        self.retired = int(payload.get("retired", 0))
        by_id = {worker.worker_id: worker for worker in self.workers}
        for raw in payload.get("workers", []):
            worker = by_id.get(int(raw.get("worker_id", -1)))
            if worker is None:
                continue
            state = str(raw.get("state", IDLE))
            worker.state = state if state in (RETIRED, BACKOFF) else IDLE
            worker.restarts = int(raw.get("restarts", 0))
            worker.last_heartbeat_tick = int(raw.get("last_heartbeat_tick", -1))
            worker.available_at_tick = int(raw.get("available_at_tick", 0))
