"""Checksummed write-ahead journal and snapshots for the advisor service.

Durability follows the command-logging school: the journal records *what
happened* (tenant registrations, committed epochs, sheds, kills, breaker
transitions) as pure data, one JSONL record per line, each carrying a
monotonically increasing ``seq`` and a SHA-256 checksum over its canonical
form.  Because every tenant's epoch stream is rebuilt deterministically
from its registered spec, recovery re-executes the committed epochs through
the same code path and *verifies* each replayed layout bitwise against the
journaled assignment -- the journal is simultaneously the redo log and the
integrity oracle.

Damage handling mirrors the parallel-search checkpoint conventions:

* a torn tail (the crash interrupted the last ``write``) is detected by the
  checksum and sliced off with a note -- everything before it replays;
* a corrupt record *followed by valid ones* (bit rot mid-file) or a ``seq``
  gap is unrecoverable and raises
  :class:`~repro.exceptions.CheckpointCorruptionError`;
* snapshots are written atomically (tmp + rename), carry their own
  checksum, and a corrupt snapshot is quarantined aside (``.corrupt``) so
  recovery falls back to the previous one instead of crashing on it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import CheckpointCorruptionError

#: Bump when the journal/snapshot record layout changes incompatibly.
FORMAT_VERSION = 1

JOURNAL_NAME = "journal.jsonl"
SNAPSHOT_PREFIX = "snapshot-"


def _checksum(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form (checksum field excluded)."""
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class Journal:
    """An append-only, checksummed JSONL write-ahead journal.

    Records are the service's commit points: a state change is durable iff
    its record round-tripped to the journal (``flush`` + ``fsync`` by
    default), and recovery trusts nothing that is not in it.  The file is
    opened lazily on first append so read-only consumers never create one.
    """

    def __init__(self, path: Union[str, Path], sync: bool = True):
        self.path = Path(path)
        self.sync = sync
        self._handle = None
        self._seq = 0

    # -- writing -------------------------------------------------------
    def append(self, kind: str, **payload: object) -> int:
        """Durably append one record; returns its sequence number."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._seq += 1
        record = {
            "format_version": FORMAT_VERSION,
            "seq": self._seq,
            "kind": kind,
            "payload": payload,
        }
        record["checksum"] = _checksum(record)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.sync:
            os.fsync(self._handle.fileno())
        return self._seq

    def resume_at(self, last_seq: int) -> None:
        """Continue appending after recovery replayed up to ``last_seq``."""
        self._seq = last_seq

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    def close(self) -> None:
        """Close the underlying file handle (appends reopen it)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------
    @staticmethod
    def load(path: Union[str, Path]) -> Tuple[List[Dict[str, object]], Optional[str]]:
        """Read and verify a journal; returns ``(records, torn_tail_note)``.

        A checksum/parse failure on the *last* populated region is a torn
        tail (the crash hit mid-write): it is sliced off and reported in
        the note.  A bad record with valid records after it, or a gap in
        the ``seq`` chain, means the file was damaged at rest and raises
        :class:`CheckpointCorruptionError` -- replaying around missing
        history would silently diverge from the pre-crash state.
        """
        path = Path(path)
        if not path.exists():
            return [], None
        records: List[Dict[str, object]] = []
        bad: List[Tuple[int, str]] = []
        for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad.append((lineno, "unparseable line"))
                continue
            if not isinstance(record, dict) or record.get("checksum") != _checksum(record):
                bad.append((lineno, "checksum mismatch"))
                continue
            if bad:
                # A valid record after a bad one: damage mid-file, not a torn
                # tail.  Refuse to replay around the hole.
                lineno_bad, why = bad[0]
                raise CheckpointCorruptionError(
                    f"journal damaged at line {lineno_bad} ({why}) "
                    f"with valid records after it",
                    path=path,
                )
            records.append(record)
        expected = 0
        for record in records:
            expected += 1
            if record.get("seq") != expected:
                raise CheckpointCorruptionError(
                    f"journal sequence broken: expected seq {expected}, "
                    f"found {record.get('seq')!r}",
                    path=path,
                )
        note = None
        if bad:
            note = (
                f"journal tail torn at line {bad[0][0]} ({bad[0][1]}); "
                f"replaying {len(records)} intact records"
            )
        return records, note


class SnapshotStore:
    """Atomic, checksummed snapshots of the service's scheduler state.

    Snapshots bound the blast radius of a torn journal and carry the state
    the journal does not re-derive cheaply: queue contents, consumed budget
    units, breaker circuits and per-tenant cursors/layout assignments (the
    drift reference travels as its per-object I/O counts).  ``save`` writes
    ``snapshot-<seq>.json`` via tmp + rename; ``load_latest`` walks the
    snapshots newest-first and quarantines corrupt ones aside instead of
    failing recovery on them.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def save(self, seq: int, state: Dict[str, object]) -> Path:
        """Atomically persist one snapshot keyed by its journal watermark."""
        self.directory.mkdir(parents=True, exist_ok=True)
        record = {
            "format_version": FORMAT_VERSION,
            "seq": seq,
            "state": state,
        }
        record["checksum"] = _checksum(record)
        path = self.directory / f"{SNAPSHOT_PREFIX}{seq:010d}.json"
        tmp = path.with_suffix(".json.tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def paths(self) -> List[Path]:
        """All snapshot files, oldest first."""
        if not self.directory.exists():
            return []
        return sorted(self.directory.glob(f"{SNAPSHOT_PREFIX}*.json"))

    def load_latest(self) -> Optional[Dict[str, object]]:
        """The newest intact snapshot record, quarantining corrupt ones."""
        for path in reversed(self.paths()):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(record, dict) or record.get("checksum") != _checksum(record):
                    raise CheckpointCorruptionError("snapshot checksum mismatch", path=path)
            except (json.JSONDecodeError, CheckpointCorruptionError):
                quarantine = path.with_suffix(path.suffix + ".corrupt")
                os.replace(path, quarantine)
                continue
            return record
        return None
