"""The supervised multi-tenant advisor daemon.

:class:`AdvisorService` fronts the existing solver/online machinery with a
control plane: tenants register :class:`~repro.service.tenants.TenantSpec`
registrations, a bounded :class:`~repro.service.queue.WorkQueue` admits one
work item per (tenant, epoch) under budgets and backpressure, and a
:class:`~repro.service.supervisor.Supervisor`-owned worker pool advances
each tenant's :class:`~repro.online.controller.OnlineLoop` one epoch per
item.  Everything is driven by a deterministic **tick loop**:

1. the watchdog restarts (with backoff) workers whose heartbeats died;
2. the pump offers every idle tenant's next epoch to admission (injected
   overload bursts occupy queue slots; sheds are counted with reasons and
   re-offered next tick -- overload delays work, never skips it);
3. free workers take queued items deficit-round-robin;
4. injected ``worker_kill`` faults crash workers *before their step
   commits* -- the in-flight item requeues with a bumped attempt;
5. surviving steps execute, settle their budget charge, and **commit** to
   the write-ahead journal (the layout assignment travels in the record);
6. every ``snapshot_every_ticks`` ticks the scheduler state (queue
   contents, consumed budgets, breaker circuits, cursors) snapshots.

Because a killed step never ran (its loop never advanced) and sheds only
delay admission, a chaos-stormed run executes the exact same per-tenant
epoch sequence as a fault-free run -- the chaos recovery lock in the test
suite pins that the final layouts match *bitwise*.  :meth:`recover` rebuilds
a crashed service from journal + snapshots and re-executes committed epochs,
verifying every replayed layout against the journaled assignment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import CheckpointCorruptionError, ConfigurationError
from repro.obs import instrument as obs_instrument
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace
from repro.online.controller import OnlineAdvisor
from repro.resilience.faults import FaultInjector
from repro.service.breaker import BreakerBoard, GuardedFallbackSolver
from repro.service.journal import JOURNAL_NAME, Journal, SnapshotStore
from repro.service.queue import AdmissionController, WorkItem, WorkQueue
from repro.service.supervisor import Supervisor
from repro.service.tenants import TenantRuntime, TenantSpec, build_runtime

LOG = obs_log.get_logger("repro.service")

#: EWMA weight of the newest step measurement in the declared-cost estimate.
_COST_ALPHA = 0.5


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one advisor service instance."""

    workers: int = 2
    queue_depth: int = 8
    heartbeat_timeout_ticks: int = 1
    max_worker_restarts: int = 3
    restart_backoff_ticks: int = 1
    snapshot_every_ticks: int = 8
    breaker_failure_threshold: int = 3
    breaker_cooldown_ticks: int = 4
    #: Dispatch attempts per epoch before the tenant is marked failed.
    max_step_attempts: int = 4
    #: ``fsync`` every journal append (turn off only in benchmarks).
    sync_journal: bool = True


@dataclass(frozen=True)
class TenantStatus:
    """One tenant's summary row in a :class:`ServiceReport`."""

    tenant_id: str
    epochs_committed: int
    num_epochs: int
    done: bool
    exhausted: bool
    failed: bool
    final_assignment: Optional[Dict[str, str]]
    cumulative_cost_cents: float
    provenance: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {
            "tenant_id": self.tenant_id,
            "epochs_committed": self.epochs_committed,
            "num_epochs": self.num_epochs,
            "done": self.done,
            "exhausted": self.exhausted,
            "failed": self.failed,
            "final_assignment": self.final_assignment,
            "cumulative_cost_cents": self.cumulative_cost_cents,
            "provenance": list(self.provenance),
        }


@dataclass(frozen=True)
class ServiceReport:
    """The outcome of one service session (or recovery session)."""

    ticks: int
    tenants: Dict[str, TenantStatus]
    shed: Dict[str, int]
    admitted: int
    completed_epochs: int
    worker_kills: int
    worker_restarts: int
    workers_retired: int
    breaker_trips: int
    breaker_states: Dict[str, str]
    replayed_epochs: int = 0
    recovered: bool = False
    torn_tail_note: Optional[str] = None

    @property
    def all_done(self) -> bool:
        """True when every tenant finished (committed, exhausted or failed)."""
        return all(status.done for status in self.tenants.values())

    def layouts(self) -> Dict[str, Optional[Dict[str, str]]]:
        """Final deployed assignment per tenant (the convergence-lock key)."""
        return {tid: status.final_assignment for tid, status in self.tenants.items()}

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (run records and the example walkthrough use it)."""
        return {
            "ticks": self.ticks,
            "tenants": {tid: status.to_dict() for tid, status in self.tenants.items()},
            "shed": dict(self.shed),
            "admitted": self.admitted,
            "completed_epochs": self.completed_epochs,
            "worker_kills": self.worker_kills,
            "worker_restarts": self.worker_restarts,
            "workers_retired": self.workers_retired,
            "breaker_trips": self.breaker_trips,
            "breaker_states": dict(self.breaker_states),
            "replayed_epochs": self.replayed_epochs,
            "recovered": self.recovered,
            "torn_tail_note": self.torn_tail_note,
        }


@dataclass
class _Assignment:
    """One dispatched (worker, item) pair of the current tick."""

    worker: object
    item: WorkItem


class AdvisorService:
    """A supervised, crash-safe, multi-tenant advisor daemon.

    All state transitions happen inside :meth:`tick`; :meth:`run` drives
    ticks until every tenant finished and wraps the session in the usual
    observability envelope (``service.run`` span, ``service.*`` metrics,
    one run record of kind ``"service"`` when recording is active).
    """

    def __init__(self, state_dir: Union[str, Path],
                 config: Optional[ServiceConfig] = None,
                 fault_injector: Optional[FaultInjector] = None):
        self.state_dir = Path(state_dir)
        self.config = config if config is not None else ServiceConfig()
        self.injector = fault_injector
        self.journal = Journal(self.state_dir / JOURNAL_NAME, sync=self.config.sync_journal)
        self.snapshots = SnapshotStore(self.state_dir / "snapshots")
        self.queue = WorkQueue(max_depth=self.config.queue_depth)
        self.admission = AdmissionController(self.queue)
        self.supervisor = Supervisor(
            workers=self.config.workers,
            heartbeat_timeout_ticks=self.config.heartbeat_timeout_ticks,
            max_restarts=self.config.max_worker_restarts,
            restart_backoff_ticks=self.config.restart_backoff_ticks,
        )
        self.board = BreakerBoard(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_ticks=self.config.breaker_cooldown_ticks,
        )
        self.solver = GuardedFallbackSolver(board=self.board)
        self.tenants: Dict[str, TenantRuntime] = {}
        self.ticks = 0
        self.draining = False
        self.shed_counts: Dict[str, int] = {}
        self.admitted = 0
        self.completed_epochs = 0
        self.replayed_epochs = 0
        self.recovered = False
        self.torn_tail_note: Optional[str] = None
        #: Wall seconds of every committed step (the bench's p99 source).
        self.step_s: List[float] = []

    # -- registration --------------------------------------------------
    def register(self, spec: TenantSpec) -> TenantRuntime:
        """Register one tenant: build its runtime and journal the spec."""
        if self.draining:
            raise ConfigurationError("cannot register tenants on a draining service")
        if spec.tenant_id in self.tenants:
            raise ConfigurationError(f"tenant {spec.tenant_id!r} is already registered")
        runtime = self._admit_tenant(spec)
        self.journal.append("tenant_registered", spec=spec.to_dict())
        LOG.info("service: registered tenant %s (%s, %d epochs, drift=%s)",
                 spec.tenant_id, spec.scenario, spec.num_epochs, spec.drift)
        return runtime

    def _admit_tenant(self, spec: TenantSpec) -> TenantRuntime:
        """Build and wire a tenant runtime without journaling (recovery path)."""
        runtime = build_runtime(spec, self.solver)
        self.tenants[spec.tenant_id] = runtime
        self.admission.register_tenant(spec.tenant_id, budget_s=spec.budget_s)
        return runtime

    # -- explicit (raising) admission ----------------------------------
    def submit_next(self, tenant_id: str) -> WorkItem:
        """Admit the tenant's next epoch or raise the typed shed error.

        The tick loop's pump uses the non-raising :meth:`AdmissionController.
        offer` and simply retries next tick; this is the strict client API
        (:class:`~repro.exceptions.AdmissionRejectedError` and friends).
        """
        runtime = self.tenants.get(tenant_id)
        if runtime is None:
            raise ConfigurationError(f"unknown tenant {tenant_id!r}")
        if runtime.in_flight or runtime.done:
            raise ConfigurationError(
                f"tenant {tenant_id!r} has no admissible next epoch "
                f"(in_flight={runtime.in_flight}, done={runtime.done})"
            )
        item = self._next_item(runtime)
        self.admission.require(item, burst_slots=self._burst_slots(),
                               draining=self.draining)
        runtime.in_flight = True
        self.admitted += 1
        return item

    def _next_item(self, runtime: TenantRuntime) -> WorkItem:
        """The work item for a tenant's cursor epoch, cost pre-declared."""
        return WorkItem(
            tenant_id=runtime.spec.tenant_id,
            epoch=runtime.cursor,
            cost_units=runtime.predicted_step_s,
            attempt=runtime.attempts,
            enqueued_tick=self.ticks,
        )

    def _burst_slots(self) -> int:
        return self.injector.burst_slots(self.ticks) if self.injector else 0

    # -- the tick loop -------------------------------------------------
    @property
    def all_done(self) -> bool:
        """True when no tenant has schedulable work left."""
        return all(runtime.done for runtime in self.tenants.values())

    def tick(self) -> None:
        """Advance the service by one deterministic scheduler tick."""
        self.ticks += 1
        self.board.tick = self.ticks
        registry = obs_metrics.get_metrics()
        registry.counter("service.ticks").inc()

        # 1. Watchdog: restart (or retire) workers whose heartbeats died.
        for incident in self.supervisor.watchdog(self.ticks):
            registry.counter("service.worker_restarts").inc()
            self.journal.append("worker_restarted", tick=self.ticks, incident=incident)
            LOG.info("service: %s", incident)

        # 2. Pump: offer every idle tenant's next epoch to admission.
        if not self.draining:
            self._pump(registry)

        # 3. Dispatch free workers over the queue, fair-share order.
        assignments: List[_Assignment] = []
        for worker in self.supervisor.available(self.ticks):
            item = self.queue.take()
            if item is None:
                break
            self.supervisor.dispatch(worker)
            assignments.append(_Assignment(worker, item))

        # 4. Injected kills crash workers *before* their step commits.
        kills = self.injector.worker_kills(self.ticks) if self.injector else 0
        victims, survivors = assignments[:kills], assignments[kills:]
        for assignment in victims:
            self._kill(assignment, registry)

        # 5. Surviving steps execute and commit.
        for assignment in survivors:
            self._execute(assignment, registry)

        # 6. Periodic snapshot + gauges.
        if self.config.snapshot_every_ticks and (
                self.ticks % self.config.snapshot_every_ticks == 0):
            self.save_snapshot()
        registry.gauge("service.queue_depth").set(self.queue.depth)

    def _pump(self, registry) -> None:
        """Offer one item per idle tenant; count and journal the sheds."""
        burst = self._burst_slots()
        for runtime in self.tenants.values():
            if runtime.in_flight or runtime.done:
                continue
            item = self._next_item(runtime)
            decision = self.admission.offer(item, burst_slots=burst,
                                            draining=self.draining)
            if decision.admitted:
                runtime.in_flight = True
                self.admitted += 1
                registry.counter("service.admitted").inc()
                continue
            self.shed_counts[decision.reason] = self.shed_counts.get(decision.reason, 0) + 1
            registry.counter("service.shed").inc()
            registry.counter(f"service.shed.{decision.reason}").inc()
            self.journal.append("work_shed", tick=self.ticks,
                                tenant_id=item.tenant_id, epoch=item.epoch,
                                reason=decision.reason)
            runtime.note(
                f"tick {self.ticks}: epoch {item.epoch} shed ({decision.reason})"
            )
            if decision.reason == "budget_exhausted":
                runtime.exhausted = True
                runtime.note(
                    f"tick {self.ticks}: budget exhausted "
                    f"({self.admission.used_s(item.tenant_id):.3f}s of "
                    f"{self.admission.budget_s(item.tenant_id)}s); tenant stopped"
                )
                LOG.warning("service: tenant %s stopped (budget exhausted)",
                            item.tenant_id)

    def _kill(self, assignment: _Assignment, registry) -> None:
        """Crash one dispatched worker; requeue its uncommitted item."""
        item = assignment.item
        self.supervisor.kill(assignment.worker, self.ticks)
        registry.counter("service.worker_kills").inc()
        self.journal.append("worker_killed", tick=self.ticks,
                            worker_id=assignment.worker.worker_id,
                            tenant_id=item.tenant_id, epoch=item.epoch,
                            attempt=item.attempt)
        runtime = self.tenants[item.tenant_id]
        runtime.note(
            f"tick {self.ticks}: worker {assignment.worker.worker_id} killed "
            f"holding epoch {item.epoch} (attempt {item.attempt}); requeued"
        )
        LOG.info("service: worker %d killed holding %s epoch %d",
                 assignment.worker.worker_id, item.tenant_id, item.epoch)
        self._requeue(runtime, item, registry)

    def _requeue(self, runtime: TenantRuntime, item: WorkItem, registry) -> None:
        """Requeue an admitted-but-uncommitted item, bounding its attempts."""
        runtime.attempts = item.attempt + 1
        if runtime.attempts >= self.config.max_step_attempts:
            runtime.failed = True
            runtime.in_flight = False
            runtime.note(
                f"tick {self.ticks}: epoch {item.epoch} exceeded "
                f"{self.config.max_step_attempts} attempts; tenant failed"
            )
            registry.counter("service.step_failures").inc()
            LOG.error("service: tenant %s failed (epoch %d retry bound)",
                      runtime.spec.tenant_id, item.epoch)
            return
        retry = WorkItem(tenant_id=item.tenant_id, epoch=item.epoch,
                         cost_units=item.cost_units, attempt=runtime.attempts,
                         enqueued_tick=self.ticks)
        self.queue.push(retry)  # capacity-exempt: already admitted

    def _execute(self, assignment: _Assignment, registry) -> None:
        """Run one tenant step to completion and commit it to the journal."""
        item = assignment.item
        runtime = self.tenants[item.tenant_id]
        delay_s = self.injector.solve_delay_s(self.ticks) if self.injector else 0.0
        started = time.perf_counter()
        try:
            record = runtime.loop.step(runtime.epochs[item.epoch])
        except Exception as exc:  # the loop degrades internally; this is rare
            registry.counter("service.step_errors").inc()
            runtime.note(
                f"tick {self.ticks}: epoch {item.epoch} raised "
                f"{type(exc).__name__}: {exc}; retrying"
            )
            self.supervisor.complete(assignment.worker, self.ticks)
            self._requeue(runtime, item, registry)
            return
        actual_s = (time.perf_counter() - started) + delay_s
        if delay_s:
            runtime.note(
                f"tick {self.ticks}: epoch {item.epoch} slowed by injected "
                f"{delay_s:.3f}s solve delay"
            )
        self.admission.settle(item, actual_s)
        self.step_s.append(actual_s)
        runtime.predicted_step_s = (
            actual_s if runtime.predicted_step_s == 0.0
            else (1 - _COST_ALPHA) * runtime.predicted_step_s + _COST_ALPHA * actual_s
        )
        self.journal.append(
            "epoch_committed",
            tick=self.ticks,
            tenant_id=item.tenant_id,
            epoch=item.epoch,
            attempt=item.attempt,
            assignment=record.layout.assignment(),
            toc_cents=record.toc_cents,
            psr=record.psr,
            migrated=record.migrated,
            epoch_cost_cents=record.epoch_cost_cents,
            cumulative_cost_cents=record.cumulative_cost_cents,
            incidents=list(record.incidents),
        )
        runtime.cursor += 1
        runtime.in_flight = False
        runtime.attempts = 0
        for incident in record.incidents:
            runtime.note(f"epoch {item.epoch}: {incident}")
        self.completed_epochs += 1
        registry.counter("service.completed_epochs").inc()
        self.supervisor.complete(assignment.worker, self.ticks)

    # -- durability ----------------------------------------------------
    def save_snapshot(self):
        """Snapshot the scheduler state at the journal's current watermark."""
        state = {
            "tick": self.ticks,
            "draining": self.draining,
            "queue": self.queue.snapshot(),
            "used_budget_s": self.admission.snapshot(),
            "breakers": self.board.snapshot(),
            "supervisor": self.supervisor.snapshot(),
            "counters": {
                "shed": dict(self.shed_counts),
                "admitted": self.admitted,
                "completed_epochs": self.completed_epochs,
            },
            "tenants": {
                tid: {
                    "cursor": runtime.cursor,
                    "attempts": runtime.attempts,
                    "exhausted": runtime.exhausted,
                    "failed": runtime.failed,
                    "predicted_step_s": runtime.predicted_step_s,
                    "provenance": list(runtime.provenance),
                }
                for tid, runtime in self.tenants.items()
            },
        }
        return self.snapshots.save(self.journal.last_seq, state)

    # -- session drivers -----------------------------------------------
    def run(self, max_ticks: Optional[int] = None) -> ServiceReport:
        """Tick until every tenant finished (or ``max_ticks`` elapsed).

        Observed as one ``service.run`` span; folds nothing per tick beyond
        the cheap ``service.*`` counters and -- when recording is active at
        the outermost scope -- persists one run record of kind
        ``"service"``.
        """
        tracer = obs_trace.get_tracer()
        obs_instrument.enter_scope()
        started = time.perf_counter()
        root = tracer.start_span("service.run", solver=self.solver.name,
                                 tenants=len(self.tenants))
        report: Optional[ServiceReport] = None
        try:
            guard = 0
            while not self.all_done:
                if max_ticks is not None and guard >= max_ticks:
                    break
                self.tick()
                guard += 1
            report = self.report()
            return report
        finally:
            wall_s = time.perf_counter() - started
            if report is not None:
                root.set(ticks=report.ticks,
                         completed_epochs=report.completed_epochs,
                         shed=sum(report.shed.values()),
                         worker_kills=report.worker_kills)
            tracer.end_span(root)
            outermost = obs_instrument.exit_scope()
            if report is not None:
                for runtime in self.tenants.values():
                    OnlineAdvisor._fold_run_metrics(runtime.loop.result())
                if outermost and obs_recorder.active_store() is not None:
                    obs_recorder.maybe_record(
                        "service",
                        self.solver.name,
                        elapsed_s=wall_s,
                        wall_s=wall_s,
                        stats=report.to_dict(),
                        metrics_snapshot=obs_metrics.get_metrics().snapshot(),
                        spans=root.to_dict(),
                    )

    def shutdown(self, drain: bool = True, max_ticks: int = 64) -> None:
        """Stop the service: drain in-flight work, snapshot, close the journal.

        With ``drain=False`` (a hard stop) queued work stays queued -- the
        journal + snapshot carry it and :meth:`recover` resumes it.
        """
        self.draining = True
        if drain:
            guard = 0
            while (self.queue.depth > 0 or any(
                    runtime.in_flight for runtime in self.tenants.values())):
                if guard >= max_ticks:
                    break
                self.tick()
                guard += 1
        self.save_snapshot()
        self.journal.close()
        LOG.info("service: shut down after %d ticks (%d epochs committed)",
                 self.ticks, self.completed_epochs)

    def report(self) -> ServiceReport:
        """The current session summary."""
        statuses = {}
        for tid, runtime in self.tenants.items():
            deployed = runtime.loop.deployed
            statuses[tid] = TenantStatus(
                tenant_id=tid,
                epochs_committed=runtime.cursor,
                num_epochs=runtime.spec.num_epochs,
                done=runtime.done,
                exhausted=runtime.exhausted,
                failed=runtime.failed,
                final_assignment=deployed.assignment() if deployed is not None else None,
                cumulative_cost_cents=runtime.loop.cumulative,
                provenance=tuple(runtime.provenance),
            )
        return ServiceReport(
            ticks=self.ticks,
            tenants=statuses,
            shed=dict(self.shed_counts),
            admitted=self.admitted,
            completed_epochs=self.completed_epochs,
            worker_kills=self.supervisor.kills,
            worker_restarts=self.supervisor.restarts,
            workers_retired=self.supervisor.retired,
            breaker_trips=self.board.trips,
            breaker_states=self.board.states(),
            replayed_epochs=self.replayed_epochs,
            recovered=self.recovered,
            torn_tail_note=self.torn_tail_note,
        )

    def layouts(self) -> Dict[str, Optional[Dict[str, str]]]:
        """Deployed assignment per tenant right now."""
        return {
            tid: (runtime.loop.deployed.assignment()
                  if runtime.loop.deployed is not None else None)
            for tid, runtime in self.tenants.items()
        }

    # -- crash recovery ------------------------------------------------
    @classmethod
    def recover(cls, state_dir: Union[str, Path],
                config: Optional[ServiceConfig] = None,
                fault_injector: Optional[FaultInjector] = None) -> "AdvisorService":
        """Rebuild a crashed service from its journal and snapshots.

        The journal is the redo log *and* the integrity oracle: tenant specs
        are re-registered from ``tenant_registered`` records, committed
        epochs are **re-executed** through the same
        :meth:`~repro.online.controller.OnlineLoop.step` path, and every
        replayed layout is verified bitwise against the journaled
        assignment -- a mismatch raises
        :class:`~repro.exceptions.CheckpointCorruptionError` rather than
        resuming from silently diverged state.  Scheduler state the journal
        does not re-derive (queue contents, consumed budgets, breaker
        circuits) restores from the latest intact snapshot, and the tick
        clock resumes past the last journaled tick so a resumed fault plan
        continues where it stopped.
        """
        service = cls(state_dir, config=config, fault_injector=fault_injector)
        registry = obs_metrics.get_metrics()
        records, torn_note = Journal.load(service.journal.path)
        service.torn_tail_note = torn_note
        if torn_note:
            LOG.warning("service: %s", torn_note)
        committed: Dict[str, List[Dict[str, object]]] = {}
        last_tick = 0
        for record in records:
            kind = record.get("kind")
            payload = record.get("payload", {})
            last_tick = max(last_tick, int(payload.get("tick", 0)))
            if kind == "tenant_registered":
                spec = TenantSpec.from_dict(payload["spec"])
                service._admit_tenant(spec)
                committed.setdefault(spec.tenant_id, [])
            elif kind == "epoch_committed":
                committed.setdefault(str(payload["tenant_id"]), []).append(payload)

        snapshot = service.snapshots.load_latest()
        state = snapshot.get("state", {}) if snapshot else {}
        service.admission.restore(state.get("used_budget_s", {}))
        service.board.restore(state.get("breakers", {}))
        service.supervisor.restore(state.get("supervisor", {}))
        counters = state.get("counters", {})
        service.shed_counts = dict(counters.get("shed", {}))
        service.admitted = int(counters.get("admitted", 0))
        service.completed_epochs = int(counters.get("completed_epochs", 0))
        tenant_state = state.get("tenants", {})

        # Re-execute the committed epochs, verifying layouts bitwise.
        for tid, runtime in service.tenants.items():
            saved = tenant_state.get(tid, {})
            runtime.exhausted = bool(saved.get("exhausted", False))
            runtime.failed = bool(saved.get("failed", False))
            runtime.predicted_step_s = float(saved.get("predicted_step_s", 0.0))
            runtime.provenance = list(saved.get("provenance", []))
            runtime.attempts = int(saved.get("attempts", 0))
            history = committed.get(tid, [])
            for payload in history:
                epoch_index = runtime.cursor
                record = runtime.loop.step(runtime.epochs[epoch_index])
                if record.layout.assignment() != payload.get("assignment"):
                    raise CheckpointCorruptionError(
                        f"recovery replay diverged for tenant {tid!r} at epoch "
                        f"{epoch_index}: journaled assignment does not match "
                        f"the re-executed layout",
                        path=service.journal.path,
                    )
                runtime.cursor += 1
                service.replayed_epochs += 1
                registry.counter("service.replayed_epochs").inc()
            if history:
                runtime.note(f"recovery: replayed {len(history)} committed epochs")

        # Re-seed the queue from the snapshot, dropping items the journal
        # already saw commit (the snapshot may predate the journal tail).
        queue_state = state.get("queue", {})
        live_items = []
        for raw in queue_state.get("items", []):
            item = WorkItem.from_dict(raw)
            runtime = service.tenants.get(item.tenant_id)
            if runtime is not None and item.epoch == runtime.cursor and runtime.active:
                live_items.append(item)
        service.queue.restore({"cursor": queue_state.get("cursor", 0),
                               "items": [item.to_dict() for item in live_items]})
        for item in live_items:
            service.tenants[item.tenant_id].in_flight = True

        service.ticks = max(int(state.get("tick", 0)), last_tick)
        service.board.tick = service.ticks
        service.journal.resume_at(records[-1]["seq"] if records else 0)
        service.journal.append("recovery", tick=service.ticks,
                               replayed_epochs=service.replayed_epochs,
                               torn_tail=torn_note)
        service.recovered = True
        registry.counter("service.recoveries").inc()
        LOG.info("service: recovered at tick %d (%d epochs replayed%s)",
                 service.ticks, service.replayed_epochs,
                 "; torn journal tail sliced" if torn_note else "")
        return service
