"""Tenant specifications, runtimes and deterministic epoch streams.

A tenant is registered as a :class:`TenantSpec` -- *pure data* naming a
scenario from the registry plus drift/budget/threshold parameters.  That
purity is what makes the service crash-safe: the spec round-trips through
the journal, and :func:`build_runtime` rebuilds the tenant's scenario
bundle, epoch workload stream and steppable
:class:`~repro.online.controller.OnlineLoop` bit-for-bit from it, so
recovery can re-execute committed epochs and land on the exact pre-crash
layouts (the scenario estimators are deterministic by construction).

Drift shapes reuse the :mod:`repro.online.drift` machinery: the scenario
workload's query stream is split into a low-table-heavy and a
high-table-heavy phase (the fact-heavy/dim-heavy idiom of the online
tests) and crossfaded or flash-crowded under a seeded schedule, giving
every tenant a reproducible drifting workload without bespoke fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro import scenarios
from repro.exceptions import ConfigurationError
from repro.online.controller import OnlineAdvisor, OnlineLoop
from repro.online.drift import (
    DriftingWorkloadGenerator,
    EpochWorkload,
    PhaseSchedule,
    WorkloadPhase,
)
from repro.online.monitor import DriftThresholds
from repro.sla.constraints import RelativeSLA

#: Drift shapes a tenant spec may request.
DRIFT_KINDS = ("steady", "crossfade", "flash")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's registration, as journaled: pure, serialisable data."""

    tenant_id: str
    scenario: str = "synthetic_small"
    #: Parameter overrides forwarded to ``scenarios.build``.
    overrides: Mapping[str, object] = field(default_factory=dict)
    num_epochs: int = 8
    drift: str = "steady"
    drift_seed: int = 2011
    #: Wall-clock budget (seconds of solve/step time); ``None`` = unlimited.
    budget_s: Optional[float] = None
    #: Drift sensitivity of the tenant's telemetry monitor.
    share_threshold: float = 0.05
    #: Relative SLA ratio (``None`` uses the scenario's default SLA).
    sla_ratio: Optional[float] = None
    #: Per-re-tier solve deadline handed to the guarded solver chain.
    retier_budget_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ConfigurationError("a tenant needs a non-empty id")
        if self.num_epochs < 1:
            raise ConfigurationError("a tenant needs at least one epoch")
        if self.drift not in DRIFT_KINDS:
            raise ConfigurationError(
                f"unknown drift shape {self.drift!r} (known: {DRIFT_KINDS})"
            )

    def to_dict(self) -> Dict[str, object]:
        """The journal form of the registration."""
        return {
            "tenant_id": self.tenant_id,
            "scenario": self.scenario,
            "overrides": dict(self.overrides),
            "num_epochs": self.num_epochs,
            "drift": self.drift,
            "drift_seed": self.drift_seed,
            "budget_s": self.budget_s,
            "share_threshold": self.share_threshold,
            "sla_ratio": self.sla_ratio,
            "retier_budget_s": self.retier_budget_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TenantSpec":
        """Rebuild a spec from its journal form."""
        return cls(
            tenant_id=str(payload["tenant_id"]),
            scenario=str(payload.get("scenario", "synthetic_small")),
            overrides=dict(payload.get("overrides", {})),
            num_epochs=int(payload.get("num_epochs", 8)),
            drift=str(payload.get("drift", "steady")),
            drift_seed=int(payload.get("drift_seed", 2011)),
            budget_s=payload.get("budget_s"),
            share_threshold=float(payload.get("share_threshold", 0.05)),
            sla_ratio=payload.get("sla_ratio"),
            retier_budget_s=payload.get("retier_budget_s"),
        )


def build_epoch_stream(bundle, spec: TenantSpec) -> List[EpochWorkload]:
    """The tenant's deterministic per-epoch workloads.

    ``steady`` repeats the scenario workload; ``crossfade`` ramps from a
    low-table-heavy to a high-table-heavy reweighting of the same query
    stream; ``flash`` spikes the heavy phase around the run's midpoint.
    Same spec => bitwise-identical stream (the drift generator is seeded),
    which recovery relies on.
    """
    if spec.drift == "steady":
        return [
            EpochWorkload(epoch=epoch, weights=(1.0,), workload=bundle.workload)
            for epoch in range(spec.num_epochs)
        ]
    queries = list(bundle.workload.queries)
    half = max(1, len(queries) // 2)
    low, high = queries[:half], queries[half:] or queries[:half]
    phase_a = bundle.workload.with_stream(
        tuple(low + low + high), name=f"{spec.tenant_id}-low-heavy"
    )
    phase_b = bundle.workload.with_stream(
        tuple(high + high + low), name=f"{spec.tenant_id}-high-heavy"
    )
    if spec.drift == "crossfade":
        schedule = PhaseSchedule.ramp(
            spec.num_epochs,
            start_epoch=max(0, spec.num_epochs // 4),
            end_epoch=max(1, (3 * spec.num_epochs) // 4),
            phase_names=("low", "high"),
        )
    else:  # flash
        schedule = PhaseSchedule.flash_crowd(
            spec.num_epochs,
            spike_epoch=spec.num_epochs // 2,
            width=max(1, spec.num_epochs // 4),
            phase_names=("low", "high"),
        )
    generator = DriftingWorkloadGenerator(
        [WorkloadPhase("low", phase_a), WorkloadPhase("high", phase_b)],
        schedule,
        seed=spec.drift_seed,
        name=f"{spec.tenant_id}-{spec.drift}",
    )
    return list(generator.epochs())


@dataclass
class TenantRuntime:
    """The in-memory face of one registered tenant.

    Everything here is rebuilt deterministically from the spec (bundle,
    epoch stream, advisor, loop); only the *cursor* -- how many epochs have
    committed -- and the provenance trail are decided by the journal.
    """

    spec: TenantSpec
    bundle: object
    epochs: List[EpochWorkload]
    advisor: OnlineAdvisor
    loop: OnlineLoop
    #: Number of committed epochs (the next epoch to run).
    cursor: int = 0
    #: True while a work item for the cursor epoch is queued or in flight.
    in_flight: bool = False
    #: Dispatch attempts of the cursor epoch (kills/errors bump it).
    attempts: int = 0
    #: Set when admission permanently stopped the tenant (budget) or the
    #: epoch exceeded its retry bound.
    exhausted: bool = False
    failed: bool = False
    #: Everything notable that happened to the tenant, in order: sheds,
    #: kills that lost its in-flight work, retries, recovery replays, and
    #: every incident its epoch records carried.
    provenance: List[str] = field(default_factory=list)
    #: Smoothed per-step seconds, declared as admission cost.
    predicted_step_s: float = 0.0

    @property
    def done(self) -> bool:
        """True when every epoch committed (or the tenant was stopped)."""
        return self.cursor >= self.spec.num_epochs or self.exhausted or self.failed

    @property
    def active(self) -> bool:
        """True while the tenant still has schedulable work."""
        return not self.done

    def note(self, message: str) -> None:
        """Append one provenance entry."""
        self.provenance.append(message)


def build_runtime(spec: TenantSpec, solver) -> TenantRuntime:
    """Construct a tenant's bundle, epoch stream, advisor and loop."""
    bundle = scenarios.build(spec.scenario, **dict(spec.overrides))
    epochs = build_epoch_stream(bundle, spec)
    sla = (
        RelativeSLA(spec.sla_ratio)
        if spec.sla_ratio is not None
        else bundle.sla
    )
    advisor = OnlineAdvisor(
        bundle.objects,
        bundle.get_system(),
        bundle.fresh_estimator(),
        sla=sla,
        thresholds=DriftThresholds(share_threshold=spec.share_threshold),
        solver=solver,
        retier_budget_s=spec.retier_budget_s,
    )
    return TenantRuntime(
        spec=spec,
        bundle=bundle,
        epochs=epochs,
        advisor=advisor,
        loop=OnlineLoop(advisor),
    )
