"""Per-solver-class circuit breakers and the guarded degradation ladder.

A :class:`CircuitBreaker` guards one solver class (``es``, ``dot``, ...)
with the classic three-state protocol driven by the service's *logical*
scheduler ticks: ``closed`` (normal), ``open`` (tripped after
``failure_threshold`` consecutive failures/timeouts; the stage is skipped),
``half_open`` (after ``cooldown_ticks`` one probe is let through -- success
closes the circuit, failure re-opens it).  The :class:`BreakerBoard` keys
one breaker per solver name and serialises to pure data so breaker state
survives a service restart.

:class:`GuardedFallbackSolver` plugs the board into the existing
:class:`~repro.core.solver.FallbackSolver` degradation ladder through its
stage-outcome hooks: a stage whose circuit is open is skipped (recorded as
an incident) and the chain routes down ES -> DOT -> hold exactly as the
plain fallback chain would on an organic failure -- tenants keep getting
layouts while a flapping solver class cools down, instead of paying its
failure latency every epoch.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.solver import FallbackSolver, Solver, register_solver
from repro.exceptions import ConfigurationError

#: Breaker states, exactly as exported under ``service.breaker.<solver>``.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One solver class's failure circuit, clocked by logical ticks."""

    def __init__(self, name: str, failure_threshold: int = 3, cooldown_ticks: int = 4):
        if failure_threshold < 1:
            raise ConfigurationError("breaker failure threshold must be >= 1")
        if cooldown_ticks < 1:
            raise ConfigurationError("breaker cooldown must be >= 1 tick")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.state = CLOSED
        self.failures = 0
        self.trips = 0
        self.opened_tick: Optional[int] = None

    def allow(self, tick: int) -> bool:
        """May the guarded stage run at this tick?  (May half-open it.)"""
        if self.state == OPEN:
            if self.opened_tick is not None and tick - self.opened_tick >= self.cooldown_ticks:
                self.state = HALF_OPEN
                return True
            return False
        return True

    def record_failure(self, tick: int) -> bool:
        """Count one failure; returns True when this call tripped the circuit."""
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            already_open = self.state == OPEN
            self.state = OPEN
            self.opened_tick = tick
            if not already_open:
                self.trips += 1
                return True
        return False

    def record_success(self) -> None:
        """A clean full-effort result closes the circuit and resets the count."""
        self.state = CLOSED
        self.failures = 0
        self.opened_tick = None

    def to_dict(self) -> Dict[str, object]:
        """Pure-data form for the service snapshot."""
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "trips": self.trips,
            "opened_tick": self.opened_tick,
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Restore circuit state from its snapshot form."""
        self.state = str(payload.get("state", CLOSED))
        self.failures = int(payload.get("failures", 0))
        self.trips = int(payload.get("trips", 0))
        opened = payload.get("opened_tick")
        self.opened_tick = None if opened is None else int(opened)


class BreakerBoard:
    """A registry of circuit breakers keyed by solver-class name.

    The board owns the logical clock (``board.tick``, advanced by the
    service daemon every scheduler tick) so breaker cooldowns are
    deterministic and replayable -- wall time never enters the protocol.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_ticks: int = 4):
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.tick = 0
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        """The (lazily created) breaker guarding one solver class."""
        guard = self._breakers.get(name)
        if guard is None:
            guard = CircuitBreaker(
                name,
                failure_threshold=self.failure_threshold,
                cooldown_ticks=self.cooldown_ticks,
            )
            self._breakers[name] = guard
        return guard

    def allow(self, name: str) -> bool:
        """May the named solver class run at the board's current tick?"""
        return self.breaker(name).allow(self.tick)

    def failure(self, name: str) -> bool:
        """Record a failure; True when it tripped the circuit open."""
        return self.breaker(name).record_failure(self.tick)

    def success(self, name: str) -> None:
        """Record a clean success (closes the circuit)."""
        self.breaker(name).record_success()

    @property
    def trips(self) -> int:
        """Total circuit trips across all solver classes."""
        return sum(guard.trips for guard in self._breakers.values())

    def states(self) -> Dict[str, str]:
        """Current state per guarded solver class."""
        return {name: guard.state for name, guard in sorted(self._breakers.items())}

    def snapshot(self) -> Dict[str, object]:
        """Pure-data form for the service snapshot."""
        return {
            "tick": self.tick,
            "breakers": {name: guard.to_dict() for name, guard in self._breakers.items()},
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Restore every breaker (and the logical clock) from a snapshot."""
        self.tick = int(payload.get("tick", 0))
        for name, raw in payload.get("breakers", {}).items():
            self.breaker(name).restore(raw)


@register_solver
class GuardedFallbackSolver(FallbackSolver):
    """The fallback ladder with per-solver-class circuit breakers.

    Identical to :class:`~repro.core.solver.FallbackSolver` (ES -> DOT ->
    hold, shared budget, degraded-but-honest results) except that every
    stage consults its circuit first: an open circuit skips the stage with
    an incident, failures and deadline-degraded answers count toward
    tripping it, and a clean success closes it.  The board is shared across
    all tenants of a service, so one tenant's solver failures protect every
    other tenant from the same flapping stage.
    """

    name = "guarded-fallback"

    def __init__(self, chain: Optional[Sequence[Solver]] = None,
                 board: Optional[BreakerBoard] = None):
        super().__init__(chain=chain)
        self.board = board if board is not None else BreakerBoard()

    def _stage_blocked(self, stage: Solver) -> Optional[str]:
        if not self.board.allow(stage.name):
            return "circuit open; routing down the degradation ladder"
        return None

    def _stage_failed(self, stage: Solver, timeout: bool = False) -> None:
        self.board.failure(stage.name)

    def _stage_succeeded(self, stage: Solver) -> None:
        self.board.success(stage.name)
