"""Fault-tolerant multi-tenant advisor service.

``repro.service`` is the control plane in front of the solver and online
layers: a supervised daemon (:class:`AdvisorService`) that registers
tenants, admits their per-epoch work under budgets and explicit
backpressure, runs it on a supervised worker pool with circuit-breakered
solver fallbacks, and journals every committed epoch to checksummed durable
state so a crashed service recovers to bitwise-identical layouts.

Module map:

* :mod:`repro.service.queue` -- bounded work queue, fair-share scheduling,
  admission control with shed reasons and budget reservations;
* :mod:`repro.service.supervisor` -- logical worker pool with heartbeats,
  crash detection and bounded restart-with-backoff;
* :mod:`repro.service.breaker` -- per-solver-class circuit breakers and
  the :class:`GuardedFallbackSolver` degradation ladder;
* :mod:`repro.service.journal` -- checksummed write-ahead journal and
  atomic snapshots;
* :mod:`repro.service.tenants` -- tenant specs and deterministic epoch
  streams;
* :mod:`repro.service.daemon` -- the tick-driven service itself plus
  :meth:`AdvisorService.recover`.
"""

from repro.service.breaker import (
    BreakerBoard,
    CircuitBreaker,
    GuardedFallbackSolver,
)
from repro.service.daemon import (
    AdvisorService,
    ServiceConfig,
    ServiceReport,
    TenantStatus,
)
from repro.service.journal import Journal, SnapshotStore
from repro.service.queue import (
    AdmissionController,
    AdmissionDecision,
    SHED_REASONS,
    WorkItem,
    WorkQueue,
)
from repro.service.supervisor import Supervisor, Worker
from repro.service.tenants import (
    DRIFT_KINDS,
    TenantRuntime,
    TenantSpec,
    build_epoch_stream,
    build_runtime,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdvisorService",
    "BreakerBoard",
    "CircuitBreaker",
    "DRIFT_KINDS",
    "GuardedFallbackSolver",
    "Journal",
    "SHED_REASONS",
    "ServiceConfig",
    "ServiceReport",
    "SnapshotStore",
    "Supervisor",
    "TenantRuntime",
    "TenantSpec",
    "TenantStatus",
    "Worker",
    "WorkItem",
    "WorkQueue",
    "build_epoch_stream",
    "build_runtime",
]
