"""Glue between the solver/online layers and the observability primitives.

:func:`instrument_solver` is a class decorator applied to every registered
solver: it wraps ``solve()`` in a span, folds the run's ``SolveStats`` into
the metrics registry at the solve boundary (never per layout -- the bitwise
contracts and the disabled-path overhead bound depend on that), replays
resilience incidents as span events, and persists a run record when
recording is active.

A module-level **scope depth** keeps nested observations honest: a
``FallbackSolver`` chain or an ``OnlineAdvisor`` epoch loop drives inner
solves through the same instrumented interface, and only the outermost
scope writes a run record or folds the shared estimate-cache delta (inner
folds would double-count a cache that outlives the solve).  The depth is
process-local and needs no locking -- parallel search workers are separate
processes with their own (disabled) instrumentation state.

Everything here duck-types against ``SolveResult``/``SolveStats`` so that
``repro.obs`` stays importable without ``repro.core`` (no import cycles).
"""

from __future__ import annotations

import dataclasses
import functools
import time

from repro.obs import metrics, recorder, trace

_DEPTH = 0


def enter_scope() -> int:
    """Open an observation scope; returns the new depth (1 = outermost)."""
    global _DEPTH
    _DEPTH += 1
    return _DEPTH


def exit_scope() -> bool:
    """Close the innermost scope; True when the outermost one just closed."""
    global _DEPTH
    _DEPTH -= 1
    if _DEPTH < 0:  # defensive: unbalanced exits must not corrupt the depth
        _DEPTH = 0
        return True
    return _DEPTH == 0


def scope_depth() -> int:
    """The current observation-scope depth (0 = not inside any run)."""
    return _DEPTH


# ---------------------------------------------------------------------------
# Solver instrumentation
# ---------------------------------------------------------------------------

def _finite_or_none(value: float):
    """Span/record-friendly float (JSON consumers choke on Infinity)."""
    return value if value == value and abs(value) != float("inf") else None


def _annotate_solve_span(span, result) -> None:
    """Stamp the solve span with the result's headline numbers and incidents."""
    stats = result.stats
    span.set(
        elapsed_s=stats.elapsed_s,
        build_s=stats.build_s,
        evaluated_layouts=stats.evaluated_layouts,
        pruned_layouts=stats.pruned_layouts,
        feasible=result.feasible,
        toc_cents=_finite_or_none(result.toc_cents),
        degraded=stats.degraded,
    )
    for incident in stats.incidents:
        span.event("incident", message=incident)


def _fold_solve_metrics(registry, name: str, result, wall_s: float,
                        cache, cache_before, outermost: bool) -> None:
    """Fold one solve's accounting into the registry (solve-boundary only)."""
    stats = result.stats
    registry.counter("solver.solves").inc()
    registry.counter(f"solver.{name}.solves").inc()
    registry.histogram(f"solver.{name}.solve_s").observe(wall_s)
    registry.counter("solver.evaluated_layouts").inc(stats.evaluated_layouts)
    registry.counter("solver.pruned_layouts").inc(stats.pruned_layouts)
    if stats.degraded:
        registry.counter("solver.degraded").inc()
    if stats.incidents:
        registry.counter("solver.incidents").inc(len(stats.incidents))
    if name == "dot":
        registry.counter("dot.moves_evaluated").inc(stats.evaluated_layouts)
        registry.counter("dot.moves_accepted").inc(stats.moves_accepted)
    batch = stats.batch
    if batch is not None:
        registry.counter("batch.chunks").inc(batch.chunks)
        registry.counter("batch.eval_s").inc(getattr(batch, "eval_s", 0.0))
        registry.counter("batch.pruned_chunks").inc(batch.pruned_chunks)
        registry.counter("batch.pruned_subtrees").inc(batch.pruned_subtrees)
        registry.counter("batch.estimator_calls").inc(batch.estimator_calls)
        registry.counter("batch.steals").inc(getattr(batch, "steals", 0))
        # Worker-local estimate-cache deltas, measured once per
        # (shard_id, attempt) and deduplicated by SearchProgress.record --
        # the pool path's counterpart of the outermost context-cache delta
        # below (worker caches are pickled copies the context never sees).
        registry.counter("estimate_cache.hits").inc(getattr(batch, "cache_hits", 0))
        registry.counter("estimate_cache.misses").inc(getattr(batch, "cache_misses", 0))
    if outermost and cache is not None and cache_before is not None:
        registry.counter("estimate_cache.hits").inc(cache.hits - cache_before[0])
        registry.counter("estimate_cache.misses").inc(cache.misses - cache_before[1])


def instrument_solver(cls):
    """Class decorator: observe ``cls.solve`` (spans, metrics, run records)."""
    inner = cls.solve

    @functools.wraps(inner)
    def solve(self, context, *, initial_layout=None, budget=None):
        tracer = trace.get_tracer()
        registry = metrics.get_metrics()
        cache = getattr(context, "estimate_cache", None)
        cache_before = (cache.hits, cache.misses) if cache is not None else None
        enter_scope()
        span = tracer.start_span(f"solve:{self.name}", solver=self.name,
                                 budget_s=budget)
        started = time.perf_counter()
        result = None
        try:
            result = inner(self, context, initial_layout=initial_layout,
                           budget=budget)
            return result
        finally:
            wall_s = time.perf_counter() - started
            if result is not None:
                _annotate_solve_span(span, result)
            else:
                span.set(error=True)
                registry.counter("solver.errors").inc()
                registry.counter(f"solver.{self.name}.errors").inc()
            tracer.end_span(span)
            outermost = exit_scope()
            if result is not None:
                _fold_solve_metrics(registry, self.name, result, wall_s,
                                    cache, cache_before, outermost)
                if outermost and recorder.active_store() is not None:
                    recorder.maybe_record(
                        "solve",
                        result.solver,
                        elapsed_s=result.stats.elapsed_s,
                        wall_s=wall_s,
                        stats=_stats_dict(result),
                        metrics_snapshot=registry.snapshot(),
                        spans=span.to_dict(),
                    )

    cls.solve = solve
    return cls


def _stats_dict(result):
    """The record payload of one solve: stats plus headline result fields."""
    stats = dataclasses.asdict(result.stats)
    stats["toc_cents"] = _finite_or_none(result.toc_cents)
    stats["feasible"] = result.feasible
    stats["psr"] = result.psr
    return stats


__all__ = [
    "enter_scope",
    "exit_scope",
    "instrument_solver",
    "scope_depth",
]
