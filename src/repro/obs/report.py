"""Observability report CLI: store summary, span flame view, perf gate.

``python -m repro.obs.report`` has three modes:

* **summary** (default) -- tabulate the run records in the JSONL store
  (``--store``, default ``benchmarks/runs``): kind, solver, scenario,
  elapsed time and span-tree coverage per record;
* **flame** (``--flame [RUN_ID]``) -- render the span tree of one record
  (default: the newest record that has spans) as an indented text flame
  view with per-span duration bars;
* **gate** (``--check-regressions``) -- compare the current
  ``BENCH_*.json`` files (``--bench-dir``, default ``benchmarks/out``)
  against the committed baselines in ``--baselines`` (default
  ``benchmarks/baselines``) using the per-metric tolerance bands declared
  in :data:`GATE_CHECKS`, and exit non-zero on any regression.
  ``--write-baselines`` refreshes the committed baselines from the current
  bench output instead.

Tolerance kinds: ``equal`` (exact -- enumeration geometry, epoch counts),
``close`` (relative tolerance -- the deterministic seeded TOC/PSR numbers),
``floor`` (current >= baseline x factor -- machine-relative speedups) and
``timing`` (current <= baseline x timing factor -- wall times; factor from
``--timing-factor`` or ``$REPRO_OBS_GATE_TIMING_FACTOR``, default 3.0,
because CI runners are slower and noisier than the machines that commit
baselines).  A baseline file that does not exist is skipped with a warning;
a *current* file that does not exist fails only for benches named in
``--require`` (CI requires the smokes it just ran).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.recorder import DEFAULT_STORE_DIR, RunStore

DEFAULT_BENCH_DIR = Path("benchmarks") / "out"
DEFAULT_BASELINE_DIR = Path("benchmarks") / "baselines"
DEFAULT_TIMING_FACTOR = 3.0


# ---------------------------------------------------------------------------
# Gate declaration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Check:
    """One per-metric tolerance band of the regression gate."""

    #: Dotted path into the BENCH JSON (e.g. ``crossfade.summary.min_psr``).
    path: str
    #: ``equal`` | ``close`` | ``floor`` | ``timing``.
    kind: str
    #: Relative tolerance for ``close``.
    rel: float = 1e-6
    #: Multiplier for ``floor`` (current >= baseline*factor).
    factor: float = 0.5


#: The per-benchmark metric contracts the gate enforces.
GATE_CHECKS: Dict[str, Tuple[Check, ...]] = {
    "parallel_es": (
        Check("space", "equal"),
        Check("objects", "equal"),
        Check("classes", "equal"),
        Check("toc_cents", "close"),
        # Machine-relative: the bench asserts the absolute shm-boot and
        # steal bars itself (on >= 4 CPUs); the gate only catches
        # order-of-magnitude collapses of either mechanism.
        Check("boot.speedup", "floor", factor=0.1),
        Check("steal_speedup", "floor", factor=0.1),
        Check("elapsed_s", "timing"),
    ),
    "kernels": (
        Check("space", "equal"),
        Check("candidates", "equal"),
        Check("identical", "equal"),
        # ~1.0 without numba (fallback), >= 3x with it; the bench asserts
        # the absolute bar when the jit is live.
        Check("speedup_compiled", "floor", factor=0.1),
        Check("elapsed_s", "timing"),
    ),
    "scaling_batch_eval": (
        Check("candidates_at_largest", "equal"),
        # Speedups are machine-relative; the bench itself asserts the >=5x
        # absolute bar, the gate only catches order-of-magnitude collapses.
        Check("es_speedup_at_largest", "floor", factor=0.1),
        Check("elapsed_s", "timing"),
    ),
    "online_drift": (
        Check("crossfade.summary.num_epochs", "equal"),
        Check("crossfade.summary.online_cumulative_cents", "close"),
        Check("crossfade.summary.frozen_cumulative_cents", "close"),
        Check("crossfade.summary.saving_fraction", "close"),
        Check("crossfade.summary.online_min_psr", "close"),
        Check("crossfade.retier_count", "equal"),
        Check("predictive_flash_crowd.summary.predictive_cumulative_cents", "close"),
        Check("predictive_flash_crowd.summary.predictive_saving_fraction", "close"),
        Check("crosskind.summary.online_cumulative_cents", "close"),
        Check("crosskind.summary.frozen_cumulative_cents", "close"),
        Check("crossfade.elapsed_s", "timing"),
        Check("predictive_flash_crowd.elapsed_s", "timing"),
        Check("crosskind.elapsed_s", "timing"),
    ),
    "service": (
        Check("fleet.tenants", "equal"),
        Check("fleet.completed_epochs", "equal"),
        Check("fleet.converged", "equal"),
        Check("recovery.converged", "equal"),
        Check("recovery.replayed_epochs", "equal"),
        Check("recovery.worker_kills", "equal"),
        Check("fleet.elapsed_s", "timing"),
        Check("recovery.recovery_s", "timing"),
    ),
    "resilience": (
        Check("degraded_solve.feasible", "equal"),
        Check("online_chaos.num_epochs", "equal"),
        Check("online_chaos.faulty_epochs", "equal"),
        Check("online_chaos.incidents", "equal"),
        Check("online_chaos.min_psr", "close"),
        Check("online_chaos.cumulative_cost_cents", "close"),
        Check("search_chaos.faults_injected", "equal"),
        Check("search_chaos.toc_cents", "close"),
    ),
}

_MISSING = object()


def _resolve(payload: dict, dotted: str):
    node = payload
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return _MISSING
        node = node[key]
    return node


def _compare(check: Check, current, baseline, timing_factor: float) -> Tuple[bool, str]:
    """``(ok, explanation)`` for one metric."""
    if check.kind == "equal":
        return current == baseline, f"{current!r} == {baseline!r}"
    current = float(current)
    baseline = float(baseline)
    if check.kind == "close":
        tolerance = check.rel * max(abs(baseline), 1e-12)
        return (
            math.isclose(current, baseline, rel_tol=check.rel, abs_tol=1e-12),
            f"{current:.10g} ~= {baseline:.10g} (rel {check.rel:g}, tol {tolerance:.3g})",
        )
    if check.kind == "floor":
        bound = baseline * check.factor
        return current >= bound, f"{current:.6g} >= {bound:.6g} ({check.factor:g}x baseline)"
    if check.kind == "timing":
        bound = baseline * timing_factor
        return current <= bound, f"{current:.6g}s <= {bound:.6g}s ({timing_factor:g}x baseline)"
    raise ValueError(f"unknown check kind {check.kind!r}")


def check_regressions(bench_dir: Path, baseline_dir: Path, *,
                      timing_factor: float = DEFAULT_TIMING_FACTOR,
                      require: Sequence[str] = (), out=sys.stdout) -> int:
    """Run the gate; returns the number of failed metrics/benches."""
    failures = 0
    for bench, checks in GATE_CHECKS.items():
        baseline_path = baseline_dir / f"BENCH_{bench}.json"
        current_path = bench_dir / f"BENCH_{bench}.json"
        if not baseline_path.exists():
            print(f"[skip] {bench}: no committed baseline at {baseline_path}", file=out)
            continue
        if not current_path.exists():
            if bench in require:
                failures += 1
                print(f"[FAIL] {bench}: required bench output missing at "
                      f"{current_path}", file=out)
            else:
                print(f"[skip] {bench}: no current run at {current_path}", file=out)
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        for check in checks:
            base_value = _resolve(baseline, check.path)
            cur_value = _resolve(current, check.path)
            label = f"{bench}.{check.path}"
            if base_value is _MISSING:
                print(f"[skip] {label}: not in baseline", file=out)
                continue
            if cur_value is _MISSING:
                failures += 1
                print(f"[FAIL] {label}: present in baseline, missing from "
                      f"current run", file=out)
                continue
            ok, explanation = _compare(check, cur_value, base_value, timing_factor)
            if ok:
                print(f"[ok]   {label}: {explanation}", file=out)
            else:
                failures += 1
                print(f"[FAIL] {label}: {explanation}", file=out)
    verdict = "PASS" if failures == 0 else f"FAIL ({failures} regression(s))"
    print(f"regression gate: {verdict}", file=out)
    return failures


def write_baselines(bench_dir: Path, baseline_dir: Path, out=sys.stdout) -> int:
    """Copy the current BENCH files of every gated bench into the baselines."""
    baseline_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for bench in GATE_CHECKS:
        source = bench_dir / f"BENCH_{bench}.json"
        if not source.exists():
            print(f"[skip] {bench}: no current run at {source}", file=out)
            continue
        target = baseline_dir / source.name
        target.write_text(source.read_text())
        print(f"[ok]   {bench}: baseline refreshed from {source}", file=out)
        copied += 1
    return copied


# ---------------------------------------------------------------------------
# Span-tree analysis
# ---------------------------------------------------------------------------

def span_coverage(span: Optional[dict]) -> float:
    """Fraction of a span's duration accounted for by its children.

    A leaf span accounts for itself (coverage 1.0); an interior span is
    covered by the sum of its direct children's durations.  The acceptance
    bar for instrumented solves/online runs is >= 0.95: the tree explains
    where the time went.
    """
    if not span:
        return 0.0
    children = span.get("children") or ()
    duration = float(span.get("duration_s", 0.0))
    if not children:
        return 1.0
    if duration <= 0.0:
        return 1.0
    covered = sum(float(child.get("duration_s", 0.0)) for child in children)
    return min(1.0, covered / duration)


def render_flame(span: dict, width: int = 30, out=sys.stdout) -> None:
    """Indented text flame view of one span tree."""
    total = max(float(span.get("duration_s", 0.0)), 1e-12)

    def emit(node: dict, depth: int) -> None:
        duration = float(node.get("duration_s", 0.0))
        share = duration / total
        bar = "#" * max(1, int(round(share * width))) if duration > 0 else ""
        indent = "  " * depth
        print(f"{indent}{node.get('name', '?'):<{max(4, 28 - 2 * depth)}} "
              f"{duration * 1000.0:10.2f} ms {share:6.1%}  {bar}", file=out)
        for offset, event in sorted(
            (float(e.get("offset_s", 0.0)), e) for e in node.get("events", ())
        ):
            print(f"{indent}  * {event.get('name', '?')} @ {offset * 1000.0:.2f} ms "
                  f"{event.get('attrs', {})}", file=out)
        for child in node.get("children", ()):
            emit(child, depth + 1)

    emit(span, 0)


# ---------------------------------------------------------------------------
# Store summary
# ---------------------------------------------------------------------------

def summarize_store(store: RunStore, last: int = 20, out=sys.stdout) -> int:
    """Tabulate the newest ``last`` records; returns the store size."""
    records = store.load()
    if not records:
        print(f"run store {store.path}: empty", file=out)
        return 0
    print(f"run store {store.path}: {len(records)} record(s)", file=out)
    header = (f"{'run_id':<34} {'kind':<7} {'solver':<14} {'scenario':<22} "
              f"{'elapsed_s':>10} {'coverage':>9}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for record in records[-last:]:
        coverage = span_coverage(record.spans) if record.spans else float("nan")
        coverage_text = f"{coverage:9.1%}" if coverage == coverage else "        -"
        print(f"{record.run_id:<34} {record.kind:<7} {record.solver:<14} "
              f"{(record.scenario or '-'):<22} {record.elapsed_s:>10.4f} "
              f"{coverage_text}", file=out)
    return len(records)


def _find_record(store: RunStore, run_id: Optional[str]):
    newest = None
    for record in store:
        if run_id not in (None, "last"):
            if record.run_id == run_id:
                return record
        elif record.spans:
            newest = record
    return newest


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The ``repro.obs.report`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize the observability run store, render span "
                    "flame views, and gate BENCH results against baselines.",
    )
    parser.add_argument("--store", type=Path, default=DEFAULT_STORE_DIR,
                        help="run-store directory (default: benchmarks/runs)")
    parser.add_argument("--last", type=int, default=20,
                        help="how many records the summary shows")
    parser.add_argument("--flame", nargs="?", const="last", default=None,
                        metavar="RUN_ID",
                        help="render the span tree of RUN_ID (default: newest "
                             "record with spans)")
    parser.add_argument("--check-regressions", action="store_true",
                        help="compare current BENCH JSONs against baselines; "
                             "exit non-zero on regression")
    parser.add_argument("--write-baselines", action="store_true",
                        help="refresh the committed baselines from the "
                             "current bench output")
    parser.add_argument("--bench-dir", type=Path, default=DEFAULT_BENCH_DIR,
                        help="directory of the current BENCH_*.json files "
                             "(default: benchmarks/out)")
    parser.add_argument("--baselines", type=Path, default=DEFAULT_BASELINE_DIR,
                        help="committed baseline directory "
                             "(default: benchmarks/baselines)")
    parser.add_argument("--timing-factor", type=float,
                        default=float(os.environ.get(
                            "REPRO_OBS_GATE_TIMING_FACTOR", DEFAULT_TIMING_FACTOR)),
                        help="allowed slowdown of timing metrics vs baseline")
    parser.add_argument("--require", default="",
                        help="comma-separated benches whose current BENCH "
                             "file must exist (gate mode)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.write_baselines:
        copied = write_baselines(args.bench_dir, args.baselines)
        return 0 if copied else 1
    if args.check_regressions:
        require = tuple(name for name in args.require.split(",") if name)
        failures = check_regressions(
            args.bench_dir, args.baselines,
            timing_factor=args.timing_factor, require=require,
        )
        return 1 if failures else 0
    store = RunStore(args.store)
    if args.flame is not None:
        record = _find_record(store, args.flame)
        if record is None or not record.spans:
            print(f"no record with spans found for {args.flame!r} in {store.path}")
            return 1
        print(f"{record.run_id} ({record.kind}:{record.solver}, "
              f"scenario={record.scenario or '-'}, "
              f"coverage={span_coverage(record.spans):.1%})")
        render_flame(record.spans)
        return 0
    summarize_store(store, last=args.last)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
