"""Structured logging with run-id / span-id context injection.

A thin layer over stdlib ``logging``: every record emitted through a
``repro.*`` logger carries ``%(run_id)s`` (the recorder's declared run id,
or a per-process default) and ``%(span)s`` (the innermost open span's name,
``-`` outside any span), so interleaved output from examples, benchmarks
and future services can be attributed to the run and phase that produced
it.  ``src/`` library modules stay logging-free by design -- progress
reporting belongs to the drivers (``examples/``, ``benchmarks/``), which
route their former ``print`` output through :func:`get_logger`.  The one
in-tree exception is the advisor daemon (:mod:`repro.service`): a service
*is* a driver, so registrations, sheds, worker kills/restarts and recovery
summaries log through ``repro.service`` at the operational levels an
operator tails.

Usage::

    from repro.obs.log import configure, get_logger

    configure()                       # once per process, idempotent
    log = get_logger("examples.quickstart")
    log.info("DOT layout: %s", layout.name)

emits ``[proc-1234 -] INFO repro.examples.quickstart: DOT layout: DOT``.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

from repro.obs import recorder, trace

#: The root of the library's logger hierarchy.
ROOT_LOGGER = "repro"

DEFAULT_FORMAT = "[%(run_id)s %(span)s] %(levelname)s %(name)s: %(message)s"


class ContextFilter(logging.Filter):
    """Injects ``run_id`` and ``span`` attributes into every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        """Stamp the record; never drops it."""
        record.run_id = recorder.current_run_id()
        span = trace.get_tracer().current()
        record.span = span.name if span is not trace.NULL_SPAN else "-"
        return True


def configure(level: int = logging.INFO, stream=None,
              fmt: str = DEFAULT_FORMAT) -> logging.Logger:
    """Attach a context-aware handler to the ``repro`` logger (idempotent).

    Re-running replaces the handler (so tests can redirect ``stream``), sets
    the level, and disables propagation to the root logger so embedding
    applications keep control of their own logging tree.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs = True
    handler.setFormatter(logging.Formatter(fmt))
    handler.addFilter(ContextFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + ".") or name == ROOT_LOGGER:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


__all__ = ["ContextFilter", "DEFAULT_FORMAT", "ROOT_LOGGER", "configure", "get_logger"]
