"""Durable run records: an append-only JSONL store of solves and online runs.

Every instrumented ``Solver.solve`` and ``OnlineAdvisor.run`` can persist a
:class:`RunRecord` -- scenario, solver, git revision, seed, the run's stats,
a metrics-registry snapshot and (when tracing is on) the full span tree --
to a :class:`RunStore`: one ``runs.jsonl`` file under ``benchmarks/runs/``
by default, one JSON object per line, append-only.  JSONL keeps the store
trivially mergeable across machines and greppable without tooling;
``python -m repro.obs.report`` renders it.

Recording is **opt-in** (the store is ``None`` by default): enable it for a
block with :func:`recording`, persistently with :func:`set_store`, or for a
whole process with the ``REPRO_OBS_RECORD`` environment variable (``1`` for
the default ``benchmarks/runs`` directory, any other value is the target
directory).  Only the *outermost* observed run records -- a fallback chain
or an online loop yields one record, not one per nested solve (the nested
spans are inside its tree).

Round-tripping is bitwise: floats serialize via ``repr`` (Python's shortest
round-trip representation), so a loaded record compares equal to the one
written -- enforced by ``tests/test_obs.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Default store location, relative to the current working directory.
DEFAULT_STORE_DIR = Path("benchmarks") / "runs"


@dataclass
class RunRecord:
    """One persisted observation of a solver or online-advisor run."""

    run_id: str
    #: ``"solve"`` or ``"online"``.
    kind: str
    solver: str
    #: Scenario (or workload) label; ``None`` when the caller declared none.
    scenario: Optional[str] = None
    #: ``git rev-parse --short HEAD`` at record time (``None`` outside git).
    git_rev: Optional[str] = None
    #: RNG seed the caller declared via :func:`run_context` (``None`` if not).
    seed: Optional[int] = None
    created_unix_s: float = 0.0
    #: The run's own reported wall time (``SolveStats.elapsed_s`` /
    #: sum of epoch solve times); ``wall_s`` is the observed envelope.
    elapsed_s: float = 0.0
    wall_s: float = 0.0
    #: Run-type-specific numbers (``SolveStats`` as a dict, online summary).
    stats: Dict[str, object] = field(default_factory=dict)
    #: Metrics-registry snapshot at record time.
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Serialized span tree of the run (``None`` when tracing was off).
    spans: Optional[Dict[str, object]] = None
    #: Free-form caller annotations from :func:`run_context`.
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json_line(self) -> str:
        """The record as one compact JSON line."""
        return json.dumps(self.__dict__, sort_keys=True, default=_fallback_encoder)

    @classmethod
    def from_json_line(cls, line: str) -> "RunRecord":
        """Rebuild a record from one store line."""
        data = json.loads(line)
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in data.items() if key in known})


def _fallback_encoder(value):
    """Last-resort JSON coercion for exotic values inside stats/extra."""
    for caster in (float, str):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    return repr(value)


class RunStore:
    """Append-only JSONL store of :class:`RunRecord` lines."""

    def __init__(self, directory: os.PathLike = DEFAULT_STORE_DIR):
        self.directory = Path(directory)
        self.path = self.directory / "runs.jsonl"

    def append(self, record: RunRecord) -> Path:
        """Append one record (creates the directory on first write)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(record.to_json_line() + "\n")
        return self.path

    def __iter__(self) -> Iterator[RunRecord]:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield RunRecord.from_json_line(line)

    def load(self) -> List[RunRecord]:
        """Every record in the store, oldest first."""
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)


# ---------------------------------------------------------------------------
# Process-wide recording state
# ---------------------------------------------------------------------------

def _store_from_env() -> Optional[RunStore]:
    value = os.environ.get("REPRO_OBS_RECORD", "")
    if value in ("", "0", "false", "off"):
        return None
    if value in ("1", "true", "on"):
        return RunStore(DEFAULT_STORE_DIR)
    return RunStore(Path(value))


_STORE: Optional[RunStore] = _store_from_env()
_CONTEXT: Dict[str, object] = {}
_GIT_REV: Optional[str] = None
_GIT_REV_PROBED = False
_SEQ = 0


def active_store() -> Optional[RunStore]:
    """The store records currently go to (``None`` = recording off)."""
    return _STORE


def set_store(store: Optional[RunStore]) -> Optional[RunStore]:
    """Install (or, with ``None``, disable) the process-wide store."""
    global _STORE
    previous, _STORE = _STORE, store
    return previous


@contextmanager
def recording(directory: os.PathLike = DEFAULT_STORE_DIR):
    """Record runs into ``directory`` for the duration of the block."""
    store = RunStore(directory)
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)


@contextmanager
def run_context(**info):
    """Declare scenario/seed/annotations for records created in the block.

    Recognized keys: ``scenario`` and ``seed`` map onto the record fields of
    the same name; everything else lands in :attr:`RunRecord.extra`.
    Contexts nest; inner values win on key collisions.
    """
    global _CONTEXT
    previous = _CONTEXT
    _CONTEXT = {**previous, **info}
    try:
        yield
    finally:
        _CONTEXT = previous


def context_info() -> Dict[str, object]:
    """The currently declared run-context annotations."""
    return dict(_CONTEXT)


def git_revision() -> Optional[str]:
    """``git rev-parse --short HEAD`` of the working directory, cached."""
    global _GIT_REV, _GIT_REV_PROBED
    if not _GIT_REV_PROBED:
        _GIT_REV_PROBED = True
        try:
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5, check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = None
    return _GIT_REV


def new_run_id() -> str:
    """A unique (per machine) run identifier."""
    global _SEQ
    _SEQ += 1
    return f"run-{time.time_ns():x}-{os.getpid()}-{_SEQ}"


def current_run_id() -> str:
    """The run id logging context lines carry: declared, else per-process."""
    declared = _CONTEXT.get("run_id")
    if declared:
        return str(declared)
    return f"proc-{os.getpid()}"


def maybe_record(kind: str, solver: str, *, elapsed_s: float, wall_s: float,
                 stats: Dict[str, object], metrics_snapshot: Dict[str, object],
                 spans: Optional[Dict[str, object]] = None) -> Optional[RunRecord]:
    """Persist one run record if recording is active; returns it (or None)."""
    store = _STORE
    if store is None:
        return None
    info = context_info()
    scenario = info.pop("scenario", None)
    seed = info.pop("seed", None)
    info.pop("run_id", None)
    record = RunRecord(
        run_id=new_run_id(),
        kind=kind,
        solver=solver,
        scenario=str(scenario) if scenario is not None else None,
        git_rev=git_revision(),
        seed=int(seed) if seed is not None else None,
        created_unix_s=time.time(),
        elapsed_s=float(elapsed_s),
        wall_s=float(wall_s),
        stats=stats,
        metrics=metrics_snapshot,
        spans=spans,
        extra=info,
    )
    store.append(record)
    return record


__all__ = [
    "DEFAULT_STORE_DIR",
    "RunRecord",
    "RunStore",
    "active_store",
    "context_info",
    "current_run_id",
    "git_revision",
    "maybe_record",
    "new_run_id",
    "recording",
    "run_context",
    "set_store",
]
