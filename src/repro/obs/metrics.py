"""Process-wide metrics registry: counters, gauges and histograms.

The registry is the always-on half of the observability layer: counters are
plain Python attribute increments (no locks -- every parallel path in this
repository uses processes, not threads), so the hot paths can afford to fold
their numbers in unconditionally.  By convention the *solver and online
layers fold deltas at run boundaries* (one `solve()`, one epoch) from the
accounting they already collect (``SolveStats``, ``BatchEvalStats``,
``QueryEstimateCache.hits/misses``) rather than incrementing per evaluated
layout -- which keeps the bitwise-identity contracts and the <2% overhead
bound trivially safe.

Histograms record ``count/total/min/max`` (not quantile sketches): the
consumers are the run recorder and the regression gate, which want
deterministic, diffable numbers.

Glossary of the metric names the instrumented tree emits (see
EXPERIMENTS.md for the full table):

* ``solver.solves``, ``solver.<name>.solves``, ``solver.<name>.solve_s`` --
  per-solver run counts and wall-time histograms;
* ``solver.evaluated_layouts`` / ``solver.pruned_layouts`` /
  ``solver.degraded`` / ``solver.incidents`` -- search effort and provenance;
* ``dot.moves_evaluated`` / ``dot.moves_accepted`` -- DOT walk accounting;
* ``batch.chunks`` / ``batch.eval_s`` / ``batch.pruned_chunks`` /
  ``batch.pruned_subtrees`` / ``batch.estimator_calls`` -- batch engine;
* ``estimate_cache.hits`` / ``estimate_cache.misses`` -- shared estimate
  cache traffic (outermost solve / online run folds the delta);
* ``online.epochs`` / ``online.retiers`` / ``online.migration_gb`` /
  ``online.migration_cents`` / ``online.sla_violations`` /
  ``online.incidents`` -- the online control loop;
* ``service.ticks`` / ``service.admitted`` / ``service.completed_epochs``
  -- the advisor daemon's scheduler throughput;
* ``service.queue_depth`` (gauge) / ``service.shed`` /
  ``service.shed.<reason>`` -- backpressure: bounded-queue depth and
  shed-with-reason counts (``queue_full``, ``budget_exhausted``,
  ``shutting_down``);
* ``service.worker_kills`` / ``service.worker_restarts`` /
  ``service.step_errors`` / ``service.step_failures`` -- supervision:
  crashed workers, backoff restarts, failed step attempts;
* ``service.recoveries`` / ``service.replayed_epochs`` -- crash recovery
  sessions and the journaled epochs they re-executed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Union

Number = Union[int, float]


class Counter:
    """Monotonically increasing value (int or float increments)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state."""
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-write-wins value (queue depths, worker counts, knobs)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge."""
        self.value = value

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state."""
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Streaming count/total/min/max summary of observed values."""

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    kind = "histogram"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: Number) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state (``min``/``max`` null when empty)."""
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}, "
                f"not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready state of every registered metric, sorted by name."""
        return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def reset(self) -> None:
        """Drop every registered metric (fresh process-start state)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


_REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _REGISTRY


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous, _REGISTRY = _REGISTRY, registry
    return previous


def snapshot() -> Dict[str, Dict[str, object]]:
    """Snapshot of the process-wide registry."""
    return _REGISTRY.snapshot()


@contextmanager
def fresh_metrics():
    """Swap in an empty registry for a block (test isolation helper)."""
    registry = MetricsRegistry()
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "fresh_metrics",
    "get_metrics",
    "set_metrics",
    "snapshot",
]
