"""Nested tracing spans with a near-zero-cost disabled path.

A :class:`Span` is one timed region of a solve or an online epoch: a name,
free-form attributes, a ``time.perf_counter`` duration, point-in-time events
(shard retries, resilience incidents) and child spans.  A :class:`Tracer`
maintains the active span stack and collects finished root spans, so one
solver run yields one tree (``solve:es`` -> ``build`` -> ``enumerate`` ->
``shard[k]``).

Two usage styles cover every call site in the tree:

* context manager -- ``with tracer.span("build", workers=4) as sp: ...`` --
  for regions that are already a lexical block;
* explicit -- ``sp = tracer.start_span("epoch"); ...; tracer.end_span(sp)``
  -- for long loop bodies (the online epoch loop, shard processing) where
  reindenting a hundred lines under a ``with`` would obscure the diff.

Tracing is **off by default** and the disabled path is a handful of
attribute loads returning the shared :data:`NULL_SPAN` singleton, whose
methods are all no-ops -- cheap enough to leave the instrumentation inline
on hot paths (enforced by ``tests/test_obs.py``: <2% of a sanity ES solve).
Enable per process via :func:`tracing` / ``Tracer(enabled=True)`` or the
``REPRO_OBS_TRACE=1`` environment variable.

Worker processes cannot share the coordinator's tracer; they build their own
(:func:`Tracer`), serialize finished spans with :meth:`Span.to_dict`
(durations and event offsets only -- ``perf_counter`` origins are not
comparable across processes) and the coordinator grafts them into its live
tree with :meth:`Tracer.adopt`.

The tracer is intentionally not thread-safe: every search path in this
repository parallelizes with processes, not threads.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple


class _NullSpan:
    """Shared do-nothing span returned by every disabled-tracer call."""

    __slots__ = ()

    name = ""
    attrs: Dict[str, object] = {}
    duration_s = 0.0
    events: Tuple = ()
    children: Tuple = ()
    enabled = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        """Ignore attribute updates."""
        return self

    def event(self, name: str, **attrs) -> "_NullSpan":
        """Ignore events."""
        return self

    def to_dict(self) -> None:
        """A null span serializes to nothing."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NULL_SPAN>"


#: The singleton no-op span; identity-comparable (``span is NULL_SPAN``).
NULL_SPAN = _NullSpan()


class Span:
    """One timed, attributed, nested region of work."""

    __slots__ = ("name", "attrs", "started_s", "duration_s", "events",
                 "children", "status", "_tracer")

    enabled = True

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None,
                 tracer: Optional["Tracer"] = None):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.started_s = time.perf_counter()
        self.duration_s = 0.0
        #: ``(offset_s, name, attrs)`` triples relative to the span start.
        self.events: List[Tuple[float, str, Dict[str, object]]] = []
        self.children: List["Span"] = []
        self.status = "ok"
        self._tracer = tracer

    # -- recording ------------------------------------------------------
    def set(self, **attrs) -> "Span":
        """Merge ``attrs`` into the span's attributes."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> "Span":
        """Record a point-in-time event at the current offset into the span."""
        self.events.append((time.perf_counter() - self.started_s, name, attrs))
        return self

    # -- context manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.status = "error"
            self.event("exception", type=type(exc).__name__, message=str(exc))
        if self._tracer is not None:
            self._tracer.end_span(self)
        return False

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (relative times only; safe across processes)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": self.duration_s,
            "status": self.status,
            "events": [
                {"offset_s": offset, "name": name, "attrs": dict(attrs)}
                for offset, name, attrs in self.events
            ],
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        """Rebuild a finished span (e.g. one shipped back from a worker)."""
        span = cls(str(data.get("name", "")), dict(data.get("attrs", {})))
        span.duration_s = float(data.get("duration_s", 0.0))
        span.status = str(data.get("status", "ok"))
        span.events = [
            (float(event["offset_s"]), str(event["name"]), dict(event.get("attrs", {})))
            for event in data.get("events", ())
        ]
        span.children = [cls.from_dict(child) for child in data.get("children", ())]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_s:.6f}s, "
                f"{len(self.children)} children)")


class Tracer:
    """Builds span trees; all methods are no-ops while ``enabled`` is False."""

    def __init__(self, enabled: bool = False):
        self.enabled = bool(enabled)
        #: Finished top-level spans, oldest first.
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs):
        """Start a span for use as a context manager (``with tracer.span(...)``)."""
        if not self.enabled:
            return NULL_SPAN
        return self.start_span(name, **attrs)

    def start_span(self, name: str, **attrs):
        """Start a span explicitly; pair with :meth:`end_span`."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, attrs, tracer=self)
        self._stack.append(span)
        return span

    def end_span(self, span, **attrs) -> None:
        """Finish ``span``: stamp its duration and attach it to its parent.

        Unwinds any deeper spans left open by an exceptional exit (they are
        closed with the same end time, preserving tree shape).
        """
        if span is NULL_SPAN or not isinstance(span, Span):
            return
        if span not in self._stack:
            return  # already ended (double end_span is harmless)
        ended = time.perf_counter()
        while self._stack:
            top = self._stack.pop()
            top.duration_s = ended - top.started_s
            if top is span and attrs:
                top.attrs.update(attrs)
            parent = self._stack[-1] if self._stack else None
            if parent is not None:
                parent.children.append(top)
            else:
                self.roots.append(top)
            if top is span:
                break

    # -- introspection --------------------------------------------------
    def current(self):
        """The innermost open span, or :data:`NULL_SPAN`."""
        if not self.enabled or not self._stack:
            return NULL_SPAN
        return self._stack[-1]

    def adopt(self, span_dict: Optional[Dict[str, object]]) -> None:
        """Graft a worker's serialized span under the current span (or roots)."""
        if not self.enabled or not span_dict:
            return
        span = Span.from_dict(span_dict)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def drain_roots(self) -> List[Dict[str, object]]:
        """Serialize and clear the finished root spans."""
        roots, self.roots = self.roots, []
        return [root.to_dict() for root in roots]


def _enabled_from_env() -> bool:
    return os.environ.get("REPRO_OBS_TRACE", "") not in ("", "0", "false", "off")


_TRACER = Tracer(enabled=_enabled_from_env())


def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def span(name: str, **attrs):
    """Start a span on the process-wide tracer (context-manager style)."""
    return _TRACER.span(name, **attrs)


def current_span():
    """The innermost open span of the process-wide tracer."""
    return _TRACER.current()


@contextmanager
def tracing(enabled: bool = True):
    """Swap in a fresh tracer for a block; restores the previous on exit.

    >>> from repro.obs import trace
    >>> with trace.tracing() as tracer:
    ...     with trace.span("work"):
    ...         pass
    >>> len(tracer.roots)
    1
    """
    tracer = Tracer(enabled=enabled)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_span",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing",
]
