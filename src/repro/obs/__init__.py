"""Unified observability layer: tracing, metrics, run records, reporting.

``repro.obs`` is the measurement substrate every quantitative claim in the
reproduction rests on.  Four parts, one per module:

* :mod:`repro.obs.trace` -- nested :class:`~repro.obs.trace.Span` trees via
  a process-wide :class:`~repro.obs.trace.Tracer` (near-zero cost when
  disabled, per-worker buffers merged by the parallel-search coordinator);
* :mod:`repro.obs.metrics` -- the process-wide
  :class:`~repro.obs.metrics.MetricsRegistry` of counters/gauges/histograms
  fed by the solver, batch-evaluation and online layers at run boundaries;
* :mod:`repro.obs.recorder` -- the append-only JSONL
  :class:`~repro.obs.recorder.RunStore` persisting one
  :class:`~repro.obs.recorder.RunRecord` (scenario, solver, git rev, seed,
  stats, metrics snapshot, span tree) per observed solve or online run;
* :mod:`repro.obs.report` -- ``python -m repro.obs.report``: store summary,
  span flame view, and the ``--check-regressions`` CI perf gate comparing
  ``BENCH_*.json`` output against ``benchmarks/baselines/``.

:mod:`repro.obs.log` adds structured stdlib logging with run-id/span-id
context injection for the driver scripts; :mod:`repro.obs.instrument`
carries the solver-facing glue (scope depth, the ``instrument_solver``
decorator).  Everything is off by default and opt-in per process
(``REPRO_OBS_TRACE``, ``REPRO_OBS_RECORD``) or per block
(:func:`~repro.obs.trace.tracing`, :func:`~repro.obs.recorder.recording`).
"""

from repro.obs import instrument, log, metrics, recorder, report, trace
from repro.obs.metrics import MetricsRegistry, get_metrics
from repro.obs.recorder import RunRecord, RunStore, recording, run_context
from repro.obs.trace import Span, Tracer, current_span, get_tracer, span, tracing

__all__ = [
    "MetricsRegistry",
    "RunRecord",
    "RunStore",
    "Span",
    "Tracer",
    "current_span",
    "get_metrics",
    "get_tracer",
    "instrument",
    "log",
    "metrics",
    "recorder",
    "recording",
    "report",
    "run_context",
    "span",
    "trace",
    "tracing",
]
