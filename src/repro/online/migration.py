"""Migration planning and migration-aware TOC accounting.

Re-tiering is not free: every object moved between storage classes is read
sequentially off its source class and written sequentially onto its target
class, and while the copy is in flight the object occupies *both* classes.
This module prices a layout-to-layout transition so the online advisor can
charge that price against the projected TOC savings and only re-tier when
the move amortises within its horizon.

The cost model is deliberately linear in bytes moved, which makes it
conservative (per-GB transfer times and per-GB prices are both per-unit
constants of the class pair):

* ``seconds_per_gb(src, dst)`` -- one GB of pages sequentially read from
  ``src`` plus sequentially written to ``dst`` at the calibrated service
  times;
* ``cents_per_gb(src, dst)`` -- the double-occupancy charge: each moved GB
  pays both classes' hourly price for the duration of its own transfer;
* an optional *disruption* term prices the migration I/O time at a layout's
  hourly cost, exactly how the paper prices DSS workload time
  (``C(L) * t``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.layout import Layout
from repro.storage.io_profile import IOType
from repro.storage.simulator import IORequest
from repro.storage.storage_class import StorageSystem
from repro.units import (
    MS_PER_SECOND,
    PAGE_SIZE_BYTES,
    SECONDS_PER_HOUR,
    gb_to_pages,
)


@dataclass(frozen=True)
class ObjectMove:
    """One object's relocation between storage classes."""

    object_name: str
    size_gb: float
    source: str
    target: str


@dataclass(frozen=True)
class MigrationPlan:
    """The set of object moves turning one layout into another."""

    moves: Tuple[ObjectMove, ...]

    @classmethod
    def between(cls, current: Layout, target: Layout) -> "MigrationPlan":
        """Diff two layouts over the same objects into a move list."""
        if set(current.object_names) != set(target.object_names):
            raise ValueError("layouts must place the same objects to be diffed")
        moves: List[ObjectMove] = []
        for obj in current.objects:
            source = current.class_name_of(obj.name)
            destination = target.class_name_of(obj.name)
            if source != destination:
                moves.append(
                    ObjectMove(
                        object_name=obj.name,
                        size_gb=obj.size_gb,
                        source=source,
                        target=destination,
                    )
                )
        return cls(moves=tuple(moves))

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when the layouts already agree."""
        return not self.moves

    def bytes_moved_gb(self) -> float:
        """Total gigabytes relocated by the plan."""
        return sum(move.size_gb for move in self.moves)

    def bytes_by_class_pair(self) -> Dict[Tuple[str, str], float]:
        """Gigabytes moved per ``(source, target)`` class pair."""
        by_pair: Dict[Tuple[str, str], float] = {}
        for move in self.moves:
            key = (move.source, move.target)
            by_pair[key] = by_pair.get(key, 0.0) + move.size_gb
        return by_pair

    def describe(self) -> str:
        """Human-readable one-line-per-move summary."""
        if self.is_empty:
            return "no objects to move"
        return "; ".join(
            f"{move.object_name} {move.source}->{move.target} ({move.size_gb:.2f} GB)"
            for move in self.moves
        )


@dataclass(frozen=True)
class MigrationCost:
    """The priced outcome of one migration plan."""

    bytes_moved_gb: float
    bytes_by_class_pair: Dict[Tuple[str, str], float]
    io_time_s: float
    transfer_cents: float
    disruption_cents: float

    @property
    def cost_cents(self) -> float:
        """Total migration charge in cents (transfer plus disruption)."""
        return self.transfer_cents + self.disruption_cents


class MigrationCostModel:
    """Prices migration plans against a storage system's profiles and prices.

    Parameters
    ----------
    system:
        The storage system whose service times and prices apply.
    concurrency:
        Concurrency the migration batches are issued at (1: a single
        background mover thread, the default).
    page_size_bytes:
        Transfer granularity; objects are copied page by page.
    """

    def __init__(self, system: StorageSystem, concurrency: int = 1,
                 page_size_bytes: int = PAGE_SIZE_BYTES):
        self.system = system
        self.concurrency = concurrency
        self.page_size_bytes = page_size_bytes

    # ------------------------------------------------------------------
    # Per-GB unit constants of a class pair
    # ------------------------------------------------------------------
    def seconds_per_gb(self, source: str, target: str) -> float:
        """Seconds to read one GB from ``source`` and write it to ``target``."""
        pages = gb_to_pages(1.0, self.page_size_bytes)
        read_ms = self.system[source].service_time_ms(IOType.SEQ_READ, self.concurrency)
        write_ms = self.system[target].service_time_ms(IOType.SEQ_WRITE, self.concurrency)
        return pages * (read_ms + write_ms) / MS_PER_SECOND

    def cents_per_gb(self, source: str, target: str) -> float:
        """Double-occupancy charge for moving one GB between the pair.

        While a GB is in flight it is billed on both classes, so it pays
        ``(p_src + p_dst)`` cents/GB/hour for its own transfer duration.
        """
        prices = (
            self.system[source].price_cents_per_gb_hour
            + self.system[target].price_cents_per_gb_hour
        )
        return prices * (self.seconds_per_gb(source, target) / SECONDS_PER_HOUR)

    # ------------------------------------------------------------------
    def io_time_s(self, plan: MigrationPlan) -> float:
        """Total migration I/O time of a plan in seconds."""
        return sum(
            move.size_gb * self.seconds_per_gb(move.source, move.target)
            for move in plan.moves
        )

    def assess(self, plan: MigrationPlan,
               layout_cost_cents_per_hour: float = 0.0) -> MigrationCost:
        """Price a plan: bytes by pair, I/O time, transfer and disruption cost.

        ``layout_cost_cents_per_hour`` is the hourly cost of the layout the
        migration runs under (the *target* layout, conservatively: both
        copies of moved objects exist until the copy completes); the
        disruption term prices the migration I/O time at that rate, the
        same way the paper prices DSS workload time.
        """
        io_time = self.io_time_s(plan)
        transfer = sum(
            move.size_gb * self.cents_per_gb(move.source, move.target)
            for move in plan.moves
        )
        disruption = layout_cost_cents_per_hour * (io_time / SECONDS_PER_HOUR)
        return MigrationCost(
            bytes_moved_gb=plan.bytes_moved_gb(),
            bytes_by_class_pair=plan.bytes_by_class_pair(),
            io_time_s=io_time,
            transfer_cents=transfer,
            disruption_cents=disruption,
        )

    # ------------------------------------------------------------------
    def io_requests(self, plan: MigrationPlan) -> Iterator[Tuple[str, IORequest]]:
        """The migration's I/O batches for the device simulator.

        Yields ``(class_name, request)`` pairs -- a sequential-read batch
        against each move's source class followed by a sequential-write
        batch against its target class -- consumable by
        :meth:`repro.storage.simulator.MultiClassSimulator.run_batches`.
        """
        for move in plan.moves:
            pages = gb_to_pages(move.size_gb, self.page_size_bytes)
            yield move.source, IORequest(
                io_type=IOType.SEQ_READ, count=pages, object_name=move.object_name
            )
            yield move.target, IORequest(
                io_type=IOType.SEQ_WRITE, count=pages, object_name=move.object_name
            )


@dataclass(frozen=True)
class SimulatedMigrationCost:
    """A migration priced by *executing* its I/O on the device simulator.

    The byte batches of the plan run through
    :class:`~repro.storage.simulator.MultiClassSimulator`, sharing the
    devices with the epoch workload: each class's utilisation by the
    workload stretches the mover's effective transfer window (the mover only
    gets the idle fraction of a device's queue), so the double-occupancy
    charge grows with contention exactly as it would on real hardware.  The
    purely analytic :class:`MigrationCost` is kept as ``analytic`` for
    cross-checking -- with a deterministic simulator and an idle system the
    two agree bit for bit.
    """

    bytes_moved_gb: float
    bytes_by_class_pair: Dict[Tuple[str, str], float]
    #: Device busy time of the migration I/O itself (excludes queueing).
    io_time_s: float
    #: Contention-stretched in-flight time the double-occupancy charge covers.
    contended_time_s: float
    #: Workload utilisation per storage class during the epoch (0..1).
    utilization_by_class: Dict[str, float]
    #: Simulated migration busy time per storage class (milliseconds).
    busy_ms_by_class: Dict[str, float]
    transfer_cents: float
    disruption_cents: float
    #: The closed-form model's price of the same plan (the cross-check).
    analytic: MigrationCost

    @property
    def cost_cents(self) -> float:
        """Total migration charge in cents (transfer plus disruption)."""
        return self.transfer_cents + self.disruption_cents

    @property
    def contention_factor(self) -> float:
        """How much device contention stretched the transfer window."""
        if self.io_time_s <= 0:
            return 1.0
        return self.contended_time_s / self.io_time_s


class MigrationExecutor:
    """Executes migration plans on the device simulator, under workload load.

    Parameters
    ----------
    system:
        The storage system whose simulated devices service the batches.
    model:
        The analytic :class:`MigrationCostModel` providing batch geometry and
        the cross-check price (defaults to one over ``system``).
    jitter:
        Per-batch measurement noise of the simulator (``0`` keeps the run
        deterministic and makes the idle-system busy time equal the analytic
        ``io_time_s`` exactly).
    seed:
        Seed of the simulator's per-class noise streams.
    max_utilization:
        Cap on the workload utilisation a device may contribute to the
        contention factor; a fully saturated class would otherwise starve
        the mover forever (``1 / (1 - u)`` diverges).
    """

    def __init__(self, system: StorageSystem, model: Optional[MigrationCostModel] = None,
                 jitter: float = 0.0, seed: int = 2011,
                 max_utilization: float = 0.9):
        if not 0.0 <= max_utilization < 1.0:
            raise ValueError("utilisation cap must be in [0, 1)")
        self.system = system
        self.model = model or MigrationCostModel(system)
        self.jitter = jitter
        self.seed = seed
        self.max_utilization = max_utilization

    # ------------------------------------------------------------------
    def _utilizations(self, workload_result) -> Dict[str, float]:
        """Workload busy fraction per class over the epoch window."""
        if workload_result is None:
            return {}
        busy_by_class = getattr(workload_result, "busy_time_by_class_ms", None) or {}
        window_s = getattr(workload_result, "total_time_s", 0.0)
        if window_s <= 0:
            return {}
        return {
            class_name: min(busy_ms / MS_PER_SECOND / window_s, self.max_utilization)
            for class_name, busy_ms in busy_by_class.items()
        }

    def execute(self, plan: MigrationPlan, workload_result=None,
                layout_cost_cents_per_hour: float = 0.0) -> SimulatedMigrationCost:
        """Run the plan's batches through the simulator and price the result.

        ``workload_result`` is the epoch's
        :class:`~repro.dbms.executor.WorkloadRunResult` (or anything with
        ``busy_time_by_class_ms`` and ``total_time_s``); its per-class busy
        fractions become the background load the mover contends with.  Passing
        ``None`` prices an idle system, which reproduces the analytic model
        exactly when ``jitter`` is zero.
        """
        from repro.storage.simulator import MultiClassSimulator

        simulator = MultiClassSimulator(
            self.system, concurrency=self.model.concurrency,
            jitter=self.jitter, seed=self.seed,
        )
        utilization = self._utilizations(workload_result)

        # One geometry source: the analytic model's own batch stream yields
        # (source, read-batch), (target, write-batch) per move, in order.
        batches = self.model.io_requests(plan)
        busy_s_by_move: List[Tuple[ObjectMove, float, float]] = []
        for move in plan.moves:
            source_class, read_request = next(batches)
            target_class, write_request = next(batches)
            read_ms = simulator.submit(source_class, read_request)
            write_ms = simulator.submit(target_class, write_request)
            busy_s_by_move.append((move, read_ms / MS_PER_SECOND, write_ms / MS_PER_SECOND))

        io_time_s = 0.0
        contended_time_s = 0.0
        transfer_cents = 0.0
        for move, read_s, write_s in busy_s_by_move:
            idle_src = 1.0 - utilization.get(move.source, 0.0)
            idle_dst = 1.0 - utilization.get(move.target, 0.0)
            in_flight_s = read_s / idle_src + write_s / idle_dst
            io_time_s += read_s + write_s
            contended_time_s += in_flight_s
            prices = (
                self.system[move.source].price_cents_per_gb_hour
                + self.system[move.target].price_cents_per_gb_hour
            )
            # Double occupancy: the moved bytes are billed on both classes
            # for their (contention-stretched) in-flight time.
            transfer_cents += prices * (in_flight_s / SECONDS_PER_HOUR)
        disruption_cents = layout_cost_cents_per_hour * (contended_time_s / SECONDS_PER_HOUR)
        return SimulatedMigrationCost(
            bytes_moved_gb=plan.bytes_moved_gb(),
            bytes_by_class_pair=plan.bytes_by_class_pair(),
            io_time_s=io_time_s,
            contended_time_s=contended_time_s,
            utilization_by_class=utilization,
            busy_ms_by_class=simulator.busy_time_by_class_ms(),
            transfer_cents=transfer_cents,
            disruption_cents=disruption_cents,
            analytic=self.model.assess(
                plan, layout_cost_cents_per_hour=layout_cost_cents_per_hour
            ),
        )


@dataclass(frozen=True)
class ReProvisioningPolicy:
    """When is a re-tier worth its migration cost?

    The candidate layout's per-epoch TOC saving is projected over
    ``horizon_epochs`` (the amortization window -- how long the new layout
    is assumed to stay appropriate) and compared against the migration
    cost; the move happens only when the projected net saving exceeds
    ``min_saving_cents``.
    """

    horizon_epochs: int = 4
    min_saving_cents: float = 0.0

    def __post_init__(self) -> None:
        if self.horizon_epochs < 1:
            raise ValueError("amortization horizon must span at least one epoch")

    def projected_net_saving_cents(self, current_toc_cents: float,
                                   candidate_toc_cents: float,
                                   migration_cost_cents: float) -> float:
        """Projected saving over the horizon, net of the migration cost."""
        per_epoch = current_toc_cents - candidate_toc_cents
        return per_epoch * self.horizon_epochs - migration_cost_cents

    def should_migrate(self, current_toc_cents: float, candidate_toc_cents: float,
                       migration_cost_cents: float) -> bool:
        """True when the projected net saving clears the threshold."""
        return (
            self.projected_net_saving_cents(
                current_toc_cents, candidate_toc_cents, migration_cost_cents
            )
            > self.min_saving_cents
        )
