"""Drifting workload generation: time-varying phase schedules.

Real deployments do not run one fixed workload: traffic ramps, follows
diurnal cycles, spikes under flash crowds, and drifts between transactional
and analytical phases.  This module turns the repo's *static* workload
generators (TPC-C, TPC-H, synthetic) into an epoch-indexed sequence of
workloads by composing **phase workloads** under a **phase schedule** -- a
per-epoch weight vector over the phases.

Composition is kind-preserving:

* **DSS** phases contribute a weight-proportional prefix of their query
  stream per epoch; the contributions are interleaved by a seeded
  permutation, so the same seed reproduces the same epoch streams bit for
  bit.
* **OLTP** phases are blended by scaling each phase's transaction-mix
  weights (see :func:`repro.workloads.workload.blend_transaction_mixes`).

The schedules are deterministic closed forms (no RNG); the only randomness
is the per-epoch interleaving permutation, drawn from
``default_rng([seed, epoch])`` so epochs are independently reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.workloads.workload import (
    CrossKindWorkload,
    Workload,
    blend_transaction_mixes,
)


@dataclass(frozen=True)
class WorkloadPhase:
    """One named phase of a drifting workload (e.g. ``"oltp"`` / ``"olap"``)."""

    name: str
    workload: Workload


class PhaseSchedule:
    """A ``num_epochs x num_phases`` matrix of per-epoch phase weights.

    Each row is normalised to sum to 1.  The factory methods build the
    canonical drift shapes over two phases (A fading into B); arbitrary
    matrices can be passed directly for richer scenarios.
    """

    def __init__(self, phase_names: Sequence[str], weights: Sequence[Sequence[float]]):
        if not phase_names:
            raise WorkloadError("a phase schedule needs at least one phase")
        if not weights:
            raise WorkloadError("a phase schedule needs at least one epoch")
        self.phase_names: Tuple[str, ...] = tuple(phase_names)
        rows: List[Tuple[float, ...]] = []
        for epoch, row in enumerate(weights):
            if len(row) != len(self.phase_names):
                raise WorkloadError(
                    f"epoch {epoch} has {len(row)} weights for {len(self.phase_names)} phases"
                )
            if any(value < 0 for value in row):
                raise WorkloadError(f"epoch {epoch} has a negative phase weight")
            total = sum(row)
            if total <= 0:
                raise WorkloadError(f"epoch {epoch} has no positive phase weight")
            rows.append(tuple(value / total for value in row))
        self._weights: Tuple[Tuple[float, ...], ...] = tuple(rows)

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        """Number of epochs in the schedule."""
        return len(self._weights)

    def weights_at(self, epoch: int) -> Tuple[float, ...]:
        """The normalised phase weights of one epoch."""
        return self._weights[epoch]

    # ------------------------------------------------------------------
    # Canonical two-phase shapes
    # ------------------------------------------------------------------
    @staticmethod
    def _progress(epoch: int, num_epochs: int) -> float:
        """Position of an epoch in [0, 1] (0 for a single-epoch schedule)."""
        if num_epochs <= 1:
            return 0.0
        return epoch / (num_epochs - 1)

    @classmethod
    def crossfade(cls, num_epochs: int, phase_names: Sequence[str] = ("a", "b"),
                  shape: str = "smoothstep") -> "PhaseSchedule":
        """Phase A fades into phase B over the whole horizon.

        ``shape`` is ``"linear"`` or ``"smoothstep"`` (3t^2 - 2t^3, which
        holds the endpoints longer -- the OLTP-to-OLAP crossfade of the
        drift experiment).
        """
        if shape not in ("linear", "smoothstep"):
            raise WorkloadError(f"unknown crossfade shape {shape!r}")
        rows = []
        for epoch in range(num_epochs):
            t = cls._progress(epoch, num_epochs)
            if shape == "smoothstep":
                t = t * t * (3.0 - 2.0 * t)
            rows.append((1.0 - t, t))
        return cls(phase_names, rows)

    @classmethod
    def ramp(cls, num_epochs: int, start_epoch: int, end_epoch: int,
             phase_names: Sequence[str] = ("a", "b")) -> "PhaseSchedule":
        """Pure A until ``start_epoch``, linear ramp to pure B at ``end_epoch``."""
        if not 0 <= start_epoch < end_epoch < num_epochs:
            raise WorkloadError("ramp needs 0 <= start_epoch < end_epoch < num_epochs")
        rows = []
        for epoch in range(num_epochs):
            if epoch <= start_epoch:
                t = 0.0
            elif epoch >= end_epoch:
                t = 1.0
            else:
                t = (epoch - start_epoch) / (end_epoch - start_epoch)
            rows.append((1.0 - t, t))
        return cls(phase_names, rows)

    @classmethod
    def diurnal(cls, num_epochs: int, period: int,
                phase_names: Sequence[str] = ("day", "night")) -> "PhaseSchedule":
        """Sinusoidal day/night alternation with the given period (in epochs)."""
        if period < 2:
            raise WorkloadError("diurnal period must span at least two epochs")
        rows = []
        for epoch in range(num_epochs):
            night = 0.5 * (1.0 - math.cos(2.0 * math.pi * epoch / period))
            rows.append((1.0 - night, night))
        return cls(phase_names, rows)

    @classmethod
    def flash_crowd(cls, num_epochs: int, spike_epoch: int, width: int = 1,
                    phase_names: Sequence[str] = ("steady", "crowd")) -> "PhaseSchedule":
        """Steady phase A with a triangular phase-B spike around ``spike_epoch``."""
        if not 0 <= spike_epoch < num_epochs:
            raise WorkloadError("spike_epoch must lie inside the schedule")
        if width < 1:
            raise WorkloadError("flash crowd width must be >= 1")
        rows = []
        for epoch in range(num_epochs):
            distance = abs(epoch - spike_epoch)
            crowd = max(0.0, 1.0 - distance / width) if distance <= width else 0.0
            rows.append((1.0 - crowd, crowd))
        return cls(phase_names, rows)


@dataclass(frozen=True)
class EpochWorkload:
    """One epoch of a drifting workload."""

    epoch: int
    weights: Tuple[float, ...]
    workload: Workload

    @property
    def dominant_phase_index(self) -> int:
        """Index of the phase with the largest weight this epoch."""
        return max(range(len(self.weights)), key=lambda k: self.weights[k])


class DriftingWorkloadGenerator:
    """Materialises per-epoch workloads from phases and a schedule.

    Parameters
    ----------
    phases:
        The component workloads; all must share one kind and concurrency
        (the per-epoch result must be a single well-formed workload) unless
        ``cross_kind=True``, which allows OLTP and DSS phases side by side
        (same-kind phases still compose, the kinds are blended into
        :class:`~repro.workloads.workload.CrossKindWorkload` epochs).
    schedule:
        Per-epoch phase weights; ``schedule.phase_names`` must match the
        phase names in order.
    seed:
        Seed of the per-epoch interleaving permutation (DSS only).  Two
        generators built with equal phases, schedule and seed produce
        bitwise-identical epoch workloads.
    name:
        Prefix of the generated per-epoch workload names.
    """

    def __init__(self, phases: Sequence[WorkloadPhase], schedule: PhaseSchedule,
                 seed: int = 2011, name: str = "drift", cross_kind: bool = False):
        if not phases:
            raise WorkloadError("a drifting workload needs at least one phase")
        if tuple(phase.name for phase in phases) != schedule.phase_names:
            raise WorkloadError(
                "schedule phase names must match the workload phases in order"
            )
        kinds = {phase.workload.kind for phase in phases}
        if not kinds <= {"dss", "oltp"}:
            raise WorkloadError("drifting workload phases must be pure dss/oltp workloads")
        if len(kinds) != 1 and not cross_kind:
            raise WorkloadError(
                "all phases of a drifting workload must share one kind "
                "(pass cross_kind=True to crossfade OLTP and DSS phases)"
            )
        # Same-kind phases compose into one workload per epoch, so they must
        # agree on the parameters a single workload carries; across kinds the
        # components stay separate and may differ.
        for kind in kinds:
            same_kind = [phase.workload for phase in phases if phase.workload.kind == kind]
            if len({workload.concurrency for workload in same_kind}) != 1:
                raise WorkloadError(
                    f"all {kind} phases of a drifting workload must share one concurrency"
                )
            if kind == "oltp" and len({workload.duration_s for workload in same_kind}) != 1:
                # blend_transaction_mixes would reject this anyway, but only
                # at the first epoch whose weights actually mix the phases.
                raise WorkloadError(
                    "all OLTP phases of a drifting workload must share one measurement window"
                )
        self.phases = list(phases)
        self.schedule = schedule
        self.seed = seed
        self.name = name
        self.kind = kinds.pop() if len(kinds) == 1 else "mixed"

    # ------------------------------------------------------------------
    @property
    def num_epochs(self) -> int:
        """Number of epochs the generator produces."""
        return self.schedule.num_epochs

    def epoch_workload(self, epoch: int) -> EpochWorkload:
        """Materialise the workload of one epoch."""
        weights = self.schedule.weights_at(epoch)
        epoch_name = f"{self.name}-epoch{epoch:03d}"
        if self.kind == "oltp":
            workload = blend_transaction_mixes(
                [phase.workload for phase in self.phases],
                weights,
                name=epoch_name,
                description=self._describe(epoch, weights),
            )
        elif self.kind == "dss":
            workload = self._compose_stream(epoch, weights, epoch_name)
        else:
            workload = self._compose_cross_kind(epoch, weights, epoch_name)
        return EpochWorkload(epoch=epoch, weights=weights, workload=workload)

    def epochs(self) -> Iterator[EpochWorkload]:
        """Iterate over every epoch workload of the schedule."""
        for epoch in range(self.num_epochs):
            yield self.epoch_workload(epoch)

    # ------------------------------------------------------------------
    def _compose_stream(self, epoch: int, weights: Tuple[float, ...],
                        epoch_name: str,
                        phases: Optional[Sequence[WorkloadPhase]] = None,
                        description: Optional[str] = None) -> Workload:
        """Weight-proportional interleave of the phase query streams.

        Each phase contributes ``round(weight * len(stream))`` queries (its
        stream prefix -- streams are repetition-structured, so a prefix is
        representative); at least one query survives from the dominant
        phase so every epoch workload is non-empty.  The contributions are
        shuffled by a per-epoch seeded permutation.
        """
        chosen = self.phases if phases is None else list(phases)
        contributions: List = []
        for phase, weight in zip(chosen, weights):
            stream = phase.workload.queries
            take = int(round(weight * len(stream)))
            contributions.extend(stream[:take])
        if not contributions:
            dominant = max(range(len(weights)), key=lambda k: weights[k])
            contributions.append(chosen[dominant].workload.queries[0])
        rng = np.random.default_rng([self.seed, epoch])
        order = rng.permutation(len(contributions))
        queries = tuple(contributions[position] for position in order)
        if description is None:
            description = self._describe(epoch, weights)
        return chosen[0].workload.with_stream(
            queries, name=epoch_name, description=description
        )

    def _compose_cross_kind(self, epoch: int, weights: Tuple[float, ...],
                            epoch_name: str):
        """One epoch of an OLTP<->DSS crossfade.

        Phases are partitioned by kind; each kind's phases compose into one
        pure workload under their renormalised weights (exactly as a
        single-kind generator would), and the kind groups are blended by
        their summed weights.  Epochs where only one kind carries weight
        materialise as that pure workload, so the endpoints of a cross-kind
        crossfade are ordinary :class:`~repro.workloads.workload.Workload`
        instances; in between the epoch is a
        :class:`~repro.workloads.workload.CrossKindWorkload`.
        """
        groups: List[Tuple[str, List[int]]] = []
        for index, phase in enumerate(self.phases):
            kind = phase.workload.kind
            for group_kind, members in groups:
                if group_kind == kind:
                    members.append(index)
                    break
            else:
                groups.append((kind, [index]))

        components: List[Tuple[Workload, float]] = []
        for kind, members in groups:
            kind_weight = sum(weights[index] for index in members)
            if kind_weight <= 0:
                continue
            sub_phases = [self.phases[index] for index in members]
            sub_weights = tuple(weights[index] / kind_weight for index in members)
            sub_name = f"{epoch_name}-{kind}"
            if kind == "oltp":
                composed = blend_transaction_mixes(
                    [phase.workload for phase in sub_phases],
                    sub_weights,
                    name=sub_name,
                    description=self._describe(epoch, weights),
                )
            else:
                # The sub-stream carries the *epoch's* description (full
                # phase names against full weights); the renormalised
                # sub-weights only index the kind's own phases and would
                # mislabel the blend if zipped against self.phases.
                composed = self._compose_stream(
                    epoch, sub_weights, sub_name, phases=sub_phases,
                    description=self._describe(epoch, weights),
                )
            components.append((composed, kind_weight))
        if len(components) == 1:
            return components[0][0]
        return CrossKindWorkload(
            name=epoch_name,
            components=tuple(components),
            description=self._describe(epoch, weights),
        )

    def _describe(self, epoch: int, weights: Tuple[float, ...]) -> str:
        blend = ", ".join(
            f"{phase.name} {weight * 100:.0f}%"
            for phase, weight in zip(self.phases, weights)
        )
        return f"epoch {epoch} of {self.name} ({blend})"
