"""Telemetry aggregation and workload-drift detection.

The online advisor cannot see workload *definitions* change -- in a real
deployment it only sees the I/O stream.  This module watches exactly that:
per-epoch, per-object I/O counts taken from the executor/simulator's
:class:`~repro.dbms.executor.WorkloadRunResult`, folded into fresh
:class:`~repro.core.profiles.WorkloadProfileSet`s, and compared against the
telemetry observed when the current layout was last provisioned.

Drift is scored on two axes:

* **share drift** -- the total-variation distance between the normalised
  per-object I/O distributions (where the I/O goes moved);
* **volume drift** -- the relative change in total I/O count (how much I/O
  arrives changed).

Either exceeding its threshold marks the epoch as drifted, which is the
controller's trigger to re-profile and re-optimize.  A workload that does
not change (and is observed noise-free, i.e. in estimate mode) scores 0.0
on both axes and therefore never triggers a re-tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.profiles import BaselinePlacement, WorkloadProfileSet
from repro.storage.storage_class import StorageSystem


@dataclass(frozen=True)
class EpochTelemetry:
    """Aggregated per-object I/O counts of one epoch."""

    epoch: int
    workload_name: str
    io_by_object: Dict[str, Dict[object, float]]
    total_ios: float

    def object_totals(self) -> Dict[str, float]:
        """Total I/O count per object (all I/O types pooled)."""
        return {
            object_name: sum(by_type.values())
            for object_name, by_type in self.io_by_object.items()
        }


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one drift check."""

    drifted: bool
    share_distance: float
    volume_change: float
    reason: str


@dataclass(frozen=True)
class DriftThresholds:
    """Configurable sensitivities of the drift detector.

    ``share_threshold`` bounds the total-variation distance between
    normalised per-object I/O distributions (0..1); ``volume_threshold``
    bounds the relative change in total I/O volume.  ``min_epochs_between``
    is a cooldown: after a re-provision, at least that many epochs must
    elapse before the next one (thrash protection).
    """

    share_threshold: float = 0.10
    volume_threshold: float = 0.50
    min_epochs_between: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.share_threshold <= 1.0:
            raise ValueError("share threshold must be in (0, 1]")
        if self.volume_threshold <= 0:
            raise ValueError("volume threshold must be positive")
        if self.min_epochs_between < 0:
            raise ValueError("cooldown cannot be negative")


class TelemetryMonitor:
    """Aggregates epoch telemetry and flags workload drift.

    Parameters
    ----------
    system:
        The storage system (profile sets carry it for service-time lookups).
    thresholds:
        Drift sensitivities (:class:`DriftThresholds`).
    concurrency:
        Concurrency calibration point recorded in emitted profile sets.
    """

    def __init__(self, system: StorageSystem,
                 thresholds: Optional[DriftThresholds] = None,
                 concurrency: int = 1):
        self.system = system
        self.thresholds = thresholds or DriftThresholds()
        self.concurrency = concurrency
        self.history: List[EpochTelemetry] = []
        self._reference: Optional[EpochTelemetry] = None
        self._last_reprovision_epoch: Optional[int] = None

    # ------------------------------------------------------------------
    @staticmethod
    def _telemetry_from(epoch: int, run_result) -> EpochTelemetry:
        io_by_object = {
            object_name: dict(by_type)
            for object_name, by_type in run_result.io_by_object.items()
        }
        return EpochTelemetry(
            epoch=epoch,
            workload_name=run_result.workload_name,
            io_by_object=io_by_object,
            total_ios=sum(sum(by_type.values()) for by_type in io_by_object.values()),
        )

    def observe(self, epoch: int, run_result) -> EpochTelemetry:
        """Fold one epoch's run result into the telemetry history."""
        telemetry = self._telemetry_from(epoch, run_result)
        self.history.append(telemetry)
        if self._reference is None:
            self._reference = telemetry
        return telemetry

    def profile_set(self, pattern: Optional[BaselinePlacement] = None) -> WorkloadProfileSet:
        """A fresh single-pattern profile set from the latest telemetry.

        The paper's TPC-C profiling shows a single observed baseline is
        enough when plans are placement-stable; the pattern defaults to the
        all-most-expensive placement so
        :meth:`WorkloadProfileSet._lookup`'s single-profile fallback serves
        every requested placement.
        """
        if not self.history:
            raise ValueError("no telemetry observed yet")
        latest = self.history[-1]
        chosen = tuple(pattern) if pattern is not None else (
            self.system.most_expensive().name,
        )
        profile = WorkloadProfileSet(system=self.system, concurrency=self.concurrency)
        profile.add(chosen, latest.io_by_object)
        return profile

    # ------------------------------------------------------------------
    def check_drift(self) -> DriftDecision:
        """Score the latest epoch against the last-provisioned reference."""
        if not self.history:
            return DriftDecision(False, 0.0, 0.0, "no telemetry yet")
        latest = self.history[-1]
        reference = self._reference
        if reference is None or reference is latest:
            return DriftDecision(False, 0.0, 0.0, "reference epoch")

        share = self._share_distance(reference, latest)
        volume = self._volume_change(reference, latest)

        if self._last_reprovision_epoch is not None:
            elapsed = latest.epoch - self._last_reprovision_epoch
            if elapsed < self.thresholds.min_epochs_between:
                return DriftDecision(
                    False, share, volume,
                    f"cooldown ({elapsed}/{self.thresholds.min_epochs_between} epochs)",
                )

        if share > self.thresholds.share_threshold:
            return DriftDecision(
                True, share, volume,
                f"I/O share moved {share:.1%} > {self.thresholds.share_threshold:.1%}",
            )
        if volume > self.thresholds.volume_threshold:
            return DriftDecision(
                True, share, volume,
                f"I/O volume changed {volume:.1%} > {self.thresholds.volume_threshold:.1%}",
            )
        return DriftDecision(False, share, volume, "within thresholds")

    def mark_reprovisioned(self, epoch: int, run_result=None) -> None:
        """Reset the drift reference after a re-provision at ``epoch``.

        Telemetry is layout-dependent (a re-tier can flip plans and shift
        I/O between objects), so callers should pass the ``run_result``
        observed *under the newly deployed layout* -- otherwise the next
        epoch's unchanged workload would score spurious drift against
        counts measured on the old layout.
        """
        if run_result is not None:
            self._reference = self._telemetry_from(epoch, run_result)
        elif self.history:
            self._reference = self.history[-1]
        self._last_reprovision_epoch = epoch

    # ------------------------------------------------------------------
    @staticmethod
    def _share_distance(a: EpochTelemetry, b: EpochTelemetry) -> float:
        """Total-variation distance between normalised per-object I/O shares."""
        totals_a = a.object_totals()
        totals_b = b.object_totals()
        sum_a = sum(totals_a.values())
        sum_b = sum(totals_b.values())
        if sum_a <= 0 or sum_b <= 0:
            return 0.0 if sum_a == sum_b else 1.0
        names = set(totals_a) | set(totals_b)
        distance = 0.0
        for name in names:
            distance += abs(totals_a.get(name, 0.0) / sum_a - totals_b.get(name, 0.0) / sum_b)
        return 0.5 * distance

    @staticmethod
    def _volume_change(a: EpochTelemetry, b: EpochTelemetry) -> float:
        """Relative change in total I/O volume."""
        if a.total_ios <= 0:
            return 0.0 if b.total_ios <= 0 else float("inf")
        return abs(b.total_ios - a.total_ios) / a.total_ios
