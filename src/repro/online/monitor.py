"""Telemetry aggregation, workload-drift detection and trend forecasting.

The online advisor cannot see workload *definitions* change -- in a real
deployment it only sees the I/O stream.  This module watches exactly that:
per-epoch, per-object I/O counts taken from the executor/simulator's
:class:`~repro.dbms.executor.WorkloadRunResult`, folded into fresh
:class:`~repro.core.profiles.WorkloadProfileSet`s, and compared against the
telemetry observed when the current layout was last provisioned.

Drift is scored on two axes:

* **share drift** -- the total-variation distance between the normalised
  per-object I/O distributions (where the I/O goes moved);
* **volume drift** -- the relative change in total I/O count (how much I/O
  arrives changed).

Either exceeding its threshold marks the epoch as drifted, which is the
controller's trigger to re-profile and re-optimize.  A workload that does
not change (and is observed noise-free, i.e. in estimate mode) scores 0.0
on both axes and therefore never triggers a re-tier.

Two consumers sit on top of the telemetry history:

* :meth:`TelemetryMonitor.profile_set` turns the latest (or any projected)
  per-object counts into a :class:`~repro.core.profiles.WorkloadProfileSet`,
  which is how the controller re-profiles from *measurements* instead of
  replaying the workload through the estimator;
* :class:`TrendPredictor` extrapolates the per-object I/O-share trend over
  the telemetry window (linear least-squares or EWMA slope) so the
  controller can re-tier *before* a ramp or flash crowd peaks -- the
  anticipated drift decision is gated by exactly the same thresholds (and
  cooldown) as the reactive one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.profiles import BaselinePlacement, WorkloadProfileSet
from repro.exceptions import TelemetryGapError
from repro.storage.storage_class import StorageSystem


@dataclass(frozen=True)
class EpochTelemetry:
    """Aggregated per-object I/O counts of one epoch."""

    epoch: int
    workload_name: str
    io_by_object: Dict[str, Dict[object, float]]
    total_ios: float

    def object_totals(self) -> Dict[str, float]:
        """Total I/O count per object (all I/O types pooled)."""
        return {
            object_name: sum(by_type.values())
            for object_name, by_type in self.io_by_object.items()
        }


@dataclass(frozen=True)
class DriftDecision:
    """Outcome of one drift check.

    ``in_cooldown`` is True when the thresholds were not even consulted
    because too few epochs have elapsed since the last re-provision --
    consumers adding their own triggers (the controller's SLA-violation
    re-tier) must honour it to keep the thrash protection intact.
    """

    drifted: bool
    share_distance: float
    volume_change: float
    reason: str
    in_cooldown: bool = False


@dataclass(frozen=True)
class PredictionDecision:
    """Outcome of one trend-extrapolation check.

    ``share_distance`` / ``volume_change`` score the *projected* telemetry
    (``epochs_ahead`` epochs past the latest observation) against the
    last-provisioned reference, on the same two axes as
    :class:`DriftDecision`; ``io_by_object`` carries the projected per-object
    counts so the controller can re-profile against the anticipated workload
    rather than the current one.
    """

    predicted: bool
    share_distance: float
    volume_change: float
    epochs_ahead: int
    reason: str
    io_by_object: Dict[str, Dict[object, float]] = field(
        default_factory=dict, repr=False, compare=False
    )


@dataclass(frozen=True)
class DriftThresholds:
    """Configurable sensitivities of the drift detector.

    ``share_threshold`` bounds the total-variation distance between
    normalised per-object I/O distributions (0..1); ``volume_threshold``
    bounds the relative change in total I/O volume.  ``min_epochs_between``
    is a cooldown: after a re-provision, at least that many epochs must
    elapse before the next one (thrash protection).
    """

    share_threshold: float = 0.10
    volume_threshold: float = 0.50
    min_epochs_between: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.share_threshold <= 1.0:
            raise ValueError("share threshold must be in (0, 1]")
        if self.volume_threshold <= 0:
            raise ValueError("volume threshold must be positive")
        if self.min_epochs_between < 0:
            raise ValueError("cooldown cannot be negative")


@dataclass(frozen=True)
class OutlierPolicy:
    """MAD-based clamp for physically implausible telemetry epochs.

    A flaky I/O counter can report 25x the real traffic for one epoch; fed
    raw into the drift detector that single epoch would trigger a re-tier
    (and pollute the trend window) for a workload that never changed.  The
    clamp scores each incoming epoch's total I/O count against the median of
    the last ``window`` accepted epochs: a deviation beyond ``k`` times the
    median absolute deviation -- floored at ``rel_floor`` of the median so a
    noise-free history cannot make the test infinitely strict -- is treated
    as a counter glitch, and the epoch's counts are rescaled to the median
    volume (its *shares* are preserved: only the implausible magnitude is
    clamped).  Fewer than ``min_history`` accepted epochs, or a non-positive
    median, disables the test.
    """

    window: int = 5
    k: float = 6.0
    rel_floor: float = 0.05
    min_history: int = 3

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("outlier window must span at least two epochs")
        if self.k <= 0:
            raise ValueError("the MAD multiplier must be positive")
        if self.rel_floor < 0:
            raise ValueError("the relative floor cannot be negative")
        if self.min_history < 2:
            raise ValueError("need at least two epochs of history to clamp against")


@dataclass(frozen=True)
class TrendPredictor:
    """Extrapolates the per-object I/O-share trend of the telemetry window.

    The predictor fits one slope per object to the I/O *shares* of the last
    ``window`` epochs observed under the currently deployed layout (telemetry
    from before the last re-provision is layout-dependent and excluded), plus
    one slope to the total I/O volume, and projects both ``horizon_epochs``
    ahead.  Projected shares are clipped at zero and renormalised; projected
    counts distribute each object's projected total over its I/O types in the
    proportions of the latest observation.

    ``method`` selects the slope estimator:

    * ``"linear"`` -- ordinary least squares over the window (robust to a
      single noisy epoch, the default);
    * ``"ewma"`` -- exponentially weighted average of the consecutive
      per-epoch deltas with smoothing ``ewma_alpha`` (reacts faster to a
      fresh ramp).

    With fewer than ``min_history`` observations in the window no prediction
    is made -- in particular, a freshly re-provisioned layout must accumulate
    evidence again before the predictor can fire, which is the predictive
    path's thrash protection on top of the monitor's cooldown.
    """

    window: int = 4
    horizon_epochs: int = 2
    method: str = "linear"
    ewma_alpha: float = 0.5
    min_history: int = 3

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("trend window must span at least two epochs")
        if self.horizon_epochs < 1:
            raise ValueError("prediction horizon must be at least one epoch")
        if self.method not in ("linear", "ewma"):
            raise ValueError(f"unknown trend method {self.method!r}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("EWMA smoothing must be in (0, 1]")
        if self.min_history < 2:
            raise ValueError("need at least two observations to fit a trend")
        if self.min_history > self.window:
            raise ValueError(
                "min_history cannot exceed the window: the truncated "
                "telemetry could never satisfy it and the predictor would "
                "silently never fire"
            )

    # ------------------------------------------------------------------
    def _slope(self, epochs: Sequence[float], values: Sequence[float]) -> float:
        """Per-epoch slope of one series under the configured estimator."""
        if self.method == "linear":
            x = np.asarray(epochs, dtype=float)
            y = np.asarray(values, dtype=float)
            x_centred = x - x.mean()
            denominator = float(np.dot(x_centred, x_centred))
            if denominator <= 0.0:
                return 0.0
            return float(np.dot(x_centred, y - y.mean()) / denominator)
        slope = 0.0
        primed = False
        for position in range(1, len(values)):
            gap = epochs[position] - epochs[position - 1]
            if gap <= 0:
                continue
            delta = (values[position] - values[position - 1]) / gap
            if not primed:
                slope, primed = delta, True
            else:
                slope = self.ewma_alpha * delta + (1.0 - self.ewma_alpha) * slope
        return slope

    def project(self, telemetry_window: Sequence[EpochTelemetry]
                ) -> Optional[EpochTelemetry]:
        """The projected telemetry ``horizon_epochs`` past the latest epoch.

        Returns ``None`` when the window holds fewer than ``min_history``
        observations.  The projection is deterministic (no RNG).
        """
        entries = list(telemetry_window)[-self.window:]
        if len(entries) < self.min_history:
            return None
        latest = entries[-1]
        epochs = [float(entry.epoch) for entry in entries]
        totals = [entry.total_ios for entry in entries]

        object_names: List[str] = []
        for entry in entries:
            for name in entry.io_by_object:
                if name not in object_names:
                    object_names.append(name)
        totals_by_entry = [entry.object_totals() for entry in entries]
        sums_by_entry = [sum(totals.values()) for totals in totals_by_entry]
        share_series: Dict[str, List[float]] = {
            name: [
                totals.get(name, 0.0) / total if total > 0 else 0.0
                for totals, total in zip(totals_by_entry, sums_by_entry)
            ]
            for name in object_names
        }

        volume_hat = max(totals[-1] + self._slope(epochs, totals) * self.horizon_epochs, 0.0)
        shares_hat = {
            name: max(series[-1] + self._slope(epochs, series) * self.horizon_epochs, 0.0)
            for name, series in share_series.items()
        }
        share_total = sum(shares_hat.values())
        if share_total <= 0.0:
            shares_hat = {name: series[-1] for name, series in share_series.items()}
            share_total = sum(shares_hat.values())
            if share_total <= 0.0:
                return None
        shares_hat = {name: share / share_total for name, share in shares_hat.items()}

        io_by_object: Dict[str, Dict[object, float]] = {}
        for name in object_names:
            projected_total = shares_hat[name] * volume_hat
            if projected_total <= 0.0:
                continue
            by_type = None
            for entry in reversed(entries):
                if name in entry.io_by_object and sum(entry.io_by_object[name].values()) > 0:
                    by_type = entry.io_by_object[name]
                    break
            if by_type is None:
                continue
            type_total = sum(by_type.values())
            io_by_object[name] = {
                io_type: projected_total * (count / type_total)
                for io_type, count in by_type.items()
            }
        return EpochTelemetry(
            epoch=latest.epoch + self.horizon_epochs,
            workload_name=latest.workload_name,
            io_by_object=io_by_object,
            total_ios=sum(sum(by_type.values()) for by_type in io_by_object.values()),
        )


class TelemetryMonitor:
    """Aggregates epoch telemetry and flags workload drift.

    Parameters
    ----------
    system:
        The storage system (profile sets carry it for service-time lookups).
    thresholds:
        Drift sensitivities (:class:`DriftThresholds`).
    concurrency:
        Concurrency calibration point recorded in emitted profile sets.
    outlier_policy:
        Optional :class:`OutlierPolicy` enabling the MAD clamp on incoming
        telemetry; ``None`` (the default) accepts every epoch verbatim.

    Recovery actions the monitor takes on faulty telemetry (outlier clamps,
    recorded gaps) accumulate in :attr:`incidents`;
    :meth:`drain_incidents` hands them to the controller for the epoch
    record.
    """

    def __init__(self, system: StorageSystem,
                 thresholds: Optional[DriftThresholds] = None,
                 concurrency: int = 1,
                 outlier_policy: Optional[OutlierPolicy] = None):
        self.system = system
        self.thresholds = thresholds or DriftThresholds()
        self.concurrency = concurrency
        self.outlier_policy = outlier_policy
        self.history: List[EpochTelemetry] = []
        self.incidents: List[str] = []
        #: Epochs whose telemetry never arrived (dropouts); see observe_gap.
        self.gap_epochs: List[int] = []
        self._reference: Optional[EpochTelemetry] = None
        self._last_reprovision_epoch: Optional[int] = None
        self._window: List[EpochTelemetry] = []

    # ------------------------------------------------------------------
    @staticmethod
    def _telemetry_from(epoch: int, run_result) -> EpochTelemetry:
        io_by_object = {
            object_name: dict(by_type)
            for object_name, by_type in run_result.io_by_object.items()
        }
        return EpochTelemetry(
            epoch=epoch,
            workload_name=run_result.workload_name,
            io_by_object=io_by_object,
            total_ios=sum(sum(by_type.values()) for by_type in io_by_object.values()),
        )

    def observe(self, epoch: int, run_result) -> EpochTelemetry:
        """Fold one epoch's run result into the telemetry history.

        With an :class:`OutlierPolicy` configured, an epoch whose total I/O
        volume is implausible against the recent window is clamped to the
        median volume (shares preserved) before entering the history, and
        the clamp is recorded as an incident.
        """
        telemetry = self._telemetry_from(epoch, run_result)
        telemetry = self._clamp_outlier(telemetry)
        self.history.append(telemetry)
        self._window.append(telemetry)
        if self._reference is None:
            self._reference = telemetry
        return telemetry

    def observe_gap(self, epoch: int) -> None:
        """Record that ``epoch``'s telemetry never arrived (a dropout).

        The history is left untouched -- fabricating counts would corrupt
        both the drift reference and the trend window -- so drift checks
        keep scoring the last *real* observation and the controller falls
        back to estimator-derived profiles for any re-profiling this epoch.
        """
        self.gap_epochs.append(epoch)
        self.incidents.append(
            f"epoch {epoch}: telemetry dropout; holding last observation and "
            "falling back to estimator profiles"
        )

    def drain_incidents(self) -> List[str]:
        """Return and clear the accumulated telemetry incidents."""
        drained, self.incidents = self.incidents, []
        return drained

    def _clamp_outlier(self, telemetry: EpochTelemetry) -> EpochTelemetry:
        """Apply the MAD clamp to one incoming epoch (no-op without policy)."""
        policy = self.outlier_policy
        if policy is None or len(self.history) < policy.min_history:
            return telemetry
        totals = np.array(
            [entry.total_ios for entry in self.history[-policy.window:]], dtype=float
        )
        median = float(np.median(totals))
        if median <= 0.0:
            return telemetry
        mad = float(np.median(np.abs(totals - median)))
        threshold = policy.k * max(mad, policy.rel_floor * median)
        deviation = abs(telemetry.total_ios - median)
        if deviation <= threshold or telemetry.total_ios <= 0.0:
            return telemetry
        scale = median / telemetry.total_ios
        self.incidents.append(
            f"epoch {telemetry.epoch}: telemetry outlier clamped "
            f"({telemetry.total_ios:.0f} I/Os vs median {median:.0f}, "
            f"deviation {deviation:.0f} > {threshold:.0f}); volume rescaled "
            f"x{scale:.3g} with shares preserved"
        )
        return EpochTelemetry(
            epoch=telemetry.epoch,
            workload_name=telemetry.workload_name,
            io_by_object={
                object_name: {
                    io_type: count * scale for io_type, count in by_type.items()
                }
                for object_name, by_type in telemetry.io_by_object.items()
            },
            total_ios=telemetry.total_ios * scale,
        )

    def trend_window(self) -> List[EpochTelemetry]:
        """Telemetry observed under the *currently deployed* layout.

        Re-tiers can flip plans and shift I/O between objects, so slopes
        fitted across a re-provision boundary would mistake the layout change
        for workload drift; the window therefore restarts at every
        :meth:`mark_reprovisioned` (seeded with the rebased reference).
        """
        return list(self._window)

    def profile_set(self, pattern: Optional[BaselinePlacement] = None,
                    concurrency: Optional[int] = None) -> WorkloadProfileSet:
        """A fresh single-pattern profile set from the latest telemetry.

        The paper's TPC-C profiling shows a single observed baseline is
        enough when plans are placement-stable; the pattern defaults to the
        all-most-expensive placement so
        :meth:`WorkloadProfileSet._lookup`'s single-profile fallback serves
        every requested placement.  ``concurrency`` overrides the monitor's
        calibration point (the controller passes the epoch workload's own
        concurrency when kinds drift).
        """
        if not self.history:
            raise TelemetryGapError("no telemetry observed yet")
        return self.profile_set_from_counts(
            self.history[-1].io_by_object, pattern=pattern, concurrency=concurrency
        )

    def profile_set_from_counts(
        self,
        io_by_object: Dict[str, Dict[object, float]],
        pattern: Optional[BaselinePlacement] = None,
        concurrency: Optional[int] = None,
    ) -> WorkloadProfileSet:
        """Wrap arbitrary per-object counts (observed or projected) into a
        single-pattern profile set -- the common carrier for telemetry-driven
        and predictive re-profiling."""
        chosen = tuple(pattern) if pattern is not None else (
            self.system.most_expensive().name,
        )
        profile = WorkloadProfileSet(
            system=self.system,
            concurrency=self.concurrency if concurrency is None else concurrency,
        )
        profile.add(chosen, io_by_object)
        return profile

    # ------------------------------------------------------------------
    def check_drift(self) -> DriftDecision:
        """Score the latest epoch against the last-provisioned reference."""
        if not self.history:
            return DriftDecision(False, 0.0, 0.0, "no telemetry yet")
        latest = self.history[-1]
        reference = self._reference
        if reference is None or reference is latest:
            return DriftDecision(False, 0.0, 0.0, "reference epoch")

        share = self._share_distance(reference, latest)
        volume = self._volume_change(reference, latest)

        if self._last_reprovision_epoch is not None:
            elapsed = latest.epoch - self._last_reprovision_epoch
            if elapsed < self.thresholds.min_epochs_between:
                return DriftDecision(
                    False, share, volume,
                    f"cooldown ({elapsed}/{self.thresholds.min_epochs_between} epochs)",
                    in_cooldown=True,
                )

        if share > self.thresholds.share_threshold:
            return DriftDecision(
                True, share, volume,
                f"I/O share moved {share:.1%} > {self.thresholds.share_threshold:.1%}",
            )
        if volume > self.thresholds.volume_threshold:
            return DriftDecision(
                True, share, volume,
                f"I/O volume changed {volume:.1%} > {self.thresholds.volume_threshold:.1%}",
            )
        return DriftDecision(False, share, volume, "within thresholds")

    def check_predicted_drift(self, predictor: TrendPredictor) -> PredictionDecision:
        """Score the predictor's projected telemetry against the reference.

        The projection is gated by the same thresholds and re-provision
        cooldown as :meth:`check_drift`, so a predictive controller can never
        re-tier more often than its thrash protection allows; it only gets to
        re-tier *earlier* when the trend says the thresholds are about to be
        crossed.
        """
        reference = self._reference
        if reference is None or not self.history:
            return PredictionDecision(False, 0.0, 0.0, predictor.horizon_epochs,
                                      "no telemetry yet")
        latest = self.history[-1]
        if self._last_reprovision_epoch is not None:
            elapsed = latest.epoch - self._last_reprovision_epoch
            if elapsed < self.thresholds.min_epochs_between:
                return PredictionDecision(
                    False, 0.0, 0.0, predictor.horizon_epochs,
                    f"cooldown ({elapsed}/{self.thresholds.min_epochs_between} epochs)",
                )
        projected = predictor.project(self.trend_window())
        if projected is None:
            return PredictionDecision(
                False, 0.0, 0.0, predictor.horizon_epochs,
                f"insufficient telemetry ({len(self._window)}/{predictor.min_history} epochs)",
            )
        share = self._share_distance(reference, projected)
        volume = self._volume_change(reference, projected)
        if share > self.thresholds.share_threshold:
            return PredictionDecision(
                True, share, volume, predictor.horizon_epochs,
                f"projected I/O share moves {share:.1%} > "
                f"{self.thresholds.share_threshold:.1%} within "
                f"{predictor.horizon_epochs} epochs",
                io_by_object=projected.io_by_object,
            )
        if volume > self.thresholds.volume_threshold:
            return PredictionDecision(
                True, share, volume, predictor.horizon_epochs,
                f"projected I/O volume changes {volume:.1%} > "
                f"{self.thresholds.volume_threshold:.1%} within "
                f"{predictor.horizon_epochs} epochs",
                io_by_object=projected.io_by_object,
            )
        return PredictionDecision(False, share, volume, predictor.horizon_epochs,
                                  "projection within thresholds")

    def mark_reprovisioned(self, epoch: int, run_result=None) -> None:
        """Reset the drift reference after a re-provision at ``epoch``.

        Telemetry is layout-dependent (a re-tier can flip plans and shift
        I/O between objects), so callers should pass the ``run_result``
        observed *under the newly deployed layout* -- otherwise the next
        epoch's unchanged workload would score spurious drift against
        counts measured on the old layout.  The trend window restarts at the
        new reference.
        """
        if run_result is not None:
            self._reference = self._telemetry_from(epoch, run_result)
        elif self.history:
            self._reference = self.history[-1]
        self._last_reprovision_epoch = epoch
        self._window = [self._reference] if self._reference is not None else []

    # ------------------------------------------------------------------
    @staticmethod
    def _share_distance(a: EpochTelemetry, b: EpochTelemetry) -> float:
        """Total-variation distance between normalised per-object I/O shares."""
        totals_a = a.object_totals()
        totals_b = b.object_totals()
        sum_a = sum(totals_a.values())
        sum_b = sum(totals_b.values())
        if sum_a <= 0 or sum_b <= 0:
            return 0.0 if sum_a == sum_b else 1.0
        names = set(totals_a) | set(totals_b)
        distance = 0.0
        for name in names:
            distance += abs(totals_a.get(name, 0.0) / sum_a - totals_b.get(name, 0.0) / sum_b)
        return 0.5 * distance

    @staticmethod
    def _volume_change(a: EpochTelemetry, b: EpochTelemetry) -> float:
        """Relative change in total I/O volume."""
        if a.total_ios <= 0:
            return 0.0 if b.total_ios <= 0 else float("inf")
        return abs(b.total_ios - a.total_ios) / a.total_ios
