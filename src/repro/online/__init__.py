"""Online re-provisioning: workload drift, migration-aware TOC, epoch loop.

The paper's advisor provisions a *static* layout for a *fixed* workload;
this package keeps provisioning as the workload moves.  It adds four
pieces on top of the core pipeline:

* :mod:`repro.online.drift` -- time-varying workloads composed from the
  existing generators under phase schedules (ramp, diurnal, flash crowd,
  OLTP-to-OLAP crossfade -- including *cross-kind* crossfades whose epochs
  blend an OLTP mix with a DSS stream) with seeded, reproducible epoch
  streams;
* :mod:`repro.online.monitor` -- per-epoch, per-object I/O telemetry folded
  into workload profiles, threshold-based drift detection, and the
  :class:`TrendPredictor` that extrapolates the telemetry window so the
  loop can re-tier before a ramp or flash crowd peaks;
* :mod:`repro.online.migration` -- migration plans between layouts, the
  analytic cost model charging bytes moved between class pairs against the
  TOC, the :class:`MigrationExecutor` that instead *runs* the plan's byte
  batches on the device simulator contending with the epoch workload, and
  the amortization policy gating every re-tier;
* :mod:`repro.online.controller` -- the :class:`OnlineAdvisor` epoch loop:
  telemetry-driven re-profiling (the estimator replay only runs at cold
  start), re-tiering through the uniform
  :class:`~repro.core.solver.Solver` protocol (warm-started DOT by default)
  with per-concurrency estimate tables shared across epochs, emitting a
  timeline of layouts, PSRs and cumulative migration-aware cost.
"""

from repro.online.drift import (
    DriftingWorkloadGenerator,
    EpochWorkload,
    PhaseSchedule,
    WorkloadPhase,
)
from repro.online.monitor import (
    DriftDecision,
    DriftThresholds,
    EpochTelemetry,
    PredictionDecision,
    TelemetryMonitor,
    TrendPredictor,
)
from repro.online.migration import (
    MigrationCost,
    MigrationCostModel,
    MigrationExecutor,
    MigrationPlan,
    ObjectMove,
    ReProvisioningPolicy,
    SimulatedMigrationCost,
)
from repro.online.controller import (
    EpochRecord,
    FrozenEpochRecord,
    FrozenRunResult,
    OnlineAdvisor,
    OnlineLoop,
    OnlineRunResult,
)

__all__ = [
    "DriftingWorkloadGenerator",
    "EpochWorkload",
    "PhaseSchedule",
    "WorkloadPhase",
    "DriftDecision",
    "DriftThresholds",
    "EpochTelemetry",
    "PredictionDecision",
    "TelemetryMonitor",
    "TrendPredictor",
    "MigrationCost",
    "MigrationCostModel",
    "MigrationExecutor",
    "MigrationPlan",
    "ObjectMove",
    "ReProvisioningPolicy",
    "SimulatedMigrationCost",
    "EpochRecord",
    "FrozenEpochRecord",
    "FrozenRunResult",
    "OnlineAdvisor",
    "OnlineLoop",
    "OnlineRunResult",
]
