"""Online re-provisioning: workload drift, migration-aware TOC, epoch loop.

The paper's advisor provisions a *static* layout for a *fixed* workload;
this package keeps provisioning as the workload moves.  It adds four
pieces on top of the core pipeline:

* :mod:`repro.online.drift` -- time-varying workloads composed from the
  existing generators under phase schedules (ramp, diurnal, flash crowd,
  OLTP-to-OLAP crossfade) with seeded, reproducible epoch streams;
* :mod:`repro.online.monitor` -- per-epoch, per-object I/O telemetry folded
  into workload profiles, with threshold-based drift detection;
* :mod:`repro.online.migration` -- migration plans between layouts, a cost
  model charging bytes moved between class pairs against the TOC, and the
  amortization policy gating every re-tier;
* :mod:`repro.online.controller` -- the :class:`OnlineAdvisor` epoch loop:
  re-tiering through the uniform :class:`~repro.core.solver.Solver`
  protocol (warm-started DOT by default) with estimate tables shared across
  epochs, emitting a timeline of layouts, PSRs and cumulative
  migration-aware cost.
"""

from repro.online.drift import (
    DriftingWorkloadGenerator,
    EpochWorkload,
    PhaseSchedule,
    WorkloadPhase,
)
from repro.online.monitor import (
    DriftDecision,
    DriftThresholds,
    EpochTelemetry,
    TelemetryMonitor,
)
from repro.online.migration import (
    MigrationCost,
    MigrationCostModel,
    MigrationPlan,
    ObjectMove,
    ReProvisioningPolicy,
)
from repro.online.controller import (
    EpochRecord,
    FrozenEpochRecord,
    FrozenRunResult,
    OnlineAdvisor,
    OnlineRunResult,
)

__all__ = [
    "DriftingWorkloadGenerator",
    "EpochWorkload",
    "PhaseSchedule",
    "WorkloadPhase",
    "DriftDecision",
    "DriftThresholds",
    "EpochTelemetry",
    "TelemetryMonitor",
    "MigrationCost",
    "MigrationCostModel",
    "MigrationPlan",
    "ObjectMove",
    "ReProvisioningPolicy",
    "EpochRecord",
    "FrozenEpochRecord",
    "FrozenRunResult",
    "OnlineAdvisor",
    "OnlineRunResult",
]
