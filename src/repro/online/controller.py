"""The epoch-driven online re-provisioning controller.

:class:`OnlineAdvisor` turns the one-shot Figure 2 pipeline into a loop.
Each epoch it

1. **observes** the epoch's workload on the currently deployed layout
   (optimizer estimates standing in for live telemetry) and feeds the
   per-object I/O counts to the :class:`~repro.online.monitor.TelemetryMonitor`;
2. **detects drift** against the telemetry of the last provisioning -- and,
   with a :class:`~repro.online.monitor.TrendPredictor` configured,
   *anticipates* it: when the telemetry window's extrapolated I/O-share
   trend crosses the drift thresholds within the prediction horizon, the
   loop re-tiers before the ramp or flash crowd peaks;
3. on (actual or predicted) drift, **re-profiles and re-solves** through the
   uniform :class:`~repro.core.solver.Solver` interface (DOT by default),
   *warm-started from the deployed layout*.  Re-profiling is
   **telemetry-driven**: the epoch's
   :class:`~repro.core.profiles.WorkloadProfileSet` is built from the
   monitor's *observed* (or, on a predictive trigger, *projected*)
   per-object I/O counts -- the estimator-replay profiling of the paper's
   refinement-phase shortcut only runs at the cold initial provisioning (or
   when ``profile_source="estimator"`` is forced).  Every per-(query,
   signature) estimate is shared across epochs through per-concurrency
   :class:`~repro.core.batch_eval.QueryEstimateCache` instances (owned by
   the per-epoch :class:`~repro.core.context.EvaluationContext`) -- an
   unchanged query on an unchanged placement is never re-estimated, which is
   what makes running the advisor every epoch affordable;
4. prices the layout transition and only **re-tiers** when the
   :class:`~repro.online.migration.ReProvisioningPolicy` projects the TOC
   savings to amortise the migration within its horizon.  The price comes
   from the analytic :class:`~repro.online.migration.MigrationCostModel` or
   -- with ``migration_execution="simulated"`` -- from the
   :class:`~repro.online.migration.MigrationExecutor`, which runs the
   plan's byte batches through the device simulator *contending with the
   epoch workload* (the analytic price stays attached as a cross-check);
5. records a timeline entry: the deployed layout, its TOC and PSR for the
   epoch, any migration performed and the cumulative migration-aware cost.

Cross-kind drift (an OLTP phase crossfading into a DSS phase) produces
:class:`~repro.workloads.workload.CrossKindWorkload` epochs; the loop
evaluates each component with its own kind's machinery (estimate caches are
keyed by concurrency) and blends the TOC metrics by the phase weights --
the epoch's cost index is ``sum_i w_i * TOC_i`` and its PSR the same convex
combination of the per-component PSRs.

The controller's cumulative cost is directly comparable to
:meth:`OnlineAdvisor.evaluate_frozen`, which replays the same epochs on a
fixed layout -- the "provision once, never adapt" baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.batch_eval import QueryEstimateCache
from repro.core.context import EvaluationContext, make_incremental_evaluator
from repro.core.layout import Layout
from repro.core.solver import DOTSolver, Solver, SolveResult
from repro.core.profiler import WorkloadProfiler
from repro.core.profiles import WorkloadProfileSet
from repro.core.toc import TOCModel, TOCReport
from repro.dbms.cost_model import CostModel
from repro.dbms.plan import merge_io_counts, scale_io_counts
from repro.objects import DatabaseObject
from repro.obs import instrument as obs_instrument
from repro.obs import metrics as obs_metrics
from repro.obs import recorder as obs_recorder
from repro.obs import trace as obs_trace
from repro.online.drift import EpochWorkload
from repro.online.migration import (
    MigrationCost,
    MigrationCostModel,
    MigrationExecutor,
    MigrationPlan,
    ReProvisioningPolicy,
    SimulatedMigrationCost,
)
from repro.online.monitor import (
    DriftDecision,
    DriftThresholds,
    OutlierPolicy,
    PredictionDecision,
    TelemetryMonitor,
    TrendPredictor,
)
from repro.resilience.faults import FaultInjector
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.sla.psr import performance_satisfaction_ratio
from repro.storage.storage_class import StorageSystem
from repro.workloads.workload import Workload

#: Anything a migration assessment may return.
AnyMigrationCost = Union[MigrationCost, SimulatedMigrationCost]


@dataclass
class EpochRecord:
    """One row of the online advisor's timeline."""

    epoch: int
    workload_name: str
    phase_weights: Tuple[float, ...]
    layout: Layout
    toc_cents: float
    psr: float
    drift: DriftDecision
    reoptimized: bool
    migrated: bool
    migration: Optional[AnyMigrationCost]
    migration_reason: str
    epoch_cost_cents: float
    cumulative_cost_cents: float
    #: Uniform solver outcome of the epoch's re-optimization (``None`` when
    #: no drift triggered one); the legacy per-solver result object is
    #: reachable through ``dot_result.raw``.
    dot_result: Optional[SolveResult] = field(default=None, repr=False)
    report: Optional[TOCReport] = field(default=None, repr=False)
    #: True when the epoch's re-optimization was triggered by the trend
    #: predictor rather than by observed drift.
    predicted: bool = False
    #: The predictor's decision for the epoch (``None`` when no predictor is
    #: configured or observed drift pre-empted the forecast).
    forecast: Optional[PredictionDecision] = field(default=None, repr=False)
    #: Recovery actions the epoch took (telemetry gaps, outlier clamps,
    #: degraded or failed re-tier solves, migration retries).  Empty on a
    #: fault-free epoch; the loop records faults here instead of raising.
    incidents: Tuple[str, ...] = ()


@dataclass
class OnlineRunResult:
    """The full timeline of one online re-provisioning run."""

    records: List[EpochRecord]
    #: Aggregate estimate-cache statistics of the run (all concurrencies
    #: pooled); the telemetry-vs-estimator profiling regression tests pin
    #: their expectations on these counters.
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def num_epochs(self) -> int:
        """Number of epochs the run covered."""
        return len(self.records)

    @property
    def cumulative_cost_cents(self) -> float:
        """Total TOC plus migration charges over the whole run."""
        if not self.records:
            return 0.0
        return self.records[-1].cumulative_cost_cents

    @property
    def total_migration_cents(self) -> float:
        """Total migration charges over the run."""
        return sum(
            record.migration.cost_cents
            for record in self.records
            if record.migrated and record.migration is not None
        )

    @property
    def retier_epochs(self) -> Tuple[int, ...]:
        """Epochs at which a charged migration re-tiered the deployed layout.

        The initial provisioning (first record, ``migration is None``) is
        not a re-tier, whatever its epoch label.
        """
        return tuple(
            record.epoch
            for record in self.records
            if record.migrated and record.migration is not None
        )

    @property
    def predicted_retier_epochs(self) -> Tuple[int, ...]:
        """The subset of re-tier epochs triggered by the trend predictor."""
        return tuple(
            record.epoch
            for record in self.records
            if record.migrated and record.migration is not None and record.predicted
        )

    @property
    def min_psr(self) -> float:
        """The worst per-epoch PSR of the run."""
        return min((record.psr for record in self.records), default=1.0)

    def describe(self) -> str:
        """Render the timeline as a fixed-width text table."""
        from repro.experiments.reporting import format_table

        rows = []
        for record in self.records:
            weights = "/".join(f"{weight * 100:.0f}" for weight in record.phase_weights)
            migration_gb = (
                record.migration.bytes_moved_gb
                if record.migrated and record.migration is not None
                else 0.0
            )
            migration_cents = (
                record.migration.cost_cents
                if record.migrated and record.migration is not None
                else 0.0
            )
            retier = "no"
            if record.migrated:
                retier = "pred" if record.predicted else "yes"
            rows.append(
                [
                    record.epoch,
                    weights,
                    record.layout.name,
                    record.toc_cents,
                    round(record.psr * 100.0, 1),
                    f"{record.drift.share_distance:.3f}",
                    retier,
                    migration_gb,
                    migration_cents,
                    record.cumulative_cost_cents,
                ]
            )
        return format_table(
            [
                "Epoch", "Mix (%)", "Layout", "TOC (cents)", "PSR (%)",
                "Drift", "Re-tier", "Moved (GB)", "Mig. cost (c)", "Cum. cost (c)",
            ],
            rows,
        )


@dataclass
class FrozenEpochRecord:
    """One epoch of the frozen-layout baseline replay."""

    epoch: int
    workload_name: str
    toc_cents: float
    psr: float
    cumulative_cost_cents: float


@dataclass
class FrozenRunResult:
    """The frozen-layout baseline: the same epochs on one fixed layout."""

    layout: Layout
    records: List[FrozenEpochRecord]

    @property
    def cumulative_cost_cents(self) -> float:
        """Total TOC of the fixed layout over the whole run."""
        if not self.records:
            return 0.0
        return self.records[-1].cumulative_cost_cents

    @property
    def min_psr(self) -> float:
        """The worst per-epoch PSR of the replay."""
        return min((record.psr for record in self.records), default=1.0)


class _BlendedRunResult:
    """The merged observation of a cross-kind epoch (duck-typed run result).

    Carries exactly what the telemetry monitor and the migration executor
    read: the weight-blended per-object I/O counts, per-class busy times and
    measurement window of the component evaluations.
    """

    __slots__ = ("workload_name", "io_by_object", "busy_time_by_class_ms",
                 "total_time_s", "component_results")

    def __init__(self, workload_name: str):
        self.workload_name = workload_name
        self.io_by_object: Dict[str, Dict[object, float]] = {}
        self.busy_time_by_class_ms: Dict[str, float] = {}
        self.total_time_s: float = 0.0
        #: ``(workload, weight, run_result)`` per folded component -- kept so
        #: consumers needing per-concurrency detail (the migration
        #: executor's contention window) do not have to work from the
        #: merged counts alone.
        self.component_results: List[Tuple[object, float, object]] = []

    def fold(self, workload, run_result, weight: float) -> None:
        merge_io_counts(
            self.io_by_object, scale_io_counts(run_result.io_by_object, weight)
        )
        for class_name, busy_ms in run_result.busy_time_by_class_ms.items():
            self.busy_time_by_class_ms[class_name] = (
                self.busy_time_by_class_ms.get(class_name, 0.0) + weight * busy_ms
            )
        self.total_time_s += weight * run_result.total_time_s
        self.component_results.append((workload, weight, run_result))


class _GlitchedRunResult:
    """An epoch observation as reported by a glitching I/O counter.

    Carries the true run result's counts scaled by the injected outlier
    factor -- only what the telemetry monitor reads (``workload_name`` and
    ``io_by_object``); the epoch's accounting never sees it.
    """

    __slots__ = ("workload_name", "io_by_object")

    def __init__(self, run_result, factor: float):
        self.workload_name = run_result.workload_name
        self.io_by_object = scale_io_counts(run_result.io_by_object, factor)


@dataclass
class _EpochEvaluation:
    """One layout scored against one (possibly cross-kind) epoch workload."""

    report: TOCReport
    psr: float

    @property
    def toc_cents(self) -> float:
        return self.report.toc_cents

    @property
    def run_result(self):
        return self.report.run_result


class OnlineAdvisor:
    """Epoch-driven re-provisioning on top of the DOT pipeline.

    Parameters
    ----------
    objects / system / estimator:
        As for :class:`~repro.core.advisor.ProvisioningAdvisor`.
    sla:
        A :class:`~repro.sla.constraints.RelativeSLA` re-resolved against
        the best-performing reference layout *per epoch* (the caps track
        the drifting workload), or an absolute constraint applied as-is,
        or ``None``.  Pure epochs apply the SLA exactly as declared
        (metric included -- the PR-4 behaviour); on *cross-kind* epochs a
        relative SLA's metric follows each component's kind -- response-time
        caps for DSS, a throughput floor for OLTP (the paper's binding) --
        which is what lets one SLA govern both sides of an OLTP<->DSS
        drift.
    thresholds:
        Drift sensitivities for the telemetry monitor.
    policy:
        The migration amortization policy.
    migration_model:
        Migration cost model (defaults to one over ``system``).
    evaluation_mode:
        ``"estimate"`` (default, deterministic) or ``"run"`` (simulated
        test runs with buffer pool and noise) for the per-epoch accounting.
        In run mode the estimator's noise RNG advances with every
        evaluation, so an online run followed by a frozen replay on the
        *same* estimator draws different noise positions per epoch; for a
        controlled online-vs-frozen comparison use estimate mode (as the
        drift experiment does) or a fresh estimator per arm.
    initial_layout:
        The layout deployed before epoch 0 (defaults to the paper's
        all-most-expensive reference).  Epoch 0 always provisions from it
        cold, free of migration charges -- both the online run and the
        frozen baseline start from the same initial provisioning.
    solver:
        The :class:`~repro.core.solver.Solver` the loop re-tiers through
        (default: a :class:`~repro.core.solver.DOTSolver` honouring
        ``capacity_relaxed_walk``).  Every epoch's re-optimization builds an
        :class:`~repro.core.context.EvaluationContext` around the epoch
        workload and calls ``solver.solve(context,
        initial_layout=deployed)``, so any protocol-conforming solver can
        drive the loop.
    profile_source:
        ``"telemetry"`` (default) builds each re-tier's workload profiles
        from the monitor's observed per-object I/O counts (the estimator
        replay only runs at the cold initial provisioning);
        ``"estimator"`` forces the paper's refinement-phase shortcut of
        re-profiling every drifted epoch through the optimizer's ``M^K``
        baseline enumeration.
    predictor:
        An optional :class:`~repro.online.monitor.TrendPredictor`; when
        set, epochs whose *extrapolated* telemetry crosses the drift
        thresholds re-optimize before the drift materialises (against the
        projected profile), still gated by the amortization ``policy``.
        Requires telemetry (it is independent of ``profile_source`` only in
        that the cold start still profiles through the estimator).
    migration_execution:
        ``"analytic"`` (default) prices migrations with the closed-form
        :class:`~repro.online.migration.MigrationCostModel`;
        ``"simulated"`` executes the plan's byte batches on the device
        simulator contending with the epoch workload
        (:class:`~repro.online.migration.MigrationExecutor`), keeping the
        analytic price attached as a cross-check.
    retier_on_sla_violation:
        When True, an epoch whose observed PSR drops below 1.0 re-optimizes
        even if the telemetry drift axes stayed inside their thresholds (the
        paper's refinement phase reacts to SLA violations the same way).
        Off by default: the drift-only loop is the regression-locked legacy
        behaviour.
    fault_injector:
        An optional :class:`~repro.resilience.faults.FaultInjector` whose
        epoch-scoped faults (telemetry dropout/outlier, solver error/overrun,
        migration failure) are fired at the loop's injection points.  The
        loop *never raises* on an injected (or organic) epoch fault: it
        degrades along a declared path -- hold the last observation, hold the
        deployed layout, skip the migration -- and records what happened in
        ``EpochRecord.incidents``.
    retier_budget_s:
        An optional hard wall-clock deadline (seconds) handed to every
        re-tier ``solver.solve`` call as its ``budget``.  A solve that blows
        it returns a degraded-but-feasible result (recorded as an incident)
        rather than stalling the loop.
    migration_max_retries:
        Bounded retries of a failed migration assessment/execution; after
        ``migration_max_retries + 1`` failed attempts the epoch holds the
        deployed layout and re-arms for the next epoch.
    outlier_policy:
        Forwarded to the :class:`~repro.online.monitor.TelemetryMonitor`:
        an optional MAD clamp on physically implausible telemetry epochs.
    """

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = None,
        thresholds: Optional[DriftThresholds] = None,
        policy: Optional[ReProvisioningPolicy] = None,
        migration_model: Optional[MigrationCostModel] = None,
        evaluation_mode: str = "estimate",
        initial_layout: Optional[Layout] = None,
        capacity_relaxed_walk: bool = True,
        solver: Optional[Solver] = None,
        profile_source: str = "telemetry",
        predictor: Optional[TrendPredictor] = None,
        migration_execution: str = "analytic",
        retier_on_sla_violation: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        retier_budget_s: Optional[float] = None,
        migration_max_retries: int = 2,
        outlier_policy: Optional[OutlierPolicy] = None,
    ):
        if evaluation_mode not in ("estimate", "run"):
            raise ValueError(f"unknown evaluation mode {evaluation_mode!r}")
        if profile_source not in ("telemetry", "estimator"):
            raise ValueError(f"unknown profile source {profile_source!r}")
        if migration_execution not in ("analytic", "simulated"):
            raise ValueError(f"unknown migration execution mode {migration_execution!r}")
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.sla = sla
        self.thresholds = thresholds or DriftThresholds()
        self.policy = policy or ReProvisioningPolicy()
        self.migration_model = migration_model or MigrationCostModel(system)
        self.evaluation_mode = evaluation_mode
        self.initial_layout = initial_layout
        self.capacity_relaxed_walk = capacity_relaxed_walk
        self.solver = solver or DOTSolver(capacity_relaxed_walk=capacity_relaxed_walk)
        self.profile_source = profile_source
        self.predictor = predictor
        self.migration_execution = migration_execution
        self.retier_on_sla_violation = retier_on_sla_violation
        self.fault_injector = fault_injector
        self.retier_budget_s = retier_budget_s
        if migration_max_retries < 0:
            raise ValueError("migration retries cannot be negative")
        self.migration_max_retries = migration_max_retries
        self.outlier_policy = outlier_policy
        self.migration_executor = (
            MigrationExecutor(system, model=self.migration_model)
            if migration_execution == "simulated"
            else None
        )
        self.toc_model = TOCModel(estimator)
        #: Per-epoch memo of resolved constraints, keyed by component id
        #: (see :meth:`_resolved_constraint`).
        self._constraint_memo: Dict[int, Optional[PerformanceConstraint]] = {}

    # ------------------------------------------------------------------
    def reference_layout(self) -> Layout:
        """The best-performing reference: everything on the priciest class."""
        return Layout.uniform(self.objects, self.system, self.system.most_expensive().name)

    @staticmethod
    def _components(workload) -> List[Tuple[object, float]]:
        """The pure-kind components of a workload with their blend weights."""
        if getattr(workload, "kind", "dss") == "mixed":
            return list(workload.components)
        return [(workload, 1.0)]

    @staticmethod
    def _lead_workload(workload):
        """The workload the re-optimization solves for (dominant component)."""
        if getattr(workload, "kind", "dss") == "mixed":
            return workload.dominant
        return workload

    def _cache_for(self, caches: Dict[int, QueryEstimateCache], workload) -> QueryEstimateCache:
        """The shared estimate cache for a workload's concurrency."""
        concurrency = getattr(workload, "concurrency", 1)
        cache = caches.get(concurrency)
        if cache is None:
            cache = QueryEstimateCache(self.estimator, concurrency)
            caches[concurrency] = cache
        return cache

    def _epoch_evaluator(self, workload, cache: Optional[QueryEstimateCache]):
        """A cache-backed estimate evaluator for one epoch's workload.

        Every estimate-mode evaluation of the loop (drift observation, SLA
        re-resolution against the reference layout, reference rebasing,
        per-epoch accounting) goes through it, so an unchanged query on an
        unchanged placement is never re-estimated -- across layouts *and*
        across epochs.  ``None`` (exotic workload kinds) falls back to the
        full scalar estimator.
        """
        return make_incremental_evaluator(
            self.estimator, workload, self.toc_model, cache=cache, collect_io=True
        )

    def _estimate(self, layout: Layout, workload, evaluator) -> TOCReport:
        """Estimate-mode TOC report, through the shared cache when possible."""
        if evaluator is not None:
            return evaluator.evaluate(layout)
        return self.toc_model.evaluate(layout, workload, mode="estimate")

    def _epoch_constraint(self, workload, evaluator=None,
                          sla=None) -> Optional[PerformanceConstraint]:
        """Resolve the SLA for one epoch's workload (estimate-derived caps).

        ``sla`` overrides the advisor-level SLA (cross-kind epochs resolve
        each component against the metric its kind carries).
        """
        chosen = self.sla if sla is None else sla
        if chosen is None or isinstance(chosen, PerformanceConstraint):
            return chosen
        reference = self._estimate(self.reference_layout(), workload, evaluator)
        return chosen.resolve(reference.run_result)

    def _component_sla(self, workload) -> Optional[Union[RelativeSLA, PerformanceConstraint]]:
        """The SLA as it applies to one pure component of a mixed epoch.

        A relative SLA's metric follows the component's kind (response time
        for DSS, throughput for OLTP); absolute constraints and ``None``
        pass through unchanged.
        """
        if not isinstance(self.sla, RelativeSLA):
            return self.sla
        metric = "throughput" if getattr(workload, "is_oltp", False) else "response_time"
        if metric == self.sla.metric:
            return self.sla
        return RelativeSLA(self.sla.ratio, metric=metric)

    @staticmethod
    def _as_epoch(item: Union[EpochWorkload, Workload], position: int) -> EpochWorkload:
        if isinstance(item, EpochWorkload):
            return item
        return EpochWorkload(epoch=position, weights=(1.0,), workload=item)

    def _resolved_constraint(self, component, evaluator,
                             adapt_sla: bool) -> Optional[PerformanceConstraint]:
        """The component's epoch constraint, resolved at most once per epoch.

        ``adapt_sla`` is True only for components of a *mixed* epoch, where
        a relative SLA's metric must follow each component's kind; pure
        epochs apply the advisor SLA exactly as declared (the PR-4
        behaviour, regression-locked).  A single epoch evaluates its
        components several times (observation, candidate gate, rebase
        refresh, run-mode accounting); the resolved caps are identical each
        time, so they are memoized per component object.  :meth:`run` /
        :meth:`evaluate_frozen` clear the memo at every epoch boundary --
        constraints must track the drifting workload, and component
        identity is only stable within an epoch.
        """
        key = id(component)
        if key not in self._constraint_memo:
            sla = self._component_sla(component) if adapt_sla else self.sla
            self._constraint_memo[key] = self._epoch_constraint(
                component, evaluator, sla=sla
            )
        return self._constraint_memo[key]

    # ------------------------------------------------------------------
    # Epoch evaluation (pure and cross-kind)
    # ------------------------------------------------------------------
    def _evaluate_component(
        self,
        layout: Layout,
        component,
        caches: Dict[int, QueryEstimateCache],
        mode: str,
        adapt_sla: bool = False,
    ) -> Tuple[TOCReport, float]:
        """Score one pure-kind component: its TOC report and PSR.

        The SLA is resolved through the cache-backed estimate evaluator in
        *both* modes (constraint caps are estimate-derived by convention);
        only the accounted report switches to a simulated run in run mode.
        """
        evaluator = self._epoch_evaluator(component, self._cache_for(caches, component))
        constraint = self._resolved_constraint(component, evaluator, adapt_sla)
        if mode == "estimate":
            report = self._estimate(layout, component, evaluator)
        else:
            report = self.toc_model.evaluate(layout, component, mode="run")
        psr = (
            performance_satisfaction_ratio(constraint, report.run_result)
            if constraint is not None
            else 1.0
        )
        return report, psr

    def _evaluate_epoch(
        self,
        layout: Layout,
        workload,
        caches: Dict[int, QueryEstimateCache],
        mode: str = "estimate",
    ) -> _EpochEvaluation:
        """Score one layout against one epoch, blending across kinds.

        Pure epochs reduce to the single component's own TOC report and PSR
        (bit for bit what the one-workload loop computed); cross-kind epochs
        evaluate every component with its own kind's machinery and blend TOC
        and PSR by the phase weights.
        """
        components = self._components(workload)
        if len(components) == 1:
            report, psr = self._evaluate_component(layout, components[0][0], caches, mode)
            return _EpochEvaluation(report=report, psr=psr)

        blended = _BlendedRunResult(getattr(workload, "name", "workload"))
        toc_cents = 0.0
        psr = 0.0
        for component, weight in components:
            report, component_psr = self._evaluate_component(
                layout, component, caches, mode, adapt_sla=True
            )
            toc_cents += weight * report.toc_cents
            psr += weight * component_psr
            blended.fold(component, report.run_result, weight)
        report = TOCReport(
            layout_name=layout.name,
            workload_name=blended.workload_name,
            metric="cents_blended",
            layout_cost_cents_per_hour=self.toc_model.layout_cost(layout),
            execution_time_s=None,
            throughput_tasks_per_hour=None,
            transactions_per_minute=None,
            toc_cents=toc_cents,
            run_result=blended,
        )
        return _EpochEvaluation(report=report, psr=psr)

    # ------------------------------------------------------------------
    # Migration pricing
    # ------------------------------------------------------------------
    def _component_busy_ms(self, layout: Layout, workload, run_result) -> Dict[str, float]:
        """Per-class busy time of one pure component's observation.

        The incremental DSS evaluator does not type busy time by class (the
        drift loop never needed it), so it is reconstructed here from the
        observed per-object counts and the deployed layout's placement --
        the same ``CostModel.io_time_by_class`` the full estimator uses, at
        the component's own concurrency calibration point.
        """
        busy = getattr(run_result, "busy_time_by_class_ms", None)
        if busy:
            return dict(busy)
        cost_model = CostModel(
            layout.placement(),
            concurrency=getattr(workload, "concurrency", 1),
            parameters=self.estimator.parameters,
        )
        return cost_model.io_time_by_class(run_result.io_by_object)

    def _contention_context(self, layout: Layout, workload, observed: _EpochEvaluation):
        """The background load the simulated migration contends with.

        Cross-kind epochs reconstruct busy time *per component* (each at
        its own concurrency, weighted by its phase share) -- service times
        at concurrency 300 and concurrency 1 differ, so typing the merged
        counts at one calibration point would misprice the contention.
        """
        run_result = observed.run_result
        window = _BlendedRunResult(run_result.workload_name)
        component_results = getattr(run_result, "component_results", None)
        if component_results:
            for component, weight, result in component_results:
                for class_name, busy_ms in self._component_busy_ms(
                        layout, component, result).items():
                    window.busy_time_by_class_ms[class_name] = (
                        window.busy_time_by_class_ms.get(class_name, 0.0)
                        + weight * busy_ms
                    )
        else:
            window.busy_time_by_class_ms = self._component_busy_ms(
                layout, workload, run_result
            )
        window.total_time_s = run_result.total_time_s
        return window

    def _assess_migration(
        self,
        plan: MigrationPlan,
        candidate: Layout,
        workload,
        observed: _EpochEvaluation,
        deployed: Layout,
    ) -> AnyMigrationCost:
        """Price one migration plan (analytic, or simulated under load)."""
        if self.migration_executor is not None:
            return self.migration_executor.execute(
                plan,
                workload_result=self._contention_context(deployed, workload, observed),
                layout_cost_cents_per_hour=candidate.storage_cost_cents_per_hour(),
            )
        return self.migration_model.assess(
            plan, layout_cost_cents_per_hour=candidate.storage_cost_cents_per_hour()
        )

    def _assess_migration_with_retry(
        self,
        epoch: int,
        plan: MigrationPlan,
        candidate: Layout,
        workload,
        observed: _EpochEvaluation,
        deployed: Layout,
        incidents: List[str],
    ) -> Optional[AnyMigrationCost]:
        """Price/execute one migration with bounded retries.

        Each attempt first consults the fault injector (an injected
        ``migration_failure`` fails its first ``spec.attempts`` attempts),
        then runs the real assessment.  Every failed attempt is recorded;
        ``None`` after ``migration_max_retries + 1`` failures tells the loop
        to hold the deployed layout for this epoch.
        """
        attempts = self.migration_max_retries + 1
        for attempt in range(attempts):
            try:
                if (self.fault_injector is not None
                        and self.fault_injector.migration_fault(epoch, attempt)):
                    raise RuntimeError(
                        f"injected migration failure (attempt {attempt})"
                    )
                return self._assess_migration(plan, candidate, workload, observed, deployed)
            except Exception as exc:
                incidents.append(
                    f"epoch {epoch}: migration attempt {attempt + 1}/{attempts} "
                    f"failed ({exc})"
                )
        incidents.append(
            f"epoch {epoch}: migration abandoned after {attempts} attempts; "
            "holding deployed layout"
        )
        return None

    # ------------------------------------------------------------------
    def run(self, epoch_workloads: Iterable[Union[EpochWorkload, Workload]]) -> OnlineRunResult:
        """Drive the re-provisioning loop over a sequence of epoch workloads.

        The loop is observed as one ``online.run`` span with one
        ``online.epoch`` child per epoch (epoch incidents become span
        events, nested re-tier solves hang their own ``solve:*`` subtrees
        off the epoch), folds its accounting into the metrics registry at
        the run boundary, and -- when recording is active and this is the
        outermost observation scope -- persists one run record to the
        store.  All of it is inert (no-op spans, a handful of counter
        folds) unless tracing/recording were switched on.
        """
        tracer = obs_trace.get_tracer()
        obs_instrument.enter_scope()
        run_started = time.perf_counter()
        root_span = tracer.start_span("online.run", solver=self.solver.name)
        result: Optional[OnlineRunResult] = None
        try:
            result = self._run_loop(epoch_workloads, tracer)
            return result
        finally:
            wall_s = time.perf_counter() - run_started
            if result is not None:
                root_span.set(epochs=result.num_epochs,
                              cumulative_cost_cents=result.cumulative_cost_cents,
                              min_psr=result.min_psr if result.records else None)
            tracer.end_span(root_span)
            outermost = obs_instrument.exit_scope()
            if result is not None:
                self._fold_run_metrics(result)
                if outermost and obs_recorder.active_store() is not None:
                    obs_recorder.maybe_record(
                        "online",
                        self.solver.name,
                        elapsed_s=wall_s,
                        wall_s=wall_s,
                        stats=self._run_stats(result),
                        metrics_snapshot=obs_metrics.get_metrics().snapshot(),
                        spans=root_span.to_dict(),
                    )

    @staticmethod
    def _fold_run_metrics(result: OnlineRunResult) -> None:
        """Fold one finished run's accounting into the metrics registry."""
        registry = obs_metrics.get_metrics()
        registry.counter("online.runs").inc()
        registry.counter("online.epochs").inc(result.num_epochs)
        for record in result.records:
            if record.psr < 1.0:
                registry.counter("online.sla_violations").inc()
            if record.incidents:
                registry.counter("online.incidents").inc(len(record.incidents))
            if record.migrated and record.migration is not None:
                registry.counter("online.retiers").inc()
                registry.counter("online.migration_gb").inc(
                    getattr(record.migration, "bytes_moved_gb", 0.0)
                )
                registry.counter("online.migration_cents").inc(
                    record.migration.cost_cents
                )
        registry.counter("estimate_cache.hits").inc(result.cache_hits)
        registry.counter("estimate_cache.misses").inc(result.cache_misses)

    @staticmethod
    def _run_stats(result: OnlineRunResult) -> Dict[str, object]:
        """The run-record payload of one online run."""
        return {
            "num_epochs": result.num_epochs,
            "cumulative_cost_cents": result.cumulative_cost_cents,
            "total_migration_cents": result.total_migration_cents,
            "retier_epochs": list(result.retier_epochs),
            "predicted_retier_epochs": list(result.predicted_retier_epochs),
            "min_psr": result.min_psr if result.records else None,
            "sla_violations": sum(1 for r in result.records if r.psr < 1.0),
            "incidents": sum(len(r.incidents) for r in result.records),
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
        }

    def _run_loop(self, epoch_workloads: Iterable[Union[EpochWorkload, Workload]],
                  tracer) -> OnlineRunResult:
        loop = OnlineLoop(self, tracer=tracer)
        for item in epoch_workloads:
            loop.step(item)
        return loop.result()

    # ------------------------------------------------------------------
    def _candidate_toc(
        self,
        candidate: Layout,
        workload,
        caches: Dict[int, QueryEstimateCache],
        dot_result: SolveResult,
    ) -> float:
        """The candidate layout's epoch TOC for the amortization gate.

        Pure epochs reuse the solver's own report (bit for bit the legacy
        gate input); cross-kind epochs blend the candidate's per-component
        TOCs, since the solver only scored the dominant component.
        """
        if getattr(workload, "kind", "dss") != "mixed":
            return dot_result.toc_cents
        return self._evaluate_epoch(candidate, workload, caches).toc_cents

    # ------------------------------------------------------------------
    def _rebase_monitor(self, monitor: TelemetryMonitor, epoch: int, layout: Layout,
                        workload, caches: Dict[int, QueryEstimateCache]) -> _EpochEvaluation:
        """Point the drift reference at the new layout's own telemetry.

        I/O counts depend on the layout (a re-tier can flip plans), so the
        reference must be what the monitor will see for an *unchanged*
        workload under the *new* layout -- otherwise every epoch after a
        re-tier scores phantom drift and re-optimizes for nothing.  Returns
        the new layout's evaluation so the caller can account the epoch
        from it.
        """
        refreshed = self._evaluate_epoch(layout, workload, caches)
        monitor.mark_reprovisioned(epoch, refreshed.run_result)
        return refreshed

    # ------------------------------------------------------------------
    def _reprofile(
        self,
        monitor: TelemetryMonitor,
        lead,
        cache: QueryEstimateCache,
        initial_epoch: bool,
        forecast: Optional[PredictionDecision],
    ) -> WorkloadProfileSet:
        """The workload profiles a re-optimization consumes.

        * **Predictive trigger** -- the trend predictor's *projected*
          per-object counts, so DOT's move ordering anticipates where the
          I/O is heading rather than where it was.
        * **Telemetry (warm)** -- the monitor's latest observed counts.  No
          estimator call and *no estimate-cache warm-up* happens here: the
          single-pattern profile set is a pure re-labelling of telemetry the
          loop already paid for (the regression tests pin the cache-stats
          counters on this).
        * **Cold start / ``profile_source="estimator"``** -- the paper's
          refinement-phase shortcut: the epoch workload is re-profiled
          through the optimizer's ``M^K`` baseline enumeration (shared
          estimate cache, so repeated epochs replay from the tables).
        """
        concurrency = getattr(lead, "concurrency", 1)
        if forecast is not None and forecast.io_by_object:
            return monitor.profile_set_from_counts(
                forecast.io_by_object, concurrency=concurrency
            )
        if self.profile_source == "telemetry" and not initial_epoch and monitor.history:
            return monitor.profile_set(concurrency=concurrency)
        profiler = WorkloadProfiler(
            self.objects, self.system, self.estimator, estimate_cache=cache
        )
        return profiler.profile(lead, mode="estimate")

    # ------------------------------------------------------------------
    def _reoptimize(
        self,
        workload,
        cache: QueryEstimateCache,
        constraint: Optional[PerformanceConstraint],
        sla,
        profiles: WorkloadProfileSet,
        warm_from: Optional[Layout],
        budget: Optional[float] = None,
    ) -> Tuple[SolveResult, Optional[Layout]]:
        """Re-solve against the given profiles, warm then (if infeasible) cold.

        The epoch's problem is packaged as an
        :class:`~repro.core.context.EvaluationContext` (sharing the loop's
        estimate cache and the freshly re-profiled workload) and handed to
        the configured solver through the uniform ``solve`` protocol.  The
        warm solve starts from the deployed layout, which is cheap when the
        drift is small but -- for DOT -- can never return a group to the
        all-most-expensive placement; when it finds nothing feasible (e.g.
        the drift *tightened* the effective SLA), the cold restart explores
        from the fast end exactly as the paper's Procedure 1 does.
        """
        context = EvaluationContext(
            objects=self.objects,
            system=self.system,
            estimator=self.estimator,
            workload=workload,
            constraint=constraint,
            sla=sla if isinstance(sla, RelativeSLA) else None,
            profiles=profiles,
            estimate_cache=cache,
        )
        result = self.solver.solve(context, initial_layout=warm_from, budget=budget)
        if not result.feasible and warm_from is not None:
            result = self.solver.solve(context, budget=budget)
        return result, result.layout if result.feasible else None

    # ------------------------------------------------------------------
    def evaluate_frozen(
        self,
        epoch_workloads: Iterable[Union[EpochWorkload, Workload]],
        layout: Layout,
    ) -> FrozenRunResult:
        """Replay the same epochs on one fixed layout (no re-provisioning).

        This is the provision-once baseline the online run is compared
        against; it pays no migration charges but keeps serving a drifted
        workload with a stale layout.
        """
        records: List[FrozenEpochRecord] = []
        caches: Dict[int, QueryEstimateCache] = {}
        cumulative = 0.0
        for position, item in enumerate(epoch_workloads):
            epoch_item = self._as_epoch(item, position)
            workload = epoch_item.workload
            self._constraint_memo.clear()
            mode = "estimate" if self.evaluation_mode == "estimate" else "run"
            evaluation = self._evaluate_epoch(layout, workload, caches, mode=mode)
            cumulative += evaluation.toc_cents
            records.append(
                FrozenEpochRecord(
                    epoch=epoch_item.epoch,
                    workload_name=getattr(workload, "name", "workload"),
                    toc_cents=evaluation.toc_cents,
                    psr=evaluation.psr,
                    cumulative_cost_cents=cumulative,
                )
            )
        return FrozenRunResult(layout=layout, records=records)


class OnlineLoop:
    """The steppable state of one online re-provisioning run.

    :meth:`OnlineAdvisor.run` is a thin driver over this class: it feeds
    every epoch workload through :meth:`step` and returns :meth:`result`.
    Long-running callers -- the multi-tenant :mod:`repro.service` daemon
    foremost -- instead keep one ``OnlineLoop`` per tenant and advance it
    one epoch at a time as work is scheduled, interleaving many tenants'
    loops in a single process.  The loop carries exactly the state the old
    monolithic epoch ``for``-body kept in locals (timeline records, the
    per-concurrency estimate caches, the telemetry monitor, the deployed
    layout and the cumulative migration-aware cost), so driving it epoch by
    epoch is bitwise identical to one :meth:`OnlineAdvisor.run` call over
    the same epochs.
    """

    def __init__(self, advisor: "OnlineAdvisor", tracer=None):
        self.advisor = advisor
        self.tracer = tracer if tracer is not None else obs_trace.get_tracer()
        self.records: List[EpochRecord] = []
        self.caches: Dict[int, QueryEstimateCache] = {}
        self.monitor: Optional[TelemetryMonitor] = None
        self.current: Optional[Layout] = None
        self.cumulative = 0.0
        self._position = 0

    @property
    def deployed(self) -> Optional[Layout]:
        """The currently deployed layout (``None`` before the first step)."""
        return self.current

    @property
    def num_epochs(self) -> int:
        """Number of epochs stepped so far."""
        return len(self.records)

    def result(self) -> OnlineRunResult:
        """The timeline of the epochs stepped so far (snapshot, reusable)."""
        return OnlineRunResult(
            records=list(self.records),
            cache_hits=sum(cache.hits for cache in self.caches.values()),
            cache_misses=sum(cache.misses for cache in self.caches.values()),
        )

    def step(self, item: Union[EpochWorkload, Workload]) -> EpochRecord:
        """Advance the loop by one epoch and return its timeline record."""
        advisor = self.advisor
        tracer = self.tracer
        position = self._position
        self._position += 1

        epoch_item = advisor._as_epoch(item, position)
        epoch = epoch_item.epoch
        workload = epoch_item.workload
        epoch_span = tracer.start_span(
            "online.epoch", epoch=epoch,
            workload=getattr(workload, "name", "workload"),
        )
        advisor._constraint_memo.clear()
        if self.monitor is None:
            self.monitor = TelemetryMonitor(
                advisor.system,
                thresholds=advisor.thresholds,
                concurrency=getattr(workload, "concurrency", 1),
                outlier_policy=advisor.outlier_policy,
            )
        if self.current is None:
            self.current = (
                advisor.initial_layout
                if advisor.initial_layout is not None
                else advisor.reference_layout()
            )
        monitor = self.monitor
        caches = self.caches
        current = self.current

        # 1 + 2: observe the epoch on the deployed layout, score drift
        # (and, with a predictor, the extrapolated drift).  An injected
        # telemetry fault perturbs only what the *monitor* sees -- the
        # epoch's accounting stays on the true evaluation, exactly like a
        # flaky counter in front of a healthy system.
        incidents: List[str] = []
        injector = advisor.fault_injector
        observed = advisor._evaluate_epoch(current, workload, caches)
        telemetry_spec = (
            injector.telemetry_fault(epoch) if injector is not None else None
        )
        if telemetry_spec is not None and telemetry_spec.kind == "telemetry_dropout":
            monitor.observe_gap(epoch)
            decision = DriftDecision(
                drifted=False,
                share_distance=0.0,
                volume_change=0.0,
                reason="telemetry dropout: no observation to score",
            )
        else:
            run_result = observed.run_result
            if telemetry_spec is not None:  # telemetry_outlier
                run_result = _GlitchedRunResult(run_result, telemetry_spec.factor)
            monitor.observe(epoch, run_result)
            decision = monitor.check_drift()
        initial_epoch = not self.records
        # Optional refinement-phase trigger: a deployed layout violating
        # the epoch's SLA caps is re-optimized even when the telemetry
        # axes stayed inside their thresholds (off by default -- the
        # drift-only loop is the regression-locked legacy behaviour).
        sla_trigger = (
            advisor.retier_on_sla_violation
            and not initial_epoch
            and not decision.drifted
            and not decision.in_cooldown
            and observed.psr < 1.0
        )
        if sla_trigger:
            decision = DriftDecision(
                drifted=decision.drifted,
                share_distance=decision.share_distance,
                volume_change=decision.volume_change,
                reason=f"SLA violation (PSR {observed.psr:.0%})",
            )
        forecast: Optional[PredictionDecision] = None
        if (advisor.predictor is not None and not initial_epoch
                and not decision.drifted and not sla_trigger):
            forecast = monitor.check_predicted_drift(advisor.predictor)
        predicted_trigger = forecast is not None and forecast.predicted

        # 3 + 4: on (predicted) drift or at initial provisioning,
        # re-optimize and gate the transition on the migration-aware TOC
        # comparison.
        reoptimized = False
        migrated = False
        migration: Optional[AnyMigrationCost] = None
        migration_reason = "no drift"
        dot_result: Optional[SolveResult] = None
        retiered_eval: Optional[_EpochEvaluation] = None
        if initial_epoch or decision.drifted or predicted_trigger or sla_trigger:
            reoptimized = True
            candidate: Optional[Layout] = None
            solve_failed = False
            try:
                mixed = getattr(workload, "kind", "dss") == "mixed"
                lead = advisor._lead_workload(workload)
                lead_cache = advisor._cache_for(caches, lead)
                lead_evaluator = advisor._epoch_evaluator(lead, lead_cache)
                lead_sla = advisor._component_sla(lead) if mixed else advisor.sla
                lead_constraint = advisor._resolved_constraint(lead, lead_evaluator, mixed)
                profiles = advisor._reprofile(
                    monitor, lead, lead_cache, initial_epoch,
                    forecast if predicted_trigger else None,
                )
                budget = advisor.retier_budget_s
                solver_spec = (
                    injector.solver_fault(epoch) if injector is not None else None
                )
                if solver_spec is not None:
                    if solver_spec.kind == "solver_error":
                        raise RuntimeError(
                            solver_spec.message
                            or f"injected solver error at epoch {epoch}"
                        )
                    # solver_overrun: a stalled queue eats into the solve's
                    # own deadline before the solver even starts.
                    if solver_spec.delay_s > 0.0:
                        time.sleep(solver_spec.delay_s)
                    if budget is not None:
                        budget = max(0.0, budget - solver_spec.delay_s)
                dot_result, candidate = advisor._reoptimize(
                    lead, lead_cache, lead_constraint, lead_sla, profiles,
                    warm_from=None if initial_epoch else current,
                    budget=budget,
                )
                if dot_result.stats.degraded:
                    incidents.extend(dot_result.stats.incidents)
                    budget_note = (
                        f" (budget {budget:.3g} s)" if budget is not None else ""
                    )
                    incidents.append(
                        f"epoch {epoch}: re-tier solve degraded"
                        f"{budget_note}; using best-so-far layout"
                    )
            except Exception as exc:
                # The loop never raises: a failed or timed-out re-tier
                # holds the deployed layout and -- unlike a legitimately
                # infeasible solve -- does NOT rebase the drift reference,
                # so the same drift re-triggers a fresh attempt next epoch.
                solve_failed = True
                dot_result = None
                candidate = None
                incidents.append(
                    f"epoch {epoch}: re-tier solve failed ({exc}); "
                    "holding deployed layout"
                )
            if solve_failed:
                migration_reason = "re-tier solve failed; holding deployed layout"
            elif candidate is None or candidate == current:
                migration_reason = (
                    "no feasible layout" if candidate is None else "layout unchanged"
                )
                # The deployed layout was re-validated against the drifted
                # telemetry; rebase the reference (and arm the cooldown) so
                # the same drift does not trigger a futile re-optimization
                # every remaining epoch.
                monitor.mark_reprovisioned(epoch, observed.run_result)
            elif initial_epoch:
                current = candidate.renamed(f"DOT@epoch{epoch}")
                retiered_eval = advisor._rebase_monitor(
                    monitor, epoch, current, workload, caches
                )
                migrated = True
                migration_reason = "initial provisioning (not charged)"
            else:
                plan = MigrationPlan.between(current, candidate)
                migration = advisor._assess_migration_with_retry(
                    epoch, plan, candidate, workload, observed, current, incidents
                )
                if migration is None:
                    # Bounded retries exhausted: hold the deployed layout
                    # (without rebasing the drift reference, so the still-
                    # drifted telemetry re-triggers next epoch).
                    migration_reason = (
                        "migration failed after retries; holding deployed layout"
                    )
                else:
                    candidate_toc = advisor._candidate_toc(
                        candidate, workload, caches, dot_result
                    )
                    # Restoring SLA feasibility is a constraint, not a cost
                    # tradeoff: the amortization gate only prices re-tiers
                    # between feasible layouts.
                    if sla_trigger or advisor.policy.should_migrate(
                        observed.toc_cents, candidate_toc, migration.cost_cents
                    ):
                        current = candidate.renamed(f"DOT@epoch{epoch}")
                        retiered_eval = advisor._rebase_monitor(
                            monitor, epoch, current, workload, caches
                        )
                        migrated = True
                        if sla_trigger:
                            migration_reason = (
                                f"restores SLA feasibility (PSR {observed.psr:.0%})"
                            )
                        else:
                            saving = advisor.policy.projected_net_saving_cents(
                                observed.toc_cents, candidate_toc, migration.cost_cents
                            )
                            migration_reason = (
                                f"{'anticipated' if predicted_trigger else 'projected'} "
                                f"net saving {saving:.4g} c"
                            )
                    else:
                        migration = None
                        migration_reason = "migration cost exceeds projected saving"

        # 5: account the epoch on the (possibly re-tiered) layout.  In
        # estimate mode the deployed layout's report already exists --
        # `observed` when it did not change, the rebase refresh when it
        # did -- so nothing is recomputed.
        if advisor.evaluation_mode == "estimate":
            final = retiered_eval if retiered_eval is not None else observed
        else:
            # Simulated test runs are stateful (noise RNG) and must
            # never be served from the estimate tables.
            final = advisor._evaluate_epoch(current, workload, caches, mode="run")
        migration_charge = (
            migration.cost_cents if migrated and migration is not None else 0.0
        )
        epoch_cost = final.toc_cents + migration_charge
        self.cumulative += epoch_cost
        self.current = current
        incidents = monitor.drain_incidents() + incidents
        record = EpochRecord(
            epoch=epoch,
            workload_name=getattr(workload, "name", "workload"),
            phase_weights=tuple(epoch_item.weights),
            layout=current,
            toc_cents=final.toc_cents,
            psr=final.psr,
            drift=decision,
            reoptimized=reoptimized,
            migrated=migrated,
            migration=migration,
            migration_reason=migration_reason,
            epoch_cost_cents=epoch_cost,
            cumulative_cost_cents=self.cumulative,
            dot_result=dot_result,
            report=final.report,
            predicted=predicted_trigger,
            forecast=forecast,
            incidents=tuple(incidents),
        )
        self.records.append(record)
        for incident in incidents:
            epoch_span.event("incident", message=incident)
        tracer.end_span(
            epoch_span,
            toc_cents=final.toc_cents,
            psr=final.psr,
            reoptimized=reoptimized,
            migrated=migrated,
            epoch_cost_cents=epoch_cost,
        )
        return record
