"""The epoch-driven online re-provisioning controller.

:class:`OnlineAdvisor` turns the one-shot Figure 2 pipeline into a loop.
Each epoch it

1. **observes** the epoch's workload on the currently deployed layout
   (optimizer estimates standing in for live telemetry) and feeds the
   per-object I/O counts to the :class:`~repro.online.monitor.TelemetryMonitor`;
2. **detects drift** against the telemetry of the last provisioning;
3. on drift, **re-profiles** and re-solves through the uniform
   :class:`~repro.core.solver.Solver` interface (DOT by default),
   *warm-started from the deployed layout*, with every per-(query,
   signature) estimate shared across epochs through one
   :class:`~repro.core.batch_eval.QueryEstimateCache` (owned by the
   per-epoch :class:`~repro.core.context.EvaluationContext`) -- an
   unchanged query on an unchanged placement is never re-estimated, which is
   what makes running the advisor every epoch affordable;
4. prices the layout transition with the
   :class:`~repro.online.migration.MigrationCostModel` and only **re-tiers**
   when the :class:`~repro.online.migration.ReProvisioningPolicy` projects
   the TOC savings to amortise the migration within its horizon;
5. records a timeline entry: the deployed layout, its TOC and PSR for the
   epoch, any migration performed and the cumulative migration-aware cost.

The controller's cumulative cost is directly comparable to
:meth:`OnlineAdvisor.evaluate_frozen`, which replays the same epochs on a
fixed layout -- the "provision once, never adapt" baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.batch_eval import QueryEstimateCache
from repro.core.context import EvaluationContext, make_incremental_evaluator
from repro.core.layout import Layout
from repro.core.solver import DOTSolver, Solver, SolveResult
from repro.core.profiler import WorkloadProfiler
from repro.core.toc import TOCModel, TOCReport
from repro.objects import DatabaseObject
from repro.online.drift import EpochWorkload
from repro.online.migration import (
    MigrationCost,
    MigrationCostModel,
    MigrationPlan,
    ReProvisioningPolicy,
)
from repro.online.monitor import DriftDecision, DriftThresholds, TelemetryMonitor
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.sla.psr import performance_satisfaction_ratio
from repro.storage.storage_class import StorageSystem
from repro.workloads.workload import Workload


@dataclass
class EpochRecord:
    """One row of the online advisor's timeline."""

    epoch: int
    workload_name: str
    phase_weights: Tuple[float, ...]
    layout: Layout
    toc_cents: float
    psr: float
    drift: DriftDecision
    reoptimized: bool
    migrated: bool
    migration: Optional[MigrationCost]
    migration_reason: str
    epoch_cost_cents: float
    cumulative_cost_cents: float
    #: Uniform solver outcome of the epoch's re-optimization (``None`` when
    #: no drift triggered one); the legacy per-solver result object is
    #: reachable through ``dot_result.raw``.
    dot_result: Optional[SolveResult] = field(default=None, repr=False)
    report: Optional[TOCReport] = field(default=None, repr=False)


@dataclass
class OnlineRunResult:
    """The full timeline of one online re-provisioning run."""

    records: List[EpochRecord]

    @property
    def num_epochs(self) -> int:
        """Number of epochs the run covered."""
        return len(self.records)

    @property
    def cumulative_cost_cents(self) -> float:
        """Total TOC plus migration charges over the whole run."""
        if not self.records:
            return 0.0
        return self.records[-1].cumulative_cost_cents

    @property
    def total_migration_cents(self) -> float:
        """Total migration charges over the run."""
        return sum(
            record.migration.cost_cents
            for record in self.records
            if record.migrated and record.migration is not None
        )

    @property
    def retier_epochs(self) -> Tuple[int, ...]:
        """Epochs at which a charged migration re-tiered the deployed layout.

        The initial provisioning (first record, ``migration is None``) is
        not a re-tier, whatever its epoch label.
        """
        return tuple(
            record.epoch
            for record in self.records
            if record.migrated and record.migration is not None
        )

    @property
    def min_psr(self) -> float:
        """The worst per-epoch PSR of the run."""
        return min((record.psr for record in self.records), default=1.0)

    def describe(self) -> str:
        """Render the timeline as a fixed-width text table."""
        from repro.experiments.reporting import format_table

        rows = []
        for record in self.records:
            weights = "/".join(f"{weight * 100:.0f}" for weight in record.phase_weights)
            migration_gb = (
                record.migration.bytes_moved_gb
                if record.migrated and record.migration is not None
                else 0.0
            )
            migration_cents = (
                record.migration.cost_cents
                if record.migrated and record.migration is not None
                else 0.0
            )
            rows.append(
                [
                    record.epoch,
                    weights,
                    record.layout.name,
                    record.toc_cents,
                    round(record.psr * 100.0, 1),
                    f"{record.drift.share_distance:.3f}",
                    "yes" if record.migrated else "no",
                    migration_gb,
                    migration_cents,
                    record.cumulative_cost_cents,
                ]
            )
        return format_table(
            [
                "Epoch", "Mix (%)", "Layout", "TOC (cents)", "PSR (%)",
                "Drift", "Re-tier", "Moved (GB)", "Mig. cost (c)", "Cum. cost (c)",
            ],
            rows,
        )


@dataclass
class FrozenEpochRecord:
    """One epoch of the frozen-layout baseline replay."""

    epoch: int
    workload_name: str
    toc_cents: float
    psr: float
    cumulative_cost_cents: float


@dataclass
class FrozenRunResult:
    """The frozen-layout baseline: the same epochs on one fixed layout."""

    layout: Layout
    records: List[FrozenEpochRecord]

    @property
    def cumulative_cost_cents(self) -> float:
        """Total TOC of the fixed layout over the whole run."""
        if not self.records:
            return 0.0
        return self.records[-1].cumulative_cost_cents

    @property
    def min_psr(self) -> float:
        """The worst per-epoch PSR of the replay."""
        return min((record.psr for record in self.records), default=1.0)


class OnlineAdvisor:
    """Epoch-driven re-provisioning on top of the DOT pipeline.

    Parameters
    ----------
    objects / system / estimator:
        As for :class:`~repro.core.advisor.ProvisioningAdvisor`.
    sla:
        A :class:`~repro.sla.constraints.RelativeSLA` re-resolved against
        the best-performing reference layout *per epoch* (the caps track
        the drifting workload), or an absolute constraint applied as-is,
        or ``None``.
    thresholds:
        Drift sensitivities for the telemetry monitor.
    policy:
        The migration amortization policy.
    migration_model:
        Migration cost model (defaults to one over ``system``).
    evaluation_mode:
        ``"estimate"`` (default, deterministic) or ``"run"`` (simulated
        test runs with buffer pool and noise) for the per-epoch accounting.
        In run mode the estimator's noise RNG advances with every
        evaluation, so an online run followed by a frozen replay on the
        *same* estimator draws different noise positions per epoch; for a
        controlled online-vs-frozen comparison use estimate mode (as the
        drift experiment does) or a fresh estimator per arm.
    initial_layout:
        The layout deployed before epoch 0 (defaults to the paper's
        all-most-expensive reference).  Epoch 0 always provisions from it
        cold, free of migration charges -- both the online run and the
        frozen baseline start from the same initial provisioning.
    solver:
        The :class:`~repro.core.solver.Solver` the loop re-tiers through
        (default: a :class:`~repro.core.solver.DOTSolver` honouring
        ``capacity_relaxed_walk``).  Every epoch's re-optimization builds an
        :class:`~repro.core.context.EvaluationContext` around the epoch
        workload and calls ``solver.solve(context,
        initial_layout=deployed)``, so any protocol-conforming solver can
        drive the loop.
    """

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = None,
        thresholds: Optional[DriftThresholds] = None,
        policy: Optional[ReProvisioningPolicy] = None,
        migration_model: Optional[MigrationCostModel] = None,
        evaluation_mode: str = "estimate",
        initial_layout: Optional[Layout] = None,
        capacity_relaxed_walk: bool = True,
        solver: Optional[Solver] = None,
    ):
        if evaluation_mode not in ("estimate", "run"):
            raise ValueError(f"unknown evaluation mode {evaluation_mode!r}")
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.sla = sla
        self.thresholds = thresholds or DriftThresholds()
        self.policy = policy or ReProvisioningPolicy()
        self.migration_model = migration_model or MigrationCostModel(system)
        self.evaluation_mode = evaluation_mode
        self.initial_layout = initial_layout
        self.capacity_relaxed_walk = capacity_relaxed_walk
        self.solver = solver or DOTSolver(capacity_relaxed_walk=capacity_relaxed_walk)
        self.toc_model = TOCModel(estimator)

    # ------------------------------------------------------------------
    def reference_layout(self) -> Layout:
        """The best-performing reference: everything on the priciest class."""
        return Layout.uniform(self.objects, self.system, self.system.most_expensive().name)

    def _epoch_evaluator(self, workload, cache: Optional[QueryEstimateCache]):
        """A cache-backed estimate evaluator for one epoch's workload.

        Every estimate-mode evaluation of the loop (drift observation, SLA
        re-resolution against the reference layout, reference rebasing,
        per-epoch accounting) goes through it, so an unchanged query on an
        unchanged placement is never re-estimated -- across layouts *and*
        across epochs.  ``None`` (exotic workload kinds) falls back to the
        full scalar estimator.
        """
        return make_incremental_evaluator(
            self.estimator, workload, self.toc_model, cache=cache, collect_io=True
        )

    def _estimate(self, layout: Layout, workload, evaluator) -> TOCReport:
        """Estimate-mode TOC report, through the shared cache when possible."""
        if evaluator is not None:
            return evaluator.evaluate(layout)
        return self.toc_model.evaluate(layout, workload, mode="estimate")

    def _epoch_constraint(self, workload, evaluator=None) -> Optional[PerformanceConstraint]:
        """Resolve the SLA for one epoch's workload (estimate-derived caps)."""
        if self.sla is None or isinstance(self.sla, PerformanceConstraint):
            return self.sla
        reference = self._estimate(self.reference_layout(), workload, evaluator)
        return self.sla.resolve(reference.run_result)

    @staticmethod
    def _as_epoch(item: Union[EpochWorkload, Workload], position: int) -> EpochWorkload:
        if isinstance(item, EpochWorkload):
            return item
        return EpochWorkload(epoch=position, weights=(1.0,), workload=item)

    # ------------------------------------------------------------------
    def run(self, epoch_workloads: Iterable[Union[EpochWorkload, Workload]]) -> OnlineRunResult:
        """Drive the re-provisioning loop over a sequence of epoch workloads."""
        records: List[EpochRecord] = []
        cache: Optional[QueryEstimateCache] = None
        profiler: Optional[WorkloadProfiler] = None
        monitor: Optional[TelemetryMonitor] = None
        current: Optional[Layout] = None
        cumulative = 0.0

        for position, item in enumerate(epoch_workloads):
            epoch_item = self._as_epoch(item, position)
            epoch = epoch_item.epoch
            workload = epoch_item.workload
            concurrency = getattr(workload, "concurrency", 1)
            if cache is None:
                cache = QueryEstimateCache(self.estimator, concurrency)
                profiler = WorkloadProfiler(
                    self.objects, self.system, self.estimator, estimate_cache=cache
                )
                monitor = TelemetryMonitor(
                    self.system, thresholds=self.thresholds, concurrency=concurrency
                )
            if current is None:
                current = (
                    self.initial_layout
                    if self.initial_layout is not None
                    else self.reference_layout()
                )

            evaluator = self._epoch_evaluator(workload, cache)
            constraint = self._epoch_constraint(workload, evaluator)

            # 1 + 2: observe the epoch on the deployed layout, score drift.
            observed = self._estimate(current, workload, evaluator)
            monitor.observe(epoch, observed.run_result)
            decision = monitor.check_drift()

            # 3 + 4: on drift (or at initial provisioning), re-optimize and
            # gate the transition on the migration-aware TOC comparison.
            initial_epoch = not records
            reoptimized = False
            migrated = False
            migration: Optional[MigrationCost] = None
            migration_reason = "no drift"
            dot_result: Optional[SolveResult] = None
            retiered_report: Optional[TOCReport] = None
            if initial_epoch or decision.drifted:
                reoptimized = True
                dot_result, candidate = self._reoptimize(
                    workload, profiler, cache, constraint,
                    warm_from=None if initial_epoch else current,
                )
                if candidate is None or candidate == current:
                    migration_reason = (
                        "no feasible layout" if candidate is None else "layout unchanged"
                    )
                    # The deployed layout was re-validated against the drifted
                    # telemetry; rebase the reference (and arm the cooldown) so
                    # the same drift does not trigger a futile re-optimization
                    # every remaining epoch.
                    monitor.mark_reprovisioned(epoch, observed.run_result)
                elif initial_epoch:
                    current = candidate.renamed(f"DOT@epoch{epoch}")
                    retiered_report = self._rebase_monitor(
                        monitor, epoch, current, workload, evaluator
                    )
                    migrated = True
                    migration_reason = "initial provisioning (not charged)"
                else:
                    plan = MigrationPlan.between(current, candidate)
                    migration = self.migration_model.assess(
                        plan, layout_cost_cents_per_hour=candidate.storage_cost_cents_per_hour()
                    )
                    if self.policy.should_migrate(
                        observed.toc_cents, dot_result.toc_cents, migration.cost_cents
                    ):
                        current = candidate.renamed(f"DOT@epoch{epoch}")
                        retiered_report = self._rebase_monitor(
                            monitor, epoch, current, workload, evaluator
                        )
                        migrated = True
                        migration_reason = (
                            f"projected net saving "
                            f"{self.policy.projected_net_saving_cents(observed.toc_cents, dot_result.toc_cents, migration.cost_cents):.4g} c"
                        )
                    else:
                        migration = None
                        migration_reason = "migration cost exceeds projected saving"

            # 5: account the epoch on the (possibly re-tiered) layout.  In
            # estimate mode the deployed layout's report already exists --
            # `observed` when it did not change, the rebase refresh when it
            # did -- so nothing is recomputed.
            if self.evaluation_mode == "estimate":
                report = retiered_report if retiered_report is not None else observed
            else:
                # Simulated test runs are stateful (noise RNG) and must
                # never be served from the estimate tables.
                report = self.toc_model.evaluate(current, workload, mode="run")
            psr = (
                performance_satisfaction_ratio(constraint, report.run_result)
                if constraint is not None
                else 1.0
            )
            migration_charge = (
                migration.cost_cents if migrated and migration is not None else 0.0
            )
            epoch_cost = report.toc_cents + migration_charge
            cumulative += epoch_cost
            records.append(
                EpochRecord(
                    epoch=epoch,
                    workload_name=getattr(workload, "name", "workload"),
                    phase_weights=tuple(epoch_item.weights),
                    layout=current,
                    toc_cents=report.toc_cents,
                    psr=psr,
                    drift=decision,
                    reoptimized=reoptimized,
                    migrated=migrated,
                    migration=migration,
                    migration_reason=migration_reason,
                    epoch_cost_cents=epoch_cost,
                    cumulative_cost_cents=cumulative,
                    dot_result=dot_result,
                    report=report,
                )
            )
        return OnlineRunResult(records=records)

    # ------------------------------------------------------------------
    def _rebase_monitor(self, monitor: TelemetryMonitor, epoch: int,
                        layout: Layout, workload, evaluator) -> TOCReport:
        """Point the drift reference at the new layout's own telemetry.

        I/O counts depend on the layout (a re-tier can flip plans), so the
        reference must be what the monitor will see for an *unchanged*
        workload under the *new* layout -- otherwise every epoch after a
        re-tier scores phantom drift and re-optimizes for nothing.  Returns
        the new layout's report so the caller can account the epoch from it.
        """
        refreshed = self._estimate(layout, workload, evaluator)
        monitor.mark_reprovisioned(epoch, refreshed.run_result)
        return refreshed

    # ------------------------------------------------------------------
    def _reoptimize(
        self,
        workload,
        profiler: WorkloadProfiler,
        cache: QueryEstimateCache,
        constraint: Optional[PerformanceConstraint],
        warm_from: Optional[Layout],
    ) -> Tuple[SolveResult, Optional[Layout]]:
        """Re-profile and re-solve, warm then (if infeasible) cold.

        The epoch's problem is packaged as an
        :class:`~repro.core.context.EvaluationContext` (sharing the loop's
        estimate cache and the freshly re-profiled workload) and handed to
        the configured solver through the uniform ``solve`` protocol.  The
        warm solve starts from the deployed layout, which is cheap when the
        drift is small but -- for DOT -- can never return a group to the
        all-most-expensive placement; when it finds nothing feasible (e.g.
        the drift *tightened* the effective SLA), the cold restart explores
        from the fast end exactly as the paper's Procedure 1 does.
        """
        profiles = profiler.profile(workload, mode="estimate")
        context = EvaluationContext(
            objects=self.objects,
            system=self.system,
            estimator=self.estimator,
            workload=workload,
            constraint=constraint,
            sla=self.sla if isinstance(self.sla, RelativeSLA) else None,
            profiles=profiles,
            estimate_cache=cache,
        )
        result = self.solver.solve(context, initial_layout=warm_from)
        if not result.feasible and warm_from is not None:
            result = self.solver.solve(context)
        return result, result.layout if result.feasible else None

    # ------------------------------------------------------------------
    def evaluate_frozen(
        self,
        epoch_workloads: Iterable[Union[EpochWorkload, Workload]],
        layout: Layout,
    ) -> FrozenRunResult:
        """Replay the same epochs on one fixed layout (no re-provisioning).

        This is the provision-once baseline the online run is compared
        against; it pays no migration charges but keeps serving a drifted
        workload with a stale layout.
        """
        records: List[FrozenEpochRecord] = []
        cache: Optional[QueryEstimateCache] = None
        cumulative = 0.0
        for position, item in enumerate(epoch_workloads):
            epoch_item = self._as_epoch(item, position)
            workload = epoch_item.workload
            if cache is None:
                cache = QueryEstimateCache(self.estimator, getattr(workload, "concurrency", 1))
            evaluator = self._epoch_evaluator(workload, cache)
            constraint = self._epoch_constraint(workload, evaluator)
            if self.evaluation_mode == "estimate":
                report = self._estimate(layout, workload, evaluator)
            else:
                report = self.toc_model.evaluate(layout, workload, mode="run")
            psr = (
                performance_satisfaction_ratio(constraint, report.run_result)
                if constraint is not None
                else 1.0
            )
            cumulative += report.toc_cents
            records.append(
                FrozenEpochRecord(
                    epoch=epoch_item.epoch,
                    workload_name=getattr(workload, "name", "workload"),
                    toc_cents=report.toc_cents,
                    psr=psr,
                    cumulative_cost_cents=cumulative,
                )
            )
        return FrozenRunResult(layout=layout, records=records)
