"""Storage classes and storage systems.

A *storage class* (paper Section 2.2) is the unit onto which database objects
are placed: an individual device or a RAID group, with a price ``p_j``
(cent/GB/hour), a capacity ``c_j`` (GB) and an I/O profile.  A *storage
system* is the ordered collection of storage classes available in one server
box (the paper's Box 1 and Box 2 each expose three classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, UnknownStorageClassError
from repro.storage.device import DeviceSpec
from repro.storage.io_profile import IOProfile, IOType
from repro.storage.pricing import PricingModel
from repro.storage.raid import Raid0Array


@dataclass(frozen=True)
class StorageClass:
    """A placement target: device or RAID group with price, capacity and profile.

    Attributes
    ----------
    name:
        Short identifier used in layouts and reports (e.g. ``"HDD RAID 0"``).
    capacity_gb:
        Usable capacity in GB (``c_j`` in the paper).
    price_cents_per_gb_hour:
        Amortised storage price (``p_j`` in the paper, Table 1 row 2).
    io_profile:
        Per-I/O-type service times at calibrated concurrencies.
    description:
        Optional free-form hardware description for reports.
    """

    name: str
    capacity_gb: float
    price_cents_per_gb_hour: float
    io_profile: IOProfile
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("storage class name must be non-empty")
        if self.capacity_gb <= 0:
            raise ConfigurationError(f"storage class {self.name!r} must have positive capacity")
        if self.price_cents_per_gb_hour <= 0:
            raise ConfigurationError(f"storage class {self.name!r} must have a positive price")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_device(
        cls,
        name: str,
        device: DeviceSpec,
        io_profile: IOProfile,
        pricing: Optional[PricingModel] = None,
        capacity_gb: Optional[float] = None,
    ) -> "StorageClass":
        """Build a storage class from a single device and its measured profile."""
        pricing = pricing or PricingModel()
        price = pricing.price_cents_per_gb_hour(
            device.purchase_cost_usd, device.power_watts, device.capacity_gb
        )
        return cls(
            name=name,
            capacity_gb=capacity_gb if capacity_gb is not None else device.capacity_gb,
            price_cents_per_gb_hour=price,
            io_profile=io_profile,
            description=device.describe(),
        )

    @classmethod
    def from_raid0(
        cls,
        name: str,
        array: Raid0Array,
        io_profile: IOProfile,
        pricing: Optional[PricingModel] = None,
        capacity_gb: Optional[float] = None,
    ) -> "StorageClass":
        """Build a storage class from a RAID 0 array and its (derived) profile."""
        pricing = pricing or PricingModel()
        price = pricing.price_cents_per_gb_hour(
            array.purchase_cost_usd, array.power_watts, array.capacity_gb
        )
        return cls(
            name=name,
            capacity_gb=capacity_gb if capacity_gb is not None else array.capacity_gb,
            price_cents_per_gb_hour=price,
            io_profile=io_profile,
            description=array.describe(),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def service_time_ms(self, io_type: IOType, concurrency: int = 1) -> float:
        """Milliseconds per I/O of ``io_type`` at the given degree of concurrency."""
        return self.io_profile.service_time_ms(io_type, concurrency)

    def storage_cost_cents_per_hour(self, used_gb: float) -> float:
        """Hourly cost of occupying ``used_gb`` GB of this class (``p_j * S_j``)."""
        if used_gb < 0:
            raise ValueError("used space cannot be negative")
        return self.price_cents_per_gb_hour * used_gb

    def with_capacity(self, capacity_gb: float) -> "StorageClass":
        """Return a copy of this class with a different capacity limit.

        Used by the capacity-constrained experiments (Sections 4.4.3, 4.5.3)
        where artificial limits are imposed on otherwise large devices.
        """
        return StorageClass(
            name=self.name,
            capacity_gb=capacity_gb,
            price_cents_per_gb_hour=self.price_cents_per_gb_hour,
            io_profile=self.io_profile,
            description=self.description,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StorageClass({self.name!r}, {self.capacity_gb:g} GB, "
            f"{self.price_cents_per_gb_hour:.3e} c/GB/h)"
        )


class StorageSystem:
    """The set of storage classes available on one server box.

    The order of classes is preserved; by convention the classes are listed
    from most expensive (per GB/hour) to least, but :meth:`sorted_by_price`
    never relies on insertion order.
    """

    def __init__(self, classes: Sequence[StorageClass], name: str = "storage-system"):
        if not classes:
            raise ConfigurationError("a storage system needs at least one storage class")
        names = [storage_class.name for storage_class in classes]
        if len(set(names)) != len(names):
            raise ConfigurationError("storage class names within a system must be unique")
        self.name = name
        self._classes: Dict[str, StorageClass] = {sc.name: sc for sc in classes}
        self._order: List[str] = list(names)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[StorageClass]:
        return iter(self._classes[name] for name in self._order)

    def __contains__(self, name: object) -> bool:
        return name in self._classes

    def __getitem__(self, name: str) -> StorageClass:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownStorageClassError(name) from None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def class_names(self) -> Tuple[str, ...]:
        """The storage class names in their declared order."""
        return tuple(self._order)

    def get(self, name: str) -> StorageClass:
        """Look up a storage class by name (raises :class:`UnknownStorageClassError`)."""
        return self[name]

    def sorted_by_price(self, descending: bool = True) -> List[StorageClass]:
        """Classes sorted by price per GB/hour (most expensive first by default)."""
        return sorted(
            self._classes.values(),
            key=lambda sc: sc.price_cents_per_gb_hour,
            reverse=descending,
        )

    def most_expensive(self) -> StorageClass:
        """The priciest class -- DOT's initial layout puts every object here."""
        return self.sorted_by_price(descending=True)[0]

    def cheapest(self) -> StorageClass:
        """The cheapest class per GB/hour."""
        return self.sorted_by_price(descending=False)[0]

    def fastest_for(self, io_type: IOType, concurrency: int = 1) -> StorageClass:
        """The class with the lowest service time for the given I/O type."""
        return min(self._classes.values(), key=lambda sc: sc.service_time_ms(io_type, concurrency))

    def total_capacity_gb(self) -> float:
        """Sum of all class capacities."""
        return sum(sc.capacity_gb for sc in self._classes.values())

    def price_vector(self) -> Dict[str, float]:
        """The paper's price vector ``P = {p_1, ..., p_M}`` keyed by class name."""
        return {name: self._classes[name].price_cents_per_gb_hour for name in self._order}

    def capacity_vector(self) -> Dict[str, float]:
        """The paper's capacity vector ``C = {c_1, ..., c_M}`` keyed by class name."""
        return {name: self._classes[name].capacity_gb for name in self._order}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def with_capacity_limits(self, limits_gb: Mapping[str, float]) -> "StorageSystem":
        """Return a new system with some class capacities replaced.

        ``limits_gb`` maps class name to the new capacity; classes not listed
        keep their capacity.  Used by the ES-vs-DOT experiments that impose
        artificial capacity limits.
        """
        new_classes = []
        for name in self._order:
            storage_class = self._classes[name]
            if name in limits_gb:
                storage_class = storage_class.with_capacity(limits_gb[name])
            new_classes.append(storage_class)
        return StorageSystem(new_classes, name=self.name)

    def subset(self, names: Iterable[str]) -> "StorageSystem":
        """Return a system restricted to the named classes (order preserved)."""
        wanted = [name for name in self._order if name in set(names)]
        if not wanted:
            raise ConfigurationError("subset would produce an empty storage system")
        return StorageSystem([self._classes[name] for name in wanted], name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StorageSystem({self.name!r}, classes={list(self._order)})"
