"""The Section 3.5.1 storage micro-benchmark (regenerates Table 1 rows 3-6).

The paper characterises every storage class by running, from inside the DBMS,
``K`` concurrent threads that each issue simple queries over a private table
``A_i`` (with a B+-tree primary-key index):

* Sequential read  (SR): ``select count(*) from A_i`` -- a full table scan.
* Random read      (RR): ``select count(*) from A_i where id = ?`` -- point
  lookups with random keys.
* Sequential write (SW): single-row ``insert`` statements.
* Random write     (RW): ``update A_i set a = ? where id = ?`` -- each update
  is a random read followed by a random write; the RW time is recovered by
  subtracting the previously measured RR time from the update time.

The per-I/O time is the total elapsed time divided by the number of I/O
requests.  This module reproduces that procedure on top of the device
simulator, so the regenerated Table 1 exercises the same code path as the
paper's calibration even though the "devices" are models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.storage.io_profile import IOType
from repro.storage.simulator import DeviceSimulator, IORequest
from repro.storage.storage_class import StorageClass


@dataclass(frozen=True)
class StorageClassProfileRow:
    """One measured column of Table 1: per-I/O times for a storage class."""

    storage_class: str
    concurrency: int
    seq_read_ms: float
    rand_read_ms: float
    seq_write_ms: float
    rand_write_ms: float

    def as_dict(self) -> Dict[IOType, float]:
        """Return the row keyed by :class:`IOType`."""
        return {
            IOType.SEQ_READ: self.seq_read_ms,
            IOType.RAND_READ: self.rand_read_ms,
            IOType.SEQ_WRITE: self.seq_write_ms,
            IOType.RAND_WRITE: self.rand_write_ms,
        }


@dataclass(frozen=True)
class MicroBenchmarkConfig:
    """Workload sizes for the micro-benchmark.

    The defaults are large enough for the jittered means to converge to the
    calibrated latencies within a couple of percent while staying fast.
    """

    table_pages: int = 2000
    point_lookups_per_thread: int = 200
    inserts_per_thread: int = 500
    updates_per_thread: int = 200
    index_levels: int = 3


class MicroBenchmark:
    """Benchmarks storage classes with the paper's four query templates."""

    def __init__(
        self,
        config: Optional[MicroBenchmarkConfig] = None,
        jitter: float = 0.02,
        seed: Optional[int] = 2011,
    ):
        self.config = config or MicroBenchmarkConfig()
        self.jitter = jitter
        self.seed = seed

    # ------------------------------------------------------------------
    def _simulator(self, storage_class: StorageClass, concurrency: int) -> DeviceSimulator:
        return DeviceSimulator(
            storage_class, concurrency=concurrency, jitter=self.jitter, seed=self.seed
        )

    def _run_sequential_read(self, sim: DeviceSimulator, threads: int) -> float:
        """``select count(*) from A_i`` per thread: one SR per table page."""
        pages = self.config.table_pages
        elapsed = sim.run([IORequest(IOType.SEQ_READ, pages) for _ in range(threads)])
        total_requests = pages * threads
        return elapsed / total_requests

    def _run_random_read(self, sim: DeviceSimulator, threads: int) -> float:
        """Point lookups: each traverses the B+-tree and reads the heap page."""
        lookups = self.config.point_lookups_per_thread
        ios_per_lookup = self.config.index_levels + 1
        elapsed = sim.run(
            [IORequest(IOType.RAND_READ, lookups * ios_per_lookup) for _ in range(threads)]
        )
        total_requests = lookups * ios_per_lookup * threads
        return elapsed / total_requests

    def _run_sequential_write(self, sim: DeviceSimulator, threads: int) -> float:
        """Single-row inserts: one sequential (append) write per row."""
        inserts = self.config.inserts_per_thread
        elapsed = sim.run([IORequest(IOType.SEQ_WRITE, inserts) for _ in range(threads)])
        total_rows = inserts * threads
        return elapsed / total_rows

    def _run_update(self, sim: DeviceSimulator, threads: int) -> float:
        """Keyed updates: each is a random read plus a random write."""
        updates = self.config.updates_per_thread
        read_ios_per_update = self.config.index_levels + 1
        requests = []
        for _ in range(threads):
            requests.append(IORequest(IOType.RAND_READ, updates * read_ios_per_update))
            requests.append(IORequest(IOType.RAND_WRITE, updates))
        elapsed = sim.run(requests)
        return elapsed / (updates * threads)

    # ------------------------------------------------------------------
    def profile(self, storage_class: StorageClass, concurrency: int = 1) -> StorageClassProfileRow:
        """Measure one storage class at the given degree of concurrency.

        The simulated thread count is capped (the per-request latencies are
        already calibrated for the requested concurrency, so simulating all
        300 threads would only add runtime, not fidelity).
        """
        threads = min(concurrency, 8)
        read_ios_per_update = self.config.index_levels + 1

        sim = self._simulator(storage_class, concurrency)
        seq_read_ms = self._run_sequential_read(sim, threads)

        sim = self._simulator(storage_class, concurrency)
        rand_read_ms = self._run_random_read(sim, threads)

        sim = self._simulator(storage_class, concurrency)
        seq_write_ms = self._run_sequential_write(sim, threads)

        sim = self._simulator(storage_class, concurrency)
        update_ms_per_row = self._run_update(sim, threads)
        # Recover the pure RW time by subtracting the RR component of each
        # update, exactly as the paper does (Section 3.5.1).
        rand_write_ms = max(update_ms_per_row - rand_read_ms * read_ios_per_update, 0.0)

        return StorageClassProfileRow(
            storage_class=storage_class.name,
            concurrency=concurrency,
            seq_read_ms=seq_read_ms,
            rand_read_ms=rand_read_ms,
            seq_write_ms=seq_write_ms,
            rand_write_ms=rand_write_ms,
        )

    def profile_all(
        self,
        storage_classes: Mapping[str, StorageClass],
        concurrencies: Sequence[int] = (1, 300),
    ) -> Dict[str, Dict[int, StorageClassProfileRow]]:
        """Profile several storage classes at several concurrencies.

        Returns ``{class_name: {concurrency: row}}`` -- the structure of the
        paper's Table 1.
        """
        table: Dict[str, Dict[int, StorageClassProfileRow]] = {}
        for name, storage_class in storage_classes.items():
            table[name] = {
                int(c): self.profile(storage_class, int(c)) for c in concurrencies
            }
        return table


def format_table1(
    rows: Mapping[str, Mapping[int, StorageClassProfileRow]],
    prices: Optional[Mapping[str, float]] = None,
) -> str:
    """Render the Table 1 reproduction as fixed-width text.

    ``rows`` is the output of :meth:`MicroBenchmark.profile_all`; ``prices``
    optionally adds the cent/GB/hour row.
    """
    names = list(rows)
    header = f"{'':<24}" + "".join(f"{name:>16}" for name in names)
    lines = [header]
    if prices is not None:
        price_cells = "".join(f"{prices.get(name, float('nan')):>16.3e}" for name in names)
        lines.append(f"{'TOC/GB/hour (cents)':<24}" + price_cells)

    def metric_line(label: str, getter) -> str:
        cells = []
        for name in names:
            by_conc = rows[name]
            concurrencies = sorted(by_conc)
            single = getter(by_conc[concurrencies[0]])
            if len(concurrencies) > 1:
                concurrent = getter(by_conc[concurrencies[-1]])
                cells.append(f"{single:>8.3f} ({concurrent:.3f})")
            else:
                cells.append(f"{single:>16.3f}")
        return f"{label:<24}" + "".join(f"{cell:>16}" for cell in cells)

    lines.append(metric_line("Sequential Read (ms/IO)", lambda r: r.seq_read_ms))
    lines.append(metric_line("Random Read (ms/IO)", lambda r: r.rand_read_ms))
    lines.append(metric_line("Sequential Write (ms/row)", lambda r: r.seq_write_ms))
    lines.append(metric_line("Random Write (ms/row)", lambda r: r.rand_write_ms))
    return "\n".join(lines)
