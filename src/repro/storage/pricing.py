"""Amortised storage pricing (cent/GB/hour), reproducing Table 1 row 2.

The paper's cost model (Section 2.1 and 4.1) distributes the purchase cost of
each device (including any RAID controller) over a 36-month lifespan and adds
the run-time energy cost at $0.07 per kWh.  The result is a price ``p_j`` in
cents per GB per hour for each storage class ``d_j``; the layout cost is then
``C(L) = sum_j p_j * S_j`` where ``S_j`` is the space the layout uses on
class ``j``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.units import dollars_to_cents, months_to_hours, watts_to_kilowatts

#: Amortisation period used by the paper (Section 2.1).
DEFAULT_LIFESPAN_MONTHS = 36.0

#: Data-centre energy price used by the paper ($/kWh, from Hamilton's CEMS work).
DEFAULT_ENERGY_USD_PER_KWH = 0.07


@dataclass(frozen=True)
class PricingModel:
    """Computes amortised cent/GB/hour prices for storage hardware.

    Parameters
    ----------
    lifespan_months:
        Period over which the purchase cost is amortised (paper: 36 months).
    energy_usd_per_kwh:
        Electricity price (paper: $0.07/kWh).
    """

    lifespan_months: float = DEFAULT_LIFESPAN_MONTHS
    energy_usd_per_kwh: float = DEFAULT_ENERGY_USD_PER_KWH

    def __post_init__(self) -> None:
        if self.lifespan_months <= 0:
            raise ConfigurationError("amortisation lifespan must be positive")
        if self.energy_usd_per_kwh < 0:
            raise ConfigurationError("energy price cannot be negative")

    # ------------------------------------------------------------------
    def amortized_purchase_cents_per_hour(self, purchase_cost_usd: float) -> float:
        """Purchase cost converted to cents per hour of ownership."""
        if purchase_cost_usd < 0:
            raise ConfigurationError("purchase cost cannot be negative")
        return dollars_to_cents(purchase_cost_usd) / months_to_hours(self.lifespan_months)

    def energy_cents_per_hour(self, power_watts: float) -> float:
        """Run-time energy cost in cents per hour for a given power draw."""
        if power_watts < 0:
            raise ConfigurationError("power draw cannot be negative")
        kwh_per_hour = watts_to_kilowatts(power_watts)
        return dollars_to_cents(kwh_per_hour * self.energy_usd_per_kwh)

    def total_cents_per_hour(self, purchase_cost_usd: float, power_watts: float) -> float:
        """Total (purchase + energy) cost in cents per hour of operation."""
        return self.amortized_purchase_cents_per_hour(purchase_cost_usd) + self.energy_cents_per_hour(
            power_watts
        )

    def price_cents_per_gb_hour(
        self, purchase_cost_usd: float, power_watts: float, capacity_gb: float
    ) -> float:
        """The storage price ``p_j`` of the paper: cents per GB per hour."""
        if capacity_gb <= 0:
            raise ConfigurationError("capacity must be positive")
        return self.total_cents_per_hour(purchase_cost_usd, power_watts) / capacity_gb


def amortized_price_cents_per_gb_hour(
    purchase_cost_usd: float,
    power_watts: float,
    capacity_gb: float,
    lifespan_months: float = DEFAULT_LIFESPAN_MONTHS,
    energy_usd_per_kwh: float = DEFAULT_ENERGY_USD_PER_KWH,
) -> float:
    """Functional shortcut for :meth:`PricingModel.price_cents_per_gb_hour`."""
    model = PricingModel(lifespan_months=lifespan_months, energy_usd_per_kwh=energy_usd_per_kwh)
    return model.price_cents_per_gb_hour(purchase_cost_usd, power_watts, capacity_gb)
