"""Physical storage device specifications (the paper's Table 2).

A :class:`DeviceSpec` captures the purchase cost, capacity, power draw and
interface details of a single physical device.  Storage classes (HDD,
HDD RAID 0, L-SSD, L-SSD RAID 0, H-SSD) are built from device specs in
:mod:`repro.storage.storage_class` and :mod:`repro.storage.raid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.exceptions import ConfigurationError


class DeviceKind(str, Enum):
    """Broad device technology categories."""

    HDD = "HDD"
    SSD = "SSD"


@dataclass(frozen=True)
class DeviceSpec:
    """Specification of a single physical storage device.

    Attributes
    ----------
    name:
        Human-readable model name (e.g. ``"WD Caviar Black"``).
    kind:
        Whether the device is a spinning disk or a solid state drive.
    capacity_gb:
        Usable capacity in GB.
    purchase_cost_usd:
        One-off purchase price in US dollars.
    power_watts:
        Average power dissipation while serving the workload, in watts.  The
        paper uses the average of read and write active power.
    interface:
        Connection interface (SATA II, PCI-Express, ...).
    rpm:
        Spindle speed for HDDs, ``None`` for SSDs.
    cache_mb:
        On-device cache size in MB, ``None`` if not applicable/unknown.
    flash_type:
        ``"MLC"`` / ``"SLC"`` for SSDs, ``None`` for HDDs.
    """

    name: str
    kind: DeviceKind
    capacity_gb: float
    purchase_cost_usd: float
    power_watts: float
    interface: str = "SATA II"
    rpm: Optional[int] = None
    cache_mb: Optional[float] = None
    flash_type: Optional[str] = None

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0:
            raise ConfigurationError(f"device {self.name!r} must have positive capacity")
        if self.purchase_cost_usd < 0:
            raise ConfigurationError(f"device {self.name!r} cannot have negative purchase cost")
        if self.power_watts < 0:
            raise ConfigurationError(f"device {self.name!r} cannot have negative power draw")

    @property
    def is_ssd(self) -> bool:
        """True if the device is flash based."""
        return self.kind is DeviceKind.SSD

    @property
    def is_hdd(self) -> bool:
        """True if the device is a spinning disk."""
        return self.kind is DeviceKind.HDD

    @property
    def dollars_per_gb(self) -> float:
        """Purchase cost per GB (not amortised)."""
        return self.purchase_cost_usd / self.capacity_gb

    def describe(self) -> str:
        """One-line human readable description used in reports."""
        extra = []
        if self.rpm:
            extra.append(f"{self.rpm} RPM")
        if self.flash_type:
            extra.append(self.flash_type)
        if self.cache_mb:
            extra.append(f"{self.cache_mb:g} MB cache")
        suffix = f" ({', '.join(extra)})" if extra else ""
        return (
            f"{self.name}: {self.kind.value}, {self.capacity_gb:g} GB, "
            f"${self.purchase_cost_usd:,.0f}, {self.power_watts:g} W, {self.interface}{suffix}"
        )
