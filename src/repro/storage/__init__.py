"""Storage substrate: devices, RAID arrays, I/O profiles, pricing, storage classes.

This package models everything the paper's evaluation platform provided in
hardware: the three physical devices of Table 2, their RAID 0 compositions,
the amortised cent/GB/hour prices of Table 1, and the per-I/O-type service
times (at degree of concurrency 1 and 300) that the extended query optimizer
consumes.
"""

from repro.storage.device import DeviceKind, DeviceSpec
from repro.storage.io_profile import IOProfile, IOType
from repro.storage.pricing import PricingModel, amortized_price_cents_per_gb_hour
from repro.storage.raid import Raid0Array
from repro.storage.storage_class import StorageClass, StorageSystem
from repro.storage import catalog
from repro.storage.simulator import DeviceSimulator, IORequest
from repro.storage.microbench import MicroBenchmark, StorageClassProfileRow

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "IOProfile",
    "IOType",
    "PricingModel",
    "amortized_price_cents_per_gb_hour",
    "Raid0Array",
    "StorageClass",
    "StorageSystem",
    "catalog",
    "DeviceSimulator",
    "IORequest",
    "MicroBenchmark",
    "StorageClassProfileRow",
]
