"""RAID 0 composition of identical devices.

The paper's Box 1 and Box 2 include an HDD RAID 0 and an L-SSD RAID 0, each
built from two identical devices behind a Dell SAS6/iR controller ($110,
256 MB onboard cache, 8.25 W power surcharge).  A :class:`Raid0Array`
aggregates capacity, purchase cost and power of its members and derives an
I/O profile for the array from the member profile when a directly calibrated
array profile is not supplied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.exceptions import ConfigurationError
from repro.storage.device import DeviceSpec
from repro.storage.io_profile import IOProfile, IOType


#: Default striping speed-up factors applied to a single-device profile when
#: deriving a 2-way RAID 0 profile analytically.  Sequential I/O parallelises
#: well across stripes; random reads benefit mildly (two independent heads);
#: random writes benefit from spreading the writes over both members (the
#: effect the paper calls out for the L-SSD RAID 0 in Section 4.5.2).
DEFAULT_RAID0_SCALING: Mapping[IOType, float] = {
    IOType.SEQ_READ: 0.60,
    IOType.RAND_READ: 0.90,
    IOType.SEQ_WRITE: 0.80,
    IOType.RAND_WRITE: 0.55,
}


@dataclass(frozen=True)
class RaidController:
    """A RAID controller card contributing cost, cache and power surcharge."""

    name: str = "Dell SAS6/iR"
    purchase_cost_usd: float = 110.0
    cache_mb: float = 256.0
    power_watts: float = 8.25

    def __post_init__(self) -> None:
        if self.purchase_cost_usd < 0 or self.power_watts < 0:
            raise ConfigurationError("controller cost and power must be non-negative")


@dataclass(frozen=True)
class Raid0Array:
    """A RAID 0 stripe set of ``num_members`` identical devices.

    Attributes
    ----------
    member:
        The device spec of each stripe member.
    num_members:
        Number of identical devices in the array (the paper uses 2).
    controller:
        The RAID controller in front of the array.
    """

    member: DeviceSpec
    num_members: int = 2
    controller: RaidController = RaidController()

    def __post_init__(self) -> None:
        if self.num_members < 1:
            raise ConfigurationError("a RAID 0 array needs at least one member device")

    # ------------------------------------------------------------------
    # Aggregated hardware characteristics
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Derived array name, e.g. ``"WD Caviar Black x2 RAID 0"``."""
        return f"{self.member.name} x{self.num_members} RAID 0"

    @property
    def capacity_gb(self) -> float:
        """RAID 0 capacity is the sum of member capacities."""
        return self.member.capacity_gb * self.num_members

    @property
    def purchase_cost_usd(self) -> float:
        """Total purchase cost: members plus controller."""
        return self.member.purchase_cost_usd * self.num_members + self.controller.purchase_cost_usd

    @property
    def power_watts(self) -> float:
        """Total power draw: members plus controller surcharge."""
        return self.member.power_watts * self.num_members + self.controller.power_watts

    # ------------------------------------------------------------------
    # I/O profile derivation
    # ------------------------------------------------------------------
    def derive_profile(
        self,
        member_profile: IOProfile,
        scaling: Optional[Mapping[IOType, float]] = None,
    ) -> IOProfile:
        """Derive an array I/O profile from the single-member profile.

        ``scaling`` maps each I/O type to the factor by which the per-request
        latency shrinks (values < 1 mean the array is faster).  The defaults in
        :data:`DEFAULT_RAID0_SCALING` are calibrated for a 2-member array; for
        larger arrays the sequential factors are divided further by
        ``num_members / 2`` (capped so latency never improves beyond an even
        split across members).
        """
        factors = dict(scaling or DEFAULT_RAID0_SCALING)
        if self.num_members > 2:
            extra = self.num_members / 2.0
            for io_type in (IOType.SEQ_READ, IOType.SEQ_WRITE):
                factors[io_type] = max(factors[io_type] / extra, 1.0 / self.num_members)
        return member_profile.scaled(factors)

    def describe(self) -> str:
        """One-line human readable description used in reports."""
        return (
            f"{self.name}: {self.capacity_gb:g} GB, ${self.purchase_cost_usd:,.0f} "
            f"(incl. {self.controller.name}), {self.power_watts:g} W"
        )
