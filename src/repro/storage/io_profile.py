"""Per-I/O-type service-time profiles for storage classes.

The paper characterises each storage class with the time of one I/O operation
for four access patterns -- sequential read (SR), random read (RR), sequential
write (SW) and random write (RW) -- measured end-to-end from inside the DBMS
at two degrees of concurrency (1 and 300).  Table 1 of the paper records the
measurements; this module holds them in an interpolatable form so the cost
model can ask for the effective latency at any degree of concurrency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Mapping, Tuple

from repro.exceptions import ConfigurationError


class IOType(str, Enum):
    """The four I/O access patterns used throughout the paper (Section 3.3)."""

    SEQ_READ = "SR"
    RAND_READ = "RR"
    SEQ_WRITE = "SW"
    RAND_WRITE = "RW"

    @property
    def is_read(self) -> bool:
        """True for sequential/random reads."""
        return self in (IOType.SEQ_READ, IOType.RAND_READ)

    @property
    def is_write(self) -> bool:
        """True for sequential/random writes."""
        return self in (IOType.SEQ_WRITE, IOType.RAND_WRITE)

    @property
    def is_random(self) -> bool:
        """True for random reads/writes."""
        return self in (IOType.RAND_READ, IOType.RAND_WRITE)

    @property
    def is_sequential(self) -> bool:
        """True for sequential reads/writes."""
        return self in (IOType.SEQ_READ, IOType.SEQ_WRITE)


#: All I/O types in the canonical order used by the paper's Table 1.
ALL_IO_TYPES: Tuple[IOType, ...] = (
    IOType.SEQ_READ,
    IOType.RAND_READ,
    IOType.SEQ_WRITE,
    IOType.RAND_WRITE,
)


@dataclass(frozen=True)
class IOProfile:
    """Service time (milliseconds per I/O) for each I/O type and concurrency.

    Parameters
    ----------
    latencies_ms:
        Nested mapping ``{io_type: {degree_of_concurrency: ms_per_io}}``.
        At least one calibration point per I/O type is required.  The paper
        calibrates every storage class at concurrency 1 and 300.

    Notes
    -----
    Between calibration points the latency is interpolated linearly in
    ``log(concurrency)``; outside the calibrated range the nearest point is
    used (flat extrapolation).  Concurrency affects devices very differently
    -- HDD random reads get *better* per-request under concurrency thanks to
    elevator scheduling, while SSD writes can get worse -- so no parametric
    queueing model fits all rows of Table 1; interpolation between measured
    points is both simpler and more faithful.
    """

    latencies_ms: Mapping[IOType, Mapping[int, float]]

    def __post_init__(self) -> None:
        for io_type in ALL_IO_TYPES:
            if io_type not in self.latencies_ms:
                raise ConfigurationError(f"IOProfile missing latencies for {io_type.value}")
            points = self.latencies_ms[io_type]
            if not points:
                raise ConfigurationError(
                    f"IOProfile for {io_type.value} needs at least one calibration point"
                )
            for concurrency, latency in points.items():
                if concurrency < 1:
                    raise ConfigurationError("degree of concurrency must be >= 1")
                if latency <= 0:
                    raise ConfigurationError(
                        f"latency for {io_type.value}@{concurrency} must be positive"
                    )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_two_points(
        cls,
        single: Mapping[IOType, float],
        concurrent: Mapping[IOType, float],
        concurrent_degree: int = 300,
    ) -> "IOProfile":
        """Build a profile from the two calibration columns of Table 1.

        ``single`` holds the boldfaced (concurrency 1) numbers and
        ``concurrent`` the parenthesised (concurrency ``concurrent_degree``)
        numbers.
        """
        latencies: Dict[IOType, Dict[int, float]] = {}
        for io_type in ALL_IO_TYPES:
            latencies[io_type] = {
                1: float(single[io_type]),
                int(concurrent_degree): float(concurrent[io_type]),
            }
        return cls(latencies)

    @classmethod
    def constant(cls, latency_by_type: Mapping[IOType, float]) -> "IOProfile":
        """Build a concurrency-independent profile (useful in tests)."""
        return cls({io_type: {1: float(latency_by_type[io_type])} for io_type in ALL_IO_TYPES})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def calibration_points(self, io_type: IOType) -> Tuple[int, ...]:
        """Return the sorted degrees of concurrency calibrated for ``io_type``."""
        return tuple(sorted(self.latencies_ms[io_type]))

    def service_time_ms(self, io_type: IOType, concurrency: int = 1) -> float:
        """Milliseconds to service one I/O of ``io_type`` at ``concurrency``.

        Linear interpolation in log(concurrency) between calibration points,
        flat extrapolation beyond the calibrated range.
        """
        if concurrency < 1:
            raise ValueError("degree of concurrency must be >= 1")
        points = self.latencies_ms[io_type]
        degrees = sorted(points)
        if concurrency <= degrees[0]:
            return points[degrees[0]]
        if concurrency >= degrees[-1]:
            return points[degrees[-1]]
        # Find the surrounding calibration points.
        for low, high in zip(degrees, degrees[1:]):
            if low <= concurrency <= high:
                lo_lat, hi_lat = points[low], points[high]
                span = math.log(high) - math.log(low)
                frac = (math.log(concurrency) - math.log(low)) / span
                return lo_lat + frac * (hi_lat - lo_lat)
        raise AssertionError("unreachable: concurrency within calibrated range")

    def as_row(self, concurrency: int = 1) -> Dict[IOType, float]:
        """Return ``{io_type: ms}`` at the given concurrency (one Table 1 column)."""
        return {io_type: self.service_time_ms(io_type, concurrency) for io_type in ALL_IO_TYPES}

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factors: Mapping[IOType, float]) -> "IOProfile":
        """Return a new profile with each I/O type's latencies multiplied by a factor.

        Used to derive RAID 0 profiles from single-device profiles when no
        direct calibration of the array is available.
        """
        latencies: Dict[IOType, Dict[int, float]] = {}
        for io_type in ALL_IO_TYPES:
            factor = float(factors.get(io_type, 1.0))
            if factor <= 0:
                raise ConfigurationError("scale factors must be positive")
            latencies[io_type] = {
                degree: latency * factor for degree, latency in self.latencies_ms[io_type].items()
            }
        return IOProfile(latencies)

    def merged_with(self, other: "IOProfile", weight: float = 0.5) -> "IOProfile":
        """Return a point-wise weighted geometric mean of two profiles."""
        if not 0.0 <= weight <= 1.0:
            raise ValueError("weight must be within [0, 1]")
        latencies: Dict[IOType, Dict[int, float]] = {}
        for io_type in ALL_IO_TYPES:
            degrees = set(self.latencies_ms[io_type]) | set(other.latencies_ms[io_type])
            latencies[io_type] = {
                degree: (
                    self.service_time_ms(io_type, degree) ** weight
                    * other.service_time_ms(io_type, degree) ** (1.0 - weight)
                )
                for degree in degrees
            }
        return IOProfile(latencies)


def profile_table(
    profiles: Mapping[str, IOProfile], concurrencies: Iterable[int] = (1, 300)
) -> Dict[str, Dict[IOType, Dict[int, float]]]:
    """Tabulate several profiles at the requested concurrencies.

    Convenience used by the Table 1 reproduction harness: returns
    ``{class_name: {io_type: {concurrency: ms}}}``.
    """
    table: Dict[str, Dict[IOType, Dict[int, float]]] = {}
    for name, profile in profiles.items():
        table[name] = {
            io_type: {int(c): profile.service_time_ms(io_type, int(c)) for c in concurrencies}
            for io_type in ALL_IO_TYPES
        }
    return table
