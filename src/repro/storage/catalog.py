"""Built-in catalog of the paper's devices, I/O profiles and storage classes.

The constants in this module transcribe the paper's Table 1 (storage prices
and I/O profiles at degree of concurrency 1 and 300) and Table 2 (device
specifications).  They are the calibration data every experiment uses, so
regenerating Table 1 is a direct check of :mod:`repro.storage.pricing` and
:mod:`repro.storage.microbench` against the published numbers.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.storage.device import DeviceKind, DeviceSpec
from repro.storage.io_profile import IOProfile, IOType
from repro.storage.pricing import PricingModel
from repro.storage.raid import Raid0Array, RaidController
from repro.storage.storage_class import StorageClass, StorageSystem

# ---------------------------------------------------------------------------
# Table 2: device specifications
# ---------------------------------------------------------------------------

#: Western Digital Caviar Black 500 GB (the paper's HDD).
HDD_DEVICE = DeviceSpec(
    name="WD Caviar Black",
    kind=DeviceKind.HDD,
    capacity_gb=500.0,
    purchase_cost_usd=34.0,
    power_watts=8.3,
    interface="SATA II",
    rpm=7200,
    cache_mb=32.0,
)

#: Imation M-Class 2.5" 128 GB MLC SSD (the paper's low-end SSD).
LSSD_DEVICE = DeviceSpec(
    name="Imation M-Class 2.5\"",
    kind=DeviceKind.SSD,
    capacity_gb=128.0,
    purchase_cost_usd=253.0,
    power_watts=2.5,
    interface="SATA II",
    cache_mb=64.0,
    flash_type="MLC",
)

#: Fusion-io ioDrive 80 GB SLC (the paper's high-end SSD).
HSSD_DEVICE = DeviceSpec(
    name="Fusion IO ioDrive",
    kind=DeviceKind.SSD,
    capacity_gb=80.0,
    purchase_cost_usd=3550.0,
    power_watts=10.5,
    interface="PCI-Express",
    flash_type="SLC",
)

#: The Dell SAS6/iR controller used for both RAID 0 arrays.
RAID_CONTROLLER = RaidController(
    name="Dell SAS6/iR", purchase_cost_usd=110.0, cache_mb=256.0, power_watts=8.25
)

ALL_DEVICES: Dict[str, DeviceSpec] = {
    "HDD": HDD_DEVICE,
    "L-SSD": LSSD_DEVICE,
    "H-SSD": HSSD_DEVICE,
}

# ---------------------------------------------------------------------------
# Table 1 rows 3-6: measured I/O profiles.
#
# For each storage class the boldfaced number (degree of concurrency 1) and
# the parenthesised number (degree of concurrency 300) are transcribed
# directly from the paper.  Reads are per I/O request; writes are per row.
# ---------------------------------------------------------------------------

_T = IOType

HDD_PROFILE = IOProfile.from_two_points(
    single={_T.SEQ_READ: 0.072, _T.RAND_READ: 13.32, _T.SEQ_WRITE: 0.012, _T.RAND_WRITE: 10.15},
    concurrent={_T.SEQ_READ: 0.174, _T.RAND_READ: 8.903, _T.SEQ_WRITE: 0.039, _T.RAND_WRITE: 8.124},
)

HDD_RAID0_PROFILE = IOProfile.from_two_points(
    single={_T.SEQ_READ: 0.049, _T.RAND_READ: 12.19, _T.SEQ_WRITE: 0.011, _T.RAND_WRITE: 11.55},
    concurrent={_T.SEQ_READ: 0.096, _T.RAND_READ: 2.712, _T.SEQ_WRITE: 0.034, _T.RAND_WRITE: 3.770},
)

LSSD_PROFILE = IOProfile.from_two_points(
    single={_T.SEQ_READ: 0.036, _T.RAND_READ: 1.759, _T.SEQ_WRITE: 0.020, _T.RAND_WRITE: 62.01},
    concurrent={_T.SEQ_READ: 0.053, _T.RAND_READ: 1.468, _T.SEQ_WRITE: 0.341, _T.RAND_WRITE: 37.45},
)

LSSD_RAID0_PROFILE = IOProfile.from_two_points(
    single={_T.SEQ_READ: 0.021, _T.RAND_READ: 1.570, _T.SEQ_WRITE: 0.013, _T.RAND_WRITE: 21.14},
    concurrent={_T.SEQ_READ: 0.037, _T.RAND_READ: 0.826, _T.SEQ_WRITE: 0.082, _T.RAND_WRITE: 17.71},
)

HSSD_PROFILE = IOProfile.from_two_points(
    single={_T.SEQ_READ: 0.016, _T.RAND_READ: 0.091, _T.SEQ_WRITE: 0.009, _T.RAND_WRITE: 0.928},
    concurrent={_T.SEQ_READ: 0.013, _T.RAND_READ: 0.024, _T.SEQ_WRITE: 0.025, _T.RAND_WRITE: 0.986},
)

MEASURED_PROFILES: Dict[str, IOProfile] = {
    "HDD": HDD_PROFILE,
    "HDD RAID 0": HDD_RAID0_PROFILE,
    "L-SSD": LSSD_PROFILE,
    "L-SSD RAID 0": LSSD_RAID0_PROFILE,
    "H-SSD": HSSD_PROFILE,
}

#: Storage prices in cents/GB/hour as published in Table 1 row 2, for
#: calibration checks of :mod:`repro.storage.pricing`.
PUBLISHED_PRICES_CENTS_PER_GB_HOUR: Dict[str, float] = {
    "HDD": 3.47e-4,
    "HDD RAID 0": 8.19e-4,
    "L-SSD": 7.65e-3,
    "L-SSD RAID 0": 9.51e-3,
    "H-SSD": 1.69e-1,
}

#: Canonical storage class names in the order the paper's Table 1 lists them.
STORAGE_CLASS_NAMES = ("HDD", "HDD RAID 0", "L-SSD", "L-SSD RAID 0", "H-SSD")


# ---------------------------------------------------------------------------
# Storage class builders
# ---------------------------------------------------------------------------

def hdd(pricing: Optional[PricingModel] = None) -> StorageClass:
    """The single-HDD storage class."""
    return StorageClass.from_device("HDD", HDD_DEVICE, HDD_PROFILE, pricing)


def hdd_raid0(pricing: Optional[PricingModel] = None) -> StorageClass:
    """The 2-way HDD RAID 0 storage class."""
    array = Raid0Array(member=HDD_DEVICE, num_members=2, controller=RAID_CONTROLLER)
    return StorageClass.from_raid0("HDD RAID 0", array, HDD_RAID0_PROFILE, pricing)


def lssd(pricing: Optional[PricingModel] = None) -> StorageClass:
    """The single low-end SSD storage class."""
    return StorageClass.from_device("L-SSD", LSSD_DEVICE, LSSD_PROFILE, pricing)


def lssd_raid0(pricing: Optional[PricingModel] = None) -> StorageClass:
    """The 2-way L-SSD RAID 0 storage class."""
    array = Raid0Array(member=LSSD_DEVICE, num_members=2, controller=RAID_CONTROLLER)
    return StorageClass.from_raid0("L-SSD RAID 0", array, LSSD_RAID0_PROFILE, pricing)


def hssd(pricing: Optional[PricingModel] = None) -> StorageClass:
    """The high-end SSD (Fusion IO) storage class."""
    return StorageClass.from_device("H-SSD", HSSD_DEVICE, HSSD_PROFILE, pricing)


_BUILDERS = {
    "HDD": hdd,
    "HDD RAID 0": hdd_raid0,
    "L-SSD": lssd,
    "L-SSD RAID 0": lssd_raid0,
    "H-SSD": hssd,
}


def make_storage_class(name: str, pricing: Optional[PricingModel] = None) -> StorageClass:
    """Build one of the five paper storage classes by its Table 1 name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown storage class {name!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    return builder(pricing)


def all_storage_classes(pricing: Optional[PricingModel] = None) -> Dict[str, StorageClass]:
    """All five storage classes keyed by name, in Table 1 order."""
    return {name: make_storage_class(name, pricing) for name in STORAGE_CLASS_NAMES}


def box1(pricing: Optional[PricingModel] = None) -> StorageSystem:
    """Box 1 of the paper: one HDD RAID 0, one L-SSD and one H-SSD."""
    return StorageSystem(
        [hssd(pricing), lssd(pricing), hdd_raid0(pricing)],
        name="Box 1",
    )


def box2(pricing: Optional[PricingModel] = None) -> StorageSystem:
    """Box 2 of the paper: one HDD, one L-SSD RAID 0 and one H-SSD."""
    return StorageSystem(
        [hssd(pricing), lssd_raid0(pricing), hdd(pricing)],
        name="Box 2",
    )


def full_system(pricing: Optional[PricingModel] = None) -> StorageSystem:
    """A hypothetical box exposing all five storage classes (used in examples)."""
    classes = [make_storage_class(name, pricing) for name in STORAGE_CLASS_NAMES]
    classes.sort(key=lambda sc: sc.price_cents_per_gb_hour, reverse=True)
    return StorageSystem(classes, name="All classes")
