"""Device-level I/O simulation.

The reproduction has no physical disks, so "running" I/O against a storage
class means sampling per-request service times from the class's calibrated
I/O profile (with a small log-normal jitter to mimic measurement noise) and
accumulating busy time.  The simulator underpins the Section 3.5.1
micro-benchmark (which regenerates Table 1), the "actual test run" mode of
the workload executor used by DOT's validation phase, and -- via
:class:`MultiClassSimulator` -- the migration I/O batches issued by the
online re-provisioning subsystem when it moves objects between classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.storage.io_profile import ALL_IO_TYPES, IOType
from repro.storage.storage_class import StorageClass


@dataclass(frozen=True)
class IORequest:
    """A batch of identical I/O requests issued against one storage class.

    Attributes
    ----------
    io_type:
        Access pattern of the batch.
    count:
        Number of individual I/O operations (or rows, for writes).
    object_name:
        Optional database object the batch belongs to; used for per-object
        accounting by the executor.
    """

    io_type: IOType
    count: float = 1.0
    object_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("I/O request count cannot be negative")


@dataclass
class DeviceCounters:
    """Accumulated per-I/O-type counters for a simulated device."""

    requests: Dict[IOType, float] = field(default_factory=lambda: {t: 0.0 for t in ALL_IO_TYPES})
    busy_time_ms: Dict[IOType, float] = field(default_factory=lambda: {t: 0.0 for t in ALL_IO_TYPES})

    def total_requests(self) -> float:
        """Total number of requests across all I/O types."""
        return sum(self.requests.values())

    def total_busy_time_ms(self) -> float:
        """Total device busy time across all I/O types."""
        return sum(self.busy_time_ms.values())

    def mean_service_time_ms(self, io_type: IOType) -> float:
        """Observed mean per-request service time for one I/O type."""
        count = self.requests[io_type]
        if count == 0:
            return 0.0
        return self.busy_time_ms[io_type] / count


class DeviceSimulator:
    """Simulates servicing I/O requests against one storage class.

    Parameters
    ----------
    storage_class:
        The storage class whose calibrated profile provides mean latencies.
    concurrency:
        Degree of concurrency (number of concurrent DBMS threads) under which
        the requests are issued; selects/interpolates the calibration point.
    jitter:
        Coefficient of variation of the log-normal measurement noise applied
        per request batch.  ``0`` disables noise entirely (deterministic).
    seed:
        Seed for the random generator used for jitter (anything
        ``numpy.random.default_rng`` accepts, including a ``SeedSequence``).
    """

    def __init__(
        self,
        storage_class: StorageClass,
        concurrency: int = 1,
        jitter: float = 0.05,
        seed: Optional[int] = None,
    ):
        if concurrency < 1:
            raise ValueError("degree of concurrency must be >= 1")
        if jitter < 0:
            raise ValueError("jitter cannot be negative")
        self.storage_class = storage_class
        self.concurrency = concurrency
        self.jitter = jitter
        self._rng = np.random.default_rng(seed)
        self.counters = DeviceCounters()

    # ------------------------------------------------------------------
    def mean_service_time_ms(self, io_type: IOType) -> float:
        """Calibrated mean latency for one I/O of ``io_type`` at this concurrency."""
        return self.storage_class.service_time_ms(io_type, self.concurrency)

    def _sample_batch_time_ms(self, io_type: IOType, count: float) -> float:
        """Sample the busy time for a batch of ``count`` identical requests."""
        mean = self.mean_service_time_ms(io_type) * count
        if self.jitter == 0 or count == 0:
            return mean
        # Log-normal multiplicative noise with the requested coefficient of
        # variation; the batch mean stays centred on the calibrated value.
        sigma = float(np.sqrt(np.log1p(self.jitter**2)))
        factor = float(self._rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
        return mean * factor

    # ------------------------------------------------------------------
    def submit(self, request: IORequest) -> float:
        """Service one request batch; returns the busy time in milliseconds."""
        elapsed = self._sample_batch_time_ms(request.io_type, request.count)
        self.counters.requests[request.io_type] += request.count
        self.counters.busy_time_ms[request.io_type] += elapsed
        return elapsed

    def run(self, requests: Iterable[IORequest]) -> float:
        """Service a sequence of request batches; returns total busy time (ms).

        A single device services its queue serially, so with ``K`` client
        threads the wall-clock elapsed time equals the accumulated busy time;
        the *effective per-request* time observed by each thread is therefore
        ``busy_time / total_requests`` which, by construction of the profile,
        converges to the calibrated latency at this degree of concurrency.
        """
        return sum(self.submit(request) for request in requests)

    def reset(self) -> None:
        """Clear accumulated counters."""
        self.counters = DeviceCounters()

    def observed_service_time_ms(self, io_type: IOType) -> float:
        """Mean observed per-request latency since the last reset."""
        return self.counters.mean_service_time_ms(io_type)


class MultiClassSimulator:
    """One :class:`DeviceSimulator` per storage class of a storage system.

    Request batches are addressed by class name, which is what a data
    migration needs: each object move issues a sequential-read batch against
    its source class and a sequential-write batch against its target class.
    Per-class RNG streams are spawned from one seed, so a run is
    deterministic regardless of how batches interleave across classes.

    Parameters
    ----------
    system:
        A :class:`~repro.storage.storage_class.StorageSystem` (or any
        iterable of storage classes).
    concurrency:
        Degree of concurrency the batches are issued at.
    jitter:
        Coefficient of variation of the per-batch measurement noise
        (``0`` for deterministic runs).
    seed:
        Seed for the spawned per-class generators.
    """

    def __init__(
        self,
        system: Iterable[StorageClass],
        concurrency: int = 1,
        jitter: float = 0.05,
        seed: Optional[int] = None,
    ):
        classes = list(system)
        if not classes:
            raise ValueError("need at least one storage class to simulate")
        seeds = np.random.SeedSequence(seed).spawn(len(classes))
        self.devices: Dict[str, DeviceSimulator] = {
            storage_class.name: DeviceSimulator(
                storage_class, concurrency=concurrency, jitter=jitter, seed=child_seed
            )
            for storage_class, child_seed in zip(classes, seeds)
        }

    # ------------------------------------------------------------------
    def submit(self, class_name: str, request: IORequest) -> float:
        """Service one batch against one class; returns the busy time (ms)."""
        return self.devices[class_name].submit(request)

    def run_batches(self, batches: Iterable[Tuple[str, IORequest]]) -> float:
        """Service ``(class_name, request)`` batches; returns total busy time (ms).

        Batches against *different* classes proceed in parallel (each device
        services its own queue), so the wall-clock time of the whole run is
        the busiest class's accumulated time -- :meth:`elapsed_ms` after a
        single :meth:`run_batches` call -- while the return value is the
        total device busy time across classes.
        """
        return sum(self.submit(class_name, request) for class_name, request in batches)

    def elapsed_ms(self) -> float:
        """Wall-clock elapsed time: the busiest class's accumulated busy time."""
        return max(
            device.counters.total_busy_time_ms() for device in self.devices.values()
        )

    def busy_time_by_class_ms(self) -> Dict[str, float]:
        """Accumulated busy time per storage class."""
        return {
            name: device.counters.total_busy_time_ms()
            for name, device in self.devices.items()
        }

    def reset(self) -> None:
        """Clear every device's accumulated counters."""
        for device in self.devices.values():
            device.reset()
