"""The uniform solver interface over the four placement solvers.

The paper evaluates one optimization problem -- minimise TOC subject to an
SLA and per-class capacities -- with four interchangeable solvers: DOT's
greedy walk (Section 3), the exhaustive search (Sections 4.4.3/4.5.3), the
MILP relaxation and the Object Advisor baseline (Canim et al. [10]).  Each
historically had its own constructor signature and result dataclass, so
every experiment driver re-implemented the same construction boilerplate.

This module gives all four one shape:

* :class:`Solver` -- the protocol ``solve(context, *, initial_layout=None,
  budget=None) -> SolveResult`` over an
  :class:`~repro.core.context.EvaluationContext`;
* :class:`SolveResult` / :class:`SolveStats` -- the single result type.  The
  legacy per-solver results (:class:`~repro.core.dot.DOTResult`,
  :class:`~repro.core.exhaustive.ExhaustiveSearchResult`,
  :class:`~repro.core.ilp.MILPResult`,
  :class:`~repro.core.object_advisor.ObjectAdvisorResult`) are retained as
  thin solver-specific views reachable through :attr:`SolveResult.raw`, and
  every number a ``SolveResult`` reports is taken from them unchanged --
  solving through this interface is bitwise identical to driving the
  underlying solver directly (enforced by ``tests/test_solver_interface.py``);
* a name registry (:func:`get_solver`, :func:`solver_names`,
  :func:`register_solver`) so experiment drivers can express "scenario x
  solver list" declaratively.

``budget`` is a **hard wall-clock deadline in seconds**, uniform across all
four solvers: the exhaustive search aborts its enumeration at the deadline
and returns the exact best of what it scored, DOT stops its move walk at the
next move boundary, the MILP passes it down as scipy's ``time_limit`` and
the Object Advisor (a single closed-form pass) flags the rare overrun after
the fact.  A solve cut short this way is *degraded*: the result is still
feasible whenever any feasible candidate was found (every search path only
ever keeps feasible incumbents), and its provenance is recorded in
:attr:`SolveStats.degraded` plus a human-readable incident list --
degradation is never silent.  :class:`FallbackSolver` stacks solvers into a
chain (ES -> DOT -> hold the initial layout) so ``solve()`` always returns
a layout even when individual solvers fail outright.  ``initial_layout``
warm-starts solvers that support it (DOT's walk; others ignore it), which is
how the online advisor re-tiers through the same interface it provisions
with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Type, runtime_checkable

from repro.core.batch_eval import BatchEvalStats
from repro.core.context import EvaluationContext
from repro.core.dot import DOTOptimizer
from repro.core.exhaustive import ExhaustiveSearch
from repro.core.ilp import MILPPlacement
from repro.core.layout import Layout
from repro.core.object_advisor import ObjectAdvisor
from repro.core.toc import TOCReport
from repro.exceptions import ConfigurationError, InfeasibleLayoutError
from repro.objects import DatabaseObject, group_objects
from repro.obs.instrument import instrument_solver
from repro.sla.psr import performance_satisfaction_ratio


# ---------------------------------------------------------------------------
# The result type
# ---------------------------------------------------------------------------

@dataclass
class SolveStats:
    """Work accounting of one solver run, uniform across solvers.

    ``elapsed_s`` is the solver's own search/walk time; ``build_s`` separates
    evaluator construction and estimate-table warm-up (the batch engine's
    convention, zero for solvers without a build phase).  Counters a solver
    does not produce stay at their zero defaults; the full batch-engine
    accounting (when a vectorized path ran) hangs off ``batch``.
    """

    elapsed_s: float = 0.0
    build_s: float = 0.0
    evaluated_layouts: int = 0
    #: DOT: candidate moves whose application advanced the walk.
    moves_accepted: int = 0
    #: Parallel ES: layouts never evaluated thanks to branch-and-bound.
    pruned_layouts: int = 0
    workers: int = 0
    #: MILP: number of binary placement variables.
    variables: int = 0
    batch: Optional[BatchEvalStats] = field(default=None, repr=False)
    #: True when the solve was cut short (deadline) or rerouted (fallback
    #: chain): the result is honest but not the solver's full-effort answer.
    degraded: bool = False
    #: Human-readable record of what degraded the solve (deadline aborts,
    #: shard retries, fallback hops); empty for a clean full-effort run.
    incidents: List[str] = field(default_factory=list)
    #: The wall-clock budget the solve ran under (``None`` = unbounded).
    deadline_s: Optional[float] = None


@dataclass
class SolveResult:
    """Outcome of one ``Solver.solve`` call, uniform across solvers.

    ``raw`` holds the legacy solver-specific result object (``DOTResult``,
    ``ExhaustiveSearchResult``, ``MILPResult`` or ``ObjectAdvisorResult``)
    with every field it always had, so existing consumers lose nothing by
    going through the uniform interface.
    """

    solver: str
    layout: Optional[Layout]
    toc_report: Optional[TOCReport]
    feasible: bool
    stats: SolveStats
    #: PSR of the solution against the context constraint (estimate-mode run
    #: result); 1.0 when the context has no constraint or no layout exists.
    psr: float = 1.0
    raw: object = field(default=None, repr=False)

    @property
    def toc_cents(self) -> float:
        """TOC of the solution (``inf`` when no feasible layout exists)."""
        if self.toc_report is None:
            return float("inf")
        return self.toc_report.toc_cents

    @property
    def elapsed_s(self) -> float:
        """The solver's search time in seconds."""
        return self.stats.elapsed_s

    @property
    def evaluated_layouts(self) -> int:
        """Candidate layouts the solver evaluated."""
        return self.stats.evaluated_layouts

    def require_layout(self) -> Layout:
        """The solution layout, or raise when the solve was infeasible."""
        if self.layout is None:
            raise InfeasibleLayoutError(
                f"solver {self.solver!r} found no feasible layout; relax the "
                "performance constraint and retry"
            )
        return self.layout


def _psr_for(context: EvaluationContext, report: Optional[TOCReport]) -> float:
    if report is None or context.constraint is None:
        return 1.0
    return performance_satisfaction_ratio(context.constraint, report.run_result)


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------

@runtime_checkable
class Solver(Protocol):
    """What every placement solver looks like to the experiment layer."""

    name: str

    def solve(
        self,
        context: EvaluationContext,
        *,
        initial_layout: Optional[Layout] = None,
        budget: Optional[float] = None,
    ) -> SolveResult:
        """Solve the placement problem described by ``context``."""
        ...


# ---------------------------------------------------------------------------
# The four solvers
# ---------------------------------------------------------------------------

@instrument_solver
class DOTSolver:
    """DOT's greedy optimization walk (Procedure 1) behind the protocol.

    Constructor arguments mirror the solver-specific knobs of
    :class:`~repro.core.dot.DOTOptimizer`; everything shared (objects,
    system, estimator, constraint, cost override, estimate cache) comes from
    the context at solve time.  ``initial_layout`` warm-starts the walk.
    """

    name = "dot"

    def __init__(
        self,
        initial_class: Optional[str] = None,
        capacity_relaxed_walk: bool = True,
        walk_mode: str = "improvement",
        incremental: bool = True,
        independent_objects: bool = False,
    ):
        self.initial_class = initial_class
        self.capacity_relaxed_walk = capacity_relaxed_walk
        self.walk_mode = walk_mode
        self.incremental = incremental
        self.independent_objects = independent_objects

    def optimizer(self, context: EvaluationContext) -> DOTOptimizer:
        """The underlying optimizer this solver drives for ``context``."""
        return DOTOptimizer(
            context.objects,
            context.system,
            context.estimator,
            constraint=context.constraint,
            initial_class=self.initial_class,
            capacity_relaxed_walk=self.capacity_relaxed_walk,
            cost_override=context.cost_override,
            independent_objects=self.independent_objects,
            walk_mode=self.walk_mode,
            incremental=self.incremental,
            estimate_cache=context.estimate_cache,
        )

    def solve(
        self,
        context: EvaluationContext,
        *,
        initial_layout: Optional[Layout] = None,
        budget: Optional[float] = None,
    ) -> SolveResult:
        result = self.optimizer(context).optimize(
            context.workload,
            context.get_profiles(),
            initial_layout=initial_layout,
            deadline_s=budget,
        )
        stats = SolveStats(
            elapsed_s=result.elapsed_s,
            evaluated_layouts=result.evaluated_layouts,
            moves_accepted=sum(1 for trace in result.history if trace.accepted),
            degraded=result.timed_out,
            incidents=(
                [f"dot walk stopped at the {budget}s deadline after "
                 f"{result.evaluated_layouts} candidates"]
                if result.timed_out else []
            ),
            deadline_s=budget,
        )
        return SolveResult(
            solver=self.name,
            layout=result.layout,
            toc_report=result.toc_report,
            feasible=result.feasible,
            stats=stats,
            psr=_psr_for(context, result.toc_report),
            raw=result,
        )


@instrument_solver
class ExhaustiveSolver:
    """The exhaustive search (serial batch or sharded parallel) as a solver.

    ``objects``/``pinned_objects`` optionally restrict the enumeration to a
    subset of the context's objects with the remainder pinned (the Figure 9
    hot-set study); by default every context object is enumerated.  The
    solve-time ``budget`` is a hard wall-clock deadline in seconds: the
    enumeration stops at the deadline and returns the exact best of the
    layouts it scored, marked degraded.  ``max_layouts`` remains the
    constructor-level guard on enumeration size.  ``checkpoint_path``
    persists (and resumes) the parallel engine's search progress so an
    interrupted ``workers > 1`` enumeration restarts from its last
    completed shard.
    """

    name = "es"

    def __init__(
        self,
        objects: Optional[Sequence[DatabaseObject]] = None,
        per_group: bool = False,
        pinned_objects: Sequence[DatabaseObject] = (),
        pinned_class: Optional[str] = None,
        max_layouts: int = 500_000,
        batch: bool = True,
        batch_chunk_size: int = 4096,
        workers: int = 1,
        prefix_depth: Optional[int] = None,
        shards_per_worker: int = 4,
        deadline_s: Optional[float] = None,
        shard_max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        shard_timeout_s: Optional[float] = None,
        fault_plan=None,
        kernel: str = "numpy",
        schedule: str = "steal",
        steal_units: Optional[int] = None,
        use_shared_memory: bool = True,
        checkpoint_path=None,
    ):
        self.objects = list(objects) if objects is not None else None
        self.per_group = per_group
        self.pinned_objects = list(pinned_objects)
        self.pinned_class = pinned_class
        self.max_layouts = max_layouts
        self.batch = batch
        self.batch_chunk_size = batch_chunk_size
        self.workers = workers
        self.prefix_depth = prefix_depth
        self.shards_per_worker = shards_per_worker
        self.deadline_s = deadline_s
        self.shard_max_retries = shard_max_retries
        self.retry_backoff_s = retry_backoff_s
        self.shard_timeout_s = shard_timeout_s
        self.fault_plan = fault_plan
        self.kernel = kernel
        self.schedule = schedule
        self.steal_units = steal_units
        self.use_shared_memory = use_shared_memory
        self.checkpoint_path = checkpoint_path

    def search(self, context: EvaluationContext, budget: Optional[float] = None) -> ExhaustiveSearch:
        """The underlying search this solver drives for ``context``."""
        return ExhaustiveSearch(
            self.objects if self.objects is not None else context.objects,
            context.system,
            context.estimator,
            constraint=context.constraint,
            max_layouts=self.max_layouts,
            per_group=self.per_group,
            cost_override=context.cost_override,
            pinned_objects=self.pinned_objects,
            pinned_class=self.pinned_class,
            batch=self.batch,
            batch_chunk_size=self.batch_chunk_size,
            estimate_cache=context.estimate_cache,
            workers=self.workers,
            prefix_depth=self.prefix_depth,
            shards_per_worker=self.shards_per_worker,
            deadline_s=budget if budget is not None else self.deadline_s,
            shard_max_retries=self.shard_max_retries,
            retry_backoff_s=self.retry_backoff_s,
            shard_timeout_s=self.shard_timeout_s,
            fault_plan=self.fault_plan,
            kernel=self.kernel,
            schedule=self.schedule,
            steal_units=self.steal_units,
            use_shared_memory=self.use_shared_memory,
            checkpoint_path=self.checkpoint_path,
        )

    def solve(
        self,
        context: EvaluationContext,
        *,
        initial_layout: Optional[Layout] = None,
        budget: Optional[float] = None,
    ) -> SolveResult:
        search = self.search(context, budget)
        result = search.search(context.workload)
        batch_stats = search.last_batch_stats
        stats = SolveStats(
            elapsed_s=result.elapsed_s,
            build_s=batch_stats.build_s if batch_stats is not None else 0.0,
            evaluated_layouts=result.evaluated_layouts,
            pruned_layouts=batch_stats.pruned_layouts if batch_stats is not None else 0,
            workers=batch_stats.workers if batch_stats is not None else 0,
            batch=batch_stats,
            degraded=result.timed_out,
            incidents=list(result.incidents),
            deadline_s=budget if budget is not None else self.deadline_s,
        )
        return SolveResult(
            solver=self.name,
            layout=result.layout,
            toc_report=result.toc_report,
            feasible=result.feasible,
            stats=stats,
            psr=_psr_for(context, result.toc_report),
            raw=result,
        )


@instrument_solver
class MILPSolver:
    """The exact MILP relaxation (Section 5 reference) behind the protocol.

    The MILP minimises layout cost under an aggregate I/O-time budget.  When
    ``io_time_budget_ms`` is not given it is derived the way the ablation
    study does: the all-most-expensive layout's profiled I/O time divided by
    the context's relative SLA ratio.  The solve-time ``budget`` overrides
    the MILP's wall-clock ``time_limit_s``.
    """

    name = "milp"

    def __init__(
        self,
        io_time_budget_ms: Optional[float] = None,
        time_limit_s: Optional[float] = 60.0,
    ):
        self.io_time_budget_ms = io_time_budget_ms
        self.time_limit_s = time_limit_s

    def resolve_budget_ms(self, context: EvaluationContext) -> float:
        """The I/O-time budget: explicit, or profiled best time / SLA ratio."""
        if self.io_time_budget_ms is not None:
            return self.io_time_budget_ms
        if context.sla is None:
            raise ConfigurationError(
                "MILPSolver needs an explicit io_time_budget_ms when the context "
                "was not built from a relative SLA"
            )
        profiles = context.get_profiles()
        best_class = context.system.most_expensive().name
        best_time = sum(
            profiles.io_time_share_ms(group, tuple([best_class] * len(group)))
            for group in group_objects(context.objects)
        )
        return best_time / context.sla.ratio

    def solve(
        self,
        context: EvaluationContext,
        *,
        initial_layout: Optional[Layout] = None,
        budget: Optional[float] = None,
    ) -> SolveResult:
        milp = MILPPlacement(context.objects, context.system)
        result = milp.solve(
            context.get_profiles(),
            io_time_budget_ms=self.resolve_budget_ms(context),
            time_limit_s=budget if budget is not None else self.time_limit_s,
        )
        toc_report = (
            context.evaluate(result.layout) if result.layout is not None else None
        )
        limit = budget if budget is not None else self.time_limit_s
        stats = SolveStats(
            elapsed_s=result.elapsed_s,
            variables=result.variables,
            degraded=result.timed_out,
            incidents=(
                [f"milp stopped at its {limit}s time limit "
                 f"(status: {result.status})"]
                if result.timed_out else []
            ),
            deadline_s=limit,
        )
        return SolveResult(
            solver=self.name,
            layout=result.layout,
            toc_report=toc_report,
            feasible=result.feasible,
            stats=stats,
            psr=_psr_for(context, toc_report),
            raw=result,
        )


@instrument_solver
class ObjectAdvisorSolver:
    """The Object Advisor baseline (Canim et al. [10]) behind the protocol.

    OA maximises performance within capacity budgets and never consults the
    SLA, so ``feasible`` reports whether its layout *happens* to satisfy the
    context constraint (estimate mode) -- the property the paper's
    comparisons measure it by.  A layout is always produced.
    """

    name = "oa"

    def __init__(self, budgets_gb: Optional[Dict[str, float]] = None):
        self.budgets_gb = budgets_gb

    def solve(
        self,
        context: EvaluationContext,
        *,
        initial_layout: Optional[Layout] = None,
        budget: Optional[float] = None,
    ) -> SolveResult:
        advisor = ObjectAdvisor(context.objects, context.system, context.estimator)
        result = advisor.recommend(context.workload, budgets_gb=self.budgets_gb)
        toc_report = context.evaluate(result.layout)
        check = context.checker().check(result.layout, toc_report.run_result)
        # OA is one closed-form greedy pass with no interruption point, so
        # the deadline can only be audited after the fact.
        overran = budget is not None and result.elapsed_s > budget
        stats = SolveStats(
            elapsed_s=result.elapsed_s,
            evaluated_layouts=1,
            degraded=overran,
            incidents=(
                [f"oa pass overran its {budget}s deadline "
                 f"({result.elapsed_s:.3f}s elapsed)"]
                if overran else []
            ),
            deadline_s=budget,
        )
        return SolveResult(
            solver=self.name,
            layout=result.layout,
            toc_report=toc_report,
            feasible=check.feasible,
            stats=stats,
            psr=_psr_for(context, toc_report),
            raw=result,
        )


# ---------------------------------------------------------------------------
# The fallback chain
# ---------------------------------------------------------------------------

@instrument_solver
class FallbackSolver:
    """A degrade-gracefully chain of solvers with a hold-the-layout backstop.

    Stages are tried in order (default: exhaustive search, then DOT), each
    given whatever remains of the shared wall-clock ``budget``.  A stage
    that raises, times out without a layout, or comes back infeasible is
    recorded as an incident and the chain moves on.  When every stage
    fails, the terminal backstop returns ``initial_layout`` (or the
    context's reference layout) evaluated honestly -- a fleet holding its
    current placement is strictly better than a fleet with no placement
    decision at all.  The returned result is marked degraded whenever
    anything other than the first stage's full-effort answer is returned,
    so provenance is never lost.
    """

    name = "fallback"

    def __init__(self, chain: Optional[Sequence[Solver]] = None):
        self.chain: List[Solver] = (
            list(chain) if chain is not None else [ExhaustiveSolver(), DOTSolver()]
        )

    # -- stage-outcome hooks (no-ops here) -----------------------------
    # The chain reports what happened to every stage through these, so
    # subclasses can attach policy without re-implementing the ladder: the
    # service's breaker-guarded solver (repro.service.breaker) trips a
    # per-solver-class circuit on repeated failures/timeouts and skips the
    # stage while the circuit is open.
    def _stage_blocked(self, stage: Solver) -> Optional[str]:
        """A reason to skip this stage outright, or ``None`` to run it."""
        return None

    def _stage_failed(self, stage: Solver, timeout: bool = False) -> None:
        """The stage raised, blew its deadline, or came back infeasible."""

    def _stage_succeeded(self, stage: Solver) -> None:
        """The stage returned a feasible, full-effort result."""

    def solve(
        self,
        context: EvaluationContext,
        *,
        initial_layout: Optional[Layout] = None,
        budget: Optional[float] = None,
    ) -> SolveResult:
        deadline = time.monotonic() + budget if budget is not None else None
        incidents: List[str] = []
        degraded = False
        for stage in self.chain:
            blocked = self._stage_blocked(stage)
            if blocked is not None:
                incidents.append(f"{stage.name}: {blocked}")
                degraded = True
                continue
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    incidents.append(
                        f"{stage.name}: skipped, shared deadline already spent"
                    )
                    degraded = True
                    continue
            try:
                result = stage.solve(
                    context, initial_layout=initial_layout, budget=remaining
                )
            except Exception as exc:  # noqa: BLE001 - the chain exists to absorb
                self._stage_failed(stage)
                incidents.append(f"{stage.name}: raised {exc!r}; falling back")
                degraded = True
                continue
            if result.feasible and result.layout is not None:
                if result.stats.degraded:
                    # A deadline-degraded answer is a timeout for supervision
                    # purposes even though the result itself is usable.
                    self._stage_failed(stage, timeout=True)
                else:
                    self._stage_succeeded(stage)
                stats = result.stats
                stats.incidents = incidents + list(stats.incidents)
                stats.degraded = stats.degraded or degraded
                stats.deadline_s = budget
                return SolveResult(
                    solver=f"{self.name}:{result.solver}",
                    layout=result.layout,
                    toc_report=result.toc_report,
                    feasible=result.feasible,
                    stats=stats,
                    psr=result.psr,
                    raw=result.raw,
                )
            self._stage_failed(stage)
            incidents.append(f"{stage.name}: no feasible layout; falling back")
            degraded = True

        held = initial_layout if initial_layout is not None else context.reference_layout()
        toc_report = context.evaluate(held)
        check = context.checker().check(held, toc_report.run_result)
        incidents.append(
            f"held layout {held.name!r}: every chained solver failed"
        )
        stats = SolveStats(
            evaluated_layouts=1,
            degraded=True,
            incidents=incidents,
            deadline_s=budget,
        )
        return SolveResult(
            solver=f"{self.name}:hold",
            layout=held,
            toc_report=toc_report,
            feasible=check.feasible,
            stats=stats,
            psr=_psr_for(context, toc_report),
            raw=None,
        )


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

SOLVERS: Dict[str, Type] = {
    DOTSolver.name: DOTSolver,
    ExhaustiveSolver.name: ExhaustiveSolver,
    MILPSolver.name: MILPSolver,
    ObjectAdvisorSolver.name: ObjectAdvisorSolver,
    FallbackSolver.name: FallbackSolver,
}


def register_solver(cls: Type) -> Type:
    """Register a solver class under its ``name`` (usable as a decorator)."""
    name = getattr(cls, "name", None)
    if not name:
        raise ConfigurationError("a solver class must define a non-empty `name`")
    SOLVERS[name] = cls
    return cls


def solver_names() -> tuple:
    """The registered solver names, sorted."""
    return tuple(sorted(SOLVERS))


def get_solver(name: str, **options) -> Solver:
    """Instantiate a registered solver by name with solver-specific options."""
    try:
        cls = SOLVERS[name]
    except KeyError:
        known = ", ".join(solver_names())
        raise ConfigurationError(f"unknown solver {name!r} (known: {known})") from None
    return cls(**options)


__all__ = [
    "Solver",
    "SolveResult",
    "SolveStats",
    "DOTSolver",
    "ExhaustiveSolver",
    "FallbackSolver",
    "MILPSolver",
    "ObjectAdvisorSolver",
    "SOLVERS",
    "register_solver",
    "solver_names",
    "get_solver",
]
