"""A mixed-integer programming reference for the placement problem.

The paper solves the layout problem with a greedy heuristic because the true
objective ``C(L) * t(L, W)`` couples every placement decision through the
product of cost and time.  Under DOT's own independence assumption between
object groups, however, a natural relaxation exists: choose one placement per
group so as to minimise the *layout cost* subject to an aggregate *I/O time
budget* (derived from the SLA) and the per-class capacity constraints.  That
relaxation is a small MILP which :class:`MILPPlacement` solves exactly with
``scipy.optimize.milp``; the ablation benchmark compares its layouts with
DOT's to quantify how much the greedy walk loses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize, sparse

from repro.core.batch_eval import group_placement_coefficients
from repro.core.layout import Layout
from repro.core.profiles import WorkloadProfileSet
from repro.exceptions import ConfigurationError
from repro.objects import DatabaseObject, ObjectGroup, group_objects
from repro.storage.storage_class import StorageSystem


@dataclass
class MILPResult:
    """Outcome of the MILP placement."""

    layout: Optional[Layout]
    objective_cents_per_hour: float
    io_time_budget_ms: float
    io_time_ms: float
    status: str
    elapsed_s: float
    variables: int
    #: True when scipy stopped on its iteration/time limit (``status == 1``)
    #: rather than proving optimality or infeasibility.  A layout may still
    #: be present (the incumbent at the limit) -- it is feasible but possibly
    #: sub-optimal, and callers should mark the solve degraded.
    timed_out: bool = False

    @property
    def feasible(self) -> bool:
        """True when the solver found an optimal feasible assignment."""
        return self.layout is not None


class MILPPlacement:
    """Cost-minimising placement under an I/O-time budget, solved exactly."""

    def __init__(self, objects: Sequence[DatabaseObject], system: StorageSystem):
        self.objects = list(objects)
        self.system = system
        self.groups: List[ObjectGroup] = group_objects(self.objects)

    # ------------------------------------------------------------------
    def solve(
        self,
        profiles: WorkloadProfileSet,
        io_time_budget_ms: float,
        time_limit_s: Optional[float] = 60.0,
    ) -> MILPResult:
        """Solve the placement MILP.

        Parameters
        ----------
        profiles:
            Workload profiles providing each group's I/O time share per
            placement (Eq. 1 of the paper).
        io_time_budget_ms:
            Upper bound on the sum of group I/O time shares -- typically the
            all-fast layout's total I/O time divided by the relative SLA.
        """
        if io_time_budget_ms <= 0:
            raise ConfigurationError("the I/O time budget must be positive")
        started = time.perf_counter()
        # Coefficient precomputation shares the batch evaluator's vectorized
        # tables: identical values to the per-candidate helpers, one service
        # -time lookup per (class, I/O type) instead of one per candidate.
        candidates, costs, times = group_placement_coefficients(
            self.groups, self.system, profiles
        )
        num_vars = len(candidates)

        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        lower: List[float] = []
        upper: List[float] = []
        constraint_index = 0

        # Exactly one placement per group.
        group_positions: Dict[str, List[int]] = {}
        for position, (group, _) in enumerate(candidates):
            group_positions.setdefault(group.key, []).append(position)
        for group in self.groups:
            for position in group_positions[group.key]:
                rows.append(constraint_index)
                cols.append(position)
                values.append(1.0)
            lower.append(1.0)
            upper.append(1.0)
            constraint_index += 1

        # Capacity per storage class.
        class_names = list(self.system.class_names)
        for class_name in class_names:
            capacity = self.system[class_name].capacity_gb
            for position, (group, placement) in enumerate(candidates):
                used = sum(
                    member.size_gb
                    for member, assigned in zip(group.members, placement)
                    if assigned == class_name
                )
                if used > 0:
                    rows.append(constraint_index)
                    cols.append(position)
                    values.append(used)
            lower.append(0.0)
            upper.append(capacity)
            constraint_index += 1

        # Aggregate I/O time budget.
        for position in range(num_vars):
            if times[position] != 0.0:
                rows.append(constraint_index)
                cols.append(position)
                values.append(times[position])
        lower.append(-np.inf)
        upper.append(io_time_budget_ms)
        constraint_index += 1

        matrix = sparse.csc_matrix(
            (values, (rows, cols)), shape=(constraint_index, num_vars)
        )
        constraints = optimize.LinearConstraint(matrix, lower, upper)
        integrality = np.ones(num_vars)
        bounds = optimize.Bounds(0, 1)
        options = {"time_limit": time_limit_s} if time_limit_s else None
        solution = optimize.milp(
            c=costs,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options,
        )
        elapsed = time.perf_counter() - started
        # scipy stamps status 1 when the iteration/time limit stopped the
        # branch-and-cut before optimality.
        hit_limit = getattr(solution, "status", None) == 1

        if not solution.success or solution.x is None:
            return MILPResult(
                layout=None,
                objective_cents_per_hour=float("inf"),
                io_time_budget_ms=io_time_budget_ms,
                io_time_ms=float("inf"),
                status=solution.message,
                elapsed_s=elapsed,
                variables=num_vars,
                timed_out=hit_limit,
            )

        chosen = np.where(solution.x > 0.5)[0]
        assignment: Dict[str, str] = {}
        total_time = 0.0
        for position in chosen:
            group, placement = candidates[int(position)]
            total_time += times[int(position)]
            for member, class_name in zip(group.members, placement):
                assignment[member.name] = class_name
        layout = Layout(self.objects, self.system, assignment, name="MILP")
        return MILPResult(
            layout=layout,
            objective_cents_per_hour=float(solution.fun),
            io_time_budget_ms=io_time_budget_ms,
            io_time_ms=total_time,
            status="time_limit" if hit_limit else "optimal",
            elapsed_s=elapsed,
            variables=num_vars,
            timed_out=hit_limit,
        )
