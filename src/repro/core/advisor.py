"""The end-to-end provisioning advisor (the Figure 2 pipeline).

:class:`ProvisioningAdvisor` wires the four DOT phases together:

1. **Profiling** -- run (or estimate) the workload on baseline layouts to
   collect per-object I/O profiles.
2. **Optimization** -- Procedure 1 over the prioritised move list.
3. **Validation** -- a simulated test run of the recommended layout checked
   against the SLA.
4. **Refinement** -- when validation fails, re-profile with the *actual* I/O
   statistics of the test run and re-optimize; if that still fails, relax the
   SLA and repeat, as the paper prescribes for infeasible cases.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.core.dot import DOTOptimizer, DOTResult
from repro.core.layout import Layout
from repro.core.profiler import WorkloadProfiler
from repro.core.profiles import BaselinePlacement, WorkloadProfileSet
from repro.core.toc import TOCModel, TOCReport
from repro.exceptions import InfeasibleLayoutError
from repro.objects import DatabaseObject
from repro.sla.constraints import PerformanceConstraint, RelativeSLA
from repro.sla.psr import performance_satisfaction_ratio
from repro.storage.storage_class import StorageSystem


@dataclass
class Recommendation:
    """The advisor's final answer for one workload on one storage system."""

    layout: Layout
    constraint: Optional[PerformanceConstraint]
    estimated_report: TOCReport
    measured_report: TOCReport
    psr: float
    validated: bool
    refinements_used: int
    relaxations_used: int
    dot_result: DOTResult
    baseline_report: Optional[TOCReport] = None
    elapsed_s: float = 0.0

    @property
    def toc_cents(self) -> float:
        """Measured TOC of the recommended layout."""
        return self.measured_report.toc_cents

    def describe(self) -> str:
        """Multi-line human readable summary."""
        lines = [
            f"Recommendation for {self.measured_report.workload_name!r}:",
            f"  layout cost : {self.measured_report.layout_cost_cents_per_hour:.4f} cents/hour",
            f"  TOC         : {self.measured_report.toc_cents:.4f} cents ({self.measured_report.metric})",
            f"  PSR         : {self.psr * 100:.0f}%",
            f"  validated   : {self.validated} "
            f"(refinements={self.refinements_used}, relaxations={self.relaxations_used})",
        ]
        lines.append(self.layout.describe())
        return "\n".join(lines)


class ProvisioningAdvisor:
    """High level facade implementing the full DOT pipeline."""

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        cost_override=None,
        capacity_relaxed_walk: bool = True,
    ):
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.cost_override = cost_override
        self.capacity_relaxed_walk = capacity_relaxed_walk
        self.profiler = WorkloadProfiler(self.objects, system, estimator)
        self.toc_model = TOCModel(estimator, cost_override=cost_override)

    # ------------------------------------------------------------------
    def reference_layout(self) -> Layout:
        """The best-performance reference layout (all objects on the priciest class)."""
        return Layout.uniform(self.objects, self.system, self.system.most_expensive().name)

    def resolve_constraint(
        self,
        workload,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]],
        reference_report: Optional[TOCReport] = None,
    ) -> Optional[PerformanceConstraint]:
        """Resolve a relative SLA into an absolute constraint.

        The reference is the *estimated* performance of the all-most-expensive
        layout so that the caps live in the same units as the optimizer's own
        estimates (the feasibility test of Procedure 1 compares estimate to
        estimate); the validation phase then checks the recommendation with a
        measured run against the same caps.
        """
        if sla is None or isinstance(sla, PerformanceConstraint):
            return sla
        if reference_report is None:
            reference_report = self.toc_model.evaluate(
                self.reference_layout(), workload, mode="estimate"
            )
        return sla.resolve(reference_report.run_result)

    # ------------------------------------------------------------------
    def recommend(
        self,
        workload,
        sla: Optional[Union[RelativeSLA, PerformanceConstraint]] = None,
        profile_mode: str = "estimate",
        baseline_patterns: Optional[Sequence[BaselinePlacement]] = None,
        max_refinements: int = 1,
        max_relaxations: int = 3,
        relaxation_factor: float = 1.25,
    ) -> Recommendation:
        """Run the full profile / optimize / validate / refine pipeline."""
        started = time.perf_counter()

        reference_report = self.toc_model.evaluate(
            self.reference_layout(), workload, mode="estimate"
        )
        constraint = self.resolve_constraint(workload, sla, reference_report)

        profiles = self.profiler.profile(workload, mode=profile_mode, patterns=baseline_patterns)

        refinements_used = 0
        relaxations_used = 0
        current_constraint = constraint
        current_profiles = profiles
        last_result: Optional[DOTResult] = None

        while True:
            optimizer = DOTOptimizer(
                self.objects,
                self.system,
                self.estimator,
                constraint=current_constraint,
                capacity_relaxed_walk=self.capacity_relaxed_walk,
                cost_override=self.cost_override,
            )
            result = optimizer.optimize(workload, current_profiles)
            last_result = result

            if result.feasible:
                layout = result.require_layout()
                check, measured_report = optimizer.validate(layout, workload, current_constraint)
                if check.feasible:
                    psr = (
                        performance_satisfaction_ratio(current_constraint, measured_report.run_result)
                        if current_constraint is not None
                        else 1.0
                    )
                    return Recommendation(
                        layout=layout,
                        constraint=current_constraint,
                        estimated_report=result.toc_report,
                        measured_report=measured_report,
                        psr=psr,
                        validated=True,
                        refinements_used=refinements_used,
                        relaxations_used=relaxations_used,
                        dot_result=result,
                        baseline_report=reference_report,
                        elapsed_s=time.perf_counter() - started,
                    )

            # Validation failed or no feasible layout was found: refine with
            # actual statistics first, then relax the SLA.
            if refinements_used < max_refinements:
                refinements_used += 1
                current_profiles = self.profiler.profile(
                    workload, mode="testrun", patterns=baseline_patterns
                )
                continue
            if current_constraint is not None and relaxations_used < max_relaxations:
                relaxations_used += 1
                current_constraint = current_constraint.relaxed(relaxation_factor)
                continue
            break

        # Out of refinement/relaxation budget: return the best layout found
        # (even if it only met the estimates) or raise when there is none.
        if last_result is not None and last_result.feasible:
            layout = last_result.require_layout()
            measured_report = self.toc_model.evaluate(layout, workload, mode="run")
            psr = (
                performance_satisfaction_ratio(current_constraint, measured_report.run_result)
                if current_constraint is not None
                else 1.0
            )
            return Recommendation(
                layout=layout,
                constraint=current_constraint,
                estimated_report=last_result.toc_report,
                measured_report=measured_report,
                psr=psr,
                validated=False,
                refinements_used=refinements_used,
                relaxations_used=relaxations_used,
                dot_result=last_result,
                baseline_report=reference_report,
                elapsed_s=time.perf_counter() - started,
            )
        raise InfeasibleLayoutError(
            "no feasible layout found even after refinement and SLA relaxation"
        )
