"""The discrete-sized storage cost model of Section 5.2.

The default layout cost is linear in the space used on each class
(``C(L) = sum_j p_j * S_j``), but real devices are bought in discrete units:
once any data lives on a class, (part of) its full price is due regardless of
how little space is occupied.  The paper generalises the layout cost to

    C(L) = sum_j [ alpha * (p_j * c_j) + (1 - alpha) * (S_j / c_j) * (p_j * c_j) ]

where ``alpha`` blends the discrete component (pay for the whole device) with
the linear component (pay for what you use).  With ``alpha = 0`` the model
reduces to the linear cost; with ``alpha = 1`` every class that holds at
least one object costs its full price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layout import Layout
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class DiscreteCostModel:
    """Layout cost with a discrete (per-device) component.

    Parameters
    ----------
    alpha:
        Weight of the discrete component in ``[0, 1]``.
    charge_empty_classes:
        If True, the discrete component is charged for every class of the
        system even when no object is placed on it (the "you already bought
        the box" interpretation).  The default charges only classes that are
        actually used, which is the interpretation under which the placement
        decision still influences the discrete component.
    """

    alpha: float = 0.5
    charge_empty_classes: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigurationError("alpha must lie in [0, 1]")

    # ------------------------------------------------------------------
    def layout_cost_cents_per_hour(self, layout: Layout) -> float:
        """The generalized layout cost ``C(L)`` for one layout."""
        total = 0.0
        used_by_class = layout.space_used_gb()
        for class_name, used_gb in used_by_class.items():
            storage_class = layout.system[class_name]
            full_price = storage_class.price_cents_per_gb_hour * storage_class.capacity_gb
            linear_part = (1.0 - self.alpha) * (used_gb / storage_class.capacity_gb) * full_price
            if used_gb > 0 or self.charge_empty_classes:
                discrete_part = self.alpha * full_price
            else:
                discrete_part = 0.0
            total += discrete_part + linear_part
        return total

    def __call__(self, layout: Layout) -> float:
        """Allow the model to be used directly as a ``cost_override`` callable."""
        return self.layout_cost_cents_per_hour(layout)
