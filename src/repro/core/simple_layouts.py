"""The "simple" comparison layouts of Section 4.2.

These are the layouts the paper compares DOT against: every object on one
storage class ("All H-SSD", "All HDD", ...) plus the hand-crafted split that
puts indexes on the high-end SSD and data on the low-end SSD.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.layout import Layout
from repro.exceptions import ConfigurationError
from repro.objects import DatabaseObject
from repro.storage.storage_class import StorageSystem


def all_on(objects: Sequence[DatabaseObject], system: StorageSystem, class_name: str) -> Layout:
    """The "All <class>" layout."""
    return Layout.uniform(objects, system, class_name)


def index_data_split(
    objects: Sequence[DatabaseObject],
    system: StorageSystem,
    index_class: str,
    data_class: str,
    name: Optional[str] = None,
) -> Layout:
    """Indexes on one class, everything else on another.

    The paper's "Index H-SSD Data L-SSD" layout places every index on the
    high-end SSD and every table (and any log/temp object) on the low-end SSD.
    """
    if index_class not in system or data_class not in system:
        raise ConfigurationError("both index and data classes must exist in the storage system")
    assignment = {
        obj.name: (index_class if obj.is_index else data_class) for obj in objects
    }
    return Layout(
        objects,
        system,
        assignment,
        name=name or f"Index {index_class} Data {data_class}",
    )


def simple_layouts(objects: Sequence[DatabaseObject], system: StorageSystem) -> Dict[str, Layout]:
    """All simple layouts available on a storage system.

    One "All <class>" layout per class, plus the index/data split whenever the
    system exposes an H-SSD together with some flavour of L-SSD (as both of
    the paper's boxes do).
    """
    layouts: Dict[str, Layout] = {}
    for storage_class in system.sorted_by_price(descending=True):
        layout = all_on(objects, system, storage_class.name)
        layouts[layout.name] = layout

    index_class = "H-SSD" if "H-SSD" in system else None
    data_class = next(
        (name for name in ("L-SSD", "L-SSD RAID 0") if name in system), None
    )
    if index_class and data_class:
        layout = index_data_split(objects, system, index_class, data_class)
        layouts[layout.name] = layout
    return layouts
