"""Exhaustive search over all data layouts (the paper's ES baseline).

ES enumerates every assignment of objects to storage classes (``M^N``
layouts), evaluates each with the same TOC estimate and feasibility check DOT
uses, and returns the cheapest feasible layout.  The paper uses ES as the
quality yardstick in Sections 4.4.3 and 4.5.3, on reduced object sets because
the enumeration is exponential; this implementation enforces an explicit
layout budget for the same reason.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.batch_eval import iter_assignment_chunks
from repro.core.context import make_batch_evaluator
from repro.core.feasibility import FeasibilityChecker
from repro.core.layout import Layout
from repro.core.toc import TOCModel, TOCReport
from repro.exceptions import ConfigurationError, SolverTimeoutError
from repro.objects import DatabaseObject, group_objects
from repro.obs import trace
from repro.sla.constraints import PerformanceConstraint
from repro.storage.storage_class import StorageSystem


@dataclass
class ExhaustiveSearchResult:
    """Outcome of an exhaustive search.

    ``timed_out`` marks a search cut short by ``deadline_s``: the result is
    then the exact best of the portion enumerated before the deadline
    (feasible whenever any candidate was), not the global optimum.
    ``incidents`` records the recovery actions the run took (retries,
    re-queues, the deadline abort itself).
    """

    layout: Optional[Layout]
    toc_report: Optional[TOCReport]
    feasible: bool
    evaluated_layouts: int
    elapsed_s: float
    timed_out: bool = False
    incidents: List[str] = field(default_factory=list)

    @property
    def toc_cents(self) -> float:
        """TOC of the best layout (``inf`` when no feasible layout exists)."""
        if self.toc_report is None:
            return float("inf")
        return self.toc_report.toc_cents


class ExhaustiveSearch:
    """Enumerates and evaluates every possible layout.

    Parameters
    ----------
    objects:
        The placeable objects; the search space is ``M^N`` over them (or
        ``product(M^K_g)`` over groups with ``per_group=True``, which prunes
        nothing when every object is its own group but matches DOT's
        independence assumption otherwise).
    system:
        The storage system.
    estimator:
        Workload estimator shared with DOT.
    constraint:
        SLA constraint applied to each candidate.
    max_layouts:
        Guard on the number of enumerated layouts.  The serial paths treat it
        as a hard limit (exceeding it raises :class:`ConfigurationError`
        instead of silently running forever); with ``workers > 1`` it becomes
        a soft guard the parallel engine may exceed, because sharding plus
        pruning make full-paper spaces (e.g. the TPC-C study's ``3^19``)
        practical.
    per_group:
        Enumerate placements per object group rather than per object.
    pinned_objects:
        Objects included in every candidate layout at a fixed class (given by
        ``pinned_class``); used when the enumeration is restricted to the
        "hot" objects of a database whose remaining objects still need a
        placement for the workload to be estimable.
    batch:
        Evaluate candidates through the vectorized
        :class:`~repro.core.batch_eval.BatchLayoutEvaluator` (default).  The
        batch path returns bitwise-identical results and falls back to the
        scalar loop automatically for configurations it cannot vectorize
        (cost overrides, exotic constraint types).
    batch_chunk_size:
        Number of candidate layouts scored per numpy batch.
    estimate_cache:
        Optional shared :class:`~repro.core.batch_eval.QueryEstimateCache`;
        lets the search reuse (and contribute to) the per-(query,
        signature) estimate table of a DOT run over the same estimator and
        workload.  Results are unchanged; the scalar path ignores it.
    workers:
        With ``workers > 1`` the search delegates to the sharded, pruned
        :class:`~repro.core.parallel_search.ParallelEnumerationEngine`
        (multiprocessing over the mixed-radix index range, branch-and-bound
        capacity/incumbent pruning).  Results stay bitwise identical to the
        serial batch path; configurations the batch evaluator cannot
        vectorize fall back to the serial paths as usual.
    prefix_depth, shards_per_worker:
        Tuning knobs forwarded to the parallel engine (subtree granularity
        of the pruning bounds and shard oversubscription); the defaults
        adapt to the space and worker count.
    deadline_s:
        Hard wall-clock budget for one :meth:`search` call.  All three
        execution paths honour it: the parallel engine aborts with a
        checkpointed partial result, the serial batch/scalar loops stop at
        the next chunk/layout boundary.  The returned result carries
        ``timed_out=True`` and is the exact best of what was enumerated.
    shard_max_retries, retry_backoff_s, shard_timeout_s, fault_plan:
        Fault-tolerance knobs forwarded to the parallel engine (bounded
        shard retry, dead-worker watchdog, chaos injection); see
        :class:`~repro.core.parallel_search.ParallelEnumerationEngine`.
    kernel:
        Chunk-scoring kernel for the batch paths: ``"numpy"`` (reference)
        or ``"compiled"`` (numba-jitted; falls back to numpy tolerance-free
        when numba is absent).  Both are bitwise identical -- see
        :mod:`repro.core.kernels`.
    schedule, steal_units, use_shared_memory:
        Raw-speed knobs forwarded to the parallel engine: dynamic
        work-stealing shard units vs the static split, the steal-unit
        count, and shared-memory estimate-table transport to workers.
    checkpoint_path:
        Persist the parallel engine's :class:`~repro.core.parallel_search.
        SearchProgress` to this file after every completed shard, and resume
        from it when the file already holds a valid checkpoint (a corrupt
        file is quarantined aside and the search starts over).  Only the
        ``workers > 1`` path checkpoints; the serial paths ignore it.
    """

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        estimator,
        constraint: Optional[PerformanceConstraint] = None,
        max_layouts: int = 500_000,
        per_group: bool = False,
        cost_override=None,
        pinned_objects: Sequence[DatabaseObject] = (),
        pinned_class: Optional[str] = None,
        batch: bool = True,
        batch_chunk_size: int = 4096,
        estimate_cache=None,
        workers: int = 1,
        prefix_depth: Optional[int] = None,
        shards_per_worker: int = 4,
        deadline_s: Optional[float] = None,
        shard_max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        shard_timeout_s: Optional[float] = None,
        fault_plan=None,
        kernel: str = "numpy",
        schedule: str = "steal",
        steal_units: Optional[int] = None,
        use_shared_memory: bool = True,
        checkpoint_path=None,
    ):
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.constraint = constraint
        self.max_layouts = max_layouts
        self.per_group = per_group
        self.pinned_objects = list(pinned_objects)
        self.pinned_class = pinned_class or system.cheapest().name
        self.batch = batch
        self.batch_chunk_size = batch_chunk_size
        self.estimate_cache = estimate_cache
        self.workers = max(1, int(workers))
        self.prefix_depth = prefix_depth
        self.shards_per_worker = shards_per_worker
        self.deadline_s = deadline_s
        self.shard_max_retries = shard_max_retries
        self.retry_backoff_s = retry_backoff_s
        self.shard_timeout_s = shard_timeout_s
        self.fault_plan = fault_plan
        self.kernel = kernel
        self.schedule = schedule
        self.steal_units = steal_units
        self.use_shared_memory = use_shared_memory
        self.checkpoint_path = checkpoint_path
        self.toc_model = TOCModel(estimator, cost_override=cost_override)
        self.checker = FeasibilityChecker(constraint)
        #: Batch-evaluation statistics of the last batch-path search (None
        #: when the scalar path ran).
        self.last_batch_stats = None

    # ------------------------------------------------------------------
    def search_space_size(self) -> int:
        """Number of layouts the search would enumerate."""
        class_count = len(self.system)
        if self.per_group:
            size = 1
            for group in group_objects(self.objects):
                size *= class_count ** len(group)
            return size
        return class_count ** len(self.objects)

    def _layouts(self):
        class_names = self.system.class_names
        all_objects = self.objects + self.pinned_objects
        pinned_assignment = {obj.name: self.pinned_class for obj in self.pinned_objects}
        if self.per_group:
            groups = group_objects(self.objects)
            per_group_choices = [
                list(itertools.product(class_names, repeat=len(group))) for group in groups
            ]
            for combo in itertools.product(*per_group_choices):
                assignment = dict(pinned_assignment)
                for group, placement in zip(groups, combo):
                    for member, class_name in zip(group.members, placement):
                        assignment[member.name] = class_name
                yield Layout(all_objects, self.system, assignment, name="ES candidate")
        else:
            names = [obj.name for obj in self.objects]
            for combo in itertools.product(class_names, repeat=len(names)):
                assignment = dict(pinned_assignment)
                assignment.update(zip(names, combo))
                yield Layout(all_objects, self.system, assignment, name="ES candidate")

    def _variable_objects(self) -> List[DatabaseObject]:
        """The enumerated objects in candidate-column order.

        Per-group enumeration is the product of per-group placement products,
        which flattens to a plain product over all members in group-by-group
        order -- so both modes reduce to one mixed-radix enumeration; only
        the column order differs (and with it the floating-point accumulation
        order the batch path must preserve).
        """
        if self.per_group:
            return [member for group in group_objects(self.objects) for member in group.members]
        return list(self.objects)

    # ------------------------------------------------------------------
    def search(self, workload, constraint: Optional[PerformanceConstraint] = None) -> ExhaustiveSearchResult:
        """Enumerate all layouts and return the cheapest feasible one."""
        space = self.search_space_size()
        active_constraint = constraint if constraint is not None else self.constraint
        checker = self.checker if constraint is None else FeasibilityChecker(constraint)
        self.last_batch_stats = None
        if self.batch and self.workers > 1:
            # The parallel engine treats max_layouts as a soft guard: sharding
            # plus pruning lift the enumeration ceiling to full-paper spaces.
            result = self._search_parallel(workload, active_constraint)
            if result is not None:
                return result
        if space > self.max_layouts:
            raise ConfigurationError(
                f"exhaustive search space has {space} layouts, exceeding the limit of "
                f"{self.max_layouts}; reduce the object set, raise max_layouts, or "
                f"use workers > 1"
            )
        if self.batch:
            result = self._search_batch(workload, active_constraint)
            if result is not None:
                return result
        return self._search_scalar(workload, checker)

    # ------------------------------------------------------------------
    def _build_evaluator(self, workload, constraint: Optional[PerformanceConstraint]):
        """Timed construction of the batch evaluator (None when unsupported).

        Construction (and any estimate-table warm-up the parallel path adds on
        top) is timed separately from the enumeration: the build cost depends
        on how warm a shared estimate cache already is, which would otherwise
        skew ES-vs-DOT search-time comparisons.
        """
        build_started = time.perf_counter()
        with trace.span("es.build") as span:
            evaluator = make_batch_evaluator(
                self._variable_objects(),
                self.system,
                self.estimator,
                workload,
                pinned=[(obj, self.pinned_class) for obj in self.pinned_objects],
                constraint=constraint,
                cache=self.estimate_cache,
                toc_model=self.toc_model,
                kernel=self.kernel,
            )
            if evaluator is None:
                span.set(vectorizable=False)
                return None
            with trace.span("es.kernel") as kernel_span:
                kernel_span.set(
                    requested=evaluator.kernel.requested,
                    backend=evaluator.kernel.name,
                    fallback=evaluator.kernel.fallback_reason,
                )
            evaluator.stats.build_s = time.perf_counter() - build_started
            span.set(build_s=evaluator.stats.build_s)
        return evaluator

    def _search_batch(
        self, workload, constraint: Optional[PerformanceConstraint]
    ) -> Optional[ExhaustiveSearchResult]:
        """Vectorized enumeration; returns None when unsupported."""
        evaluator = self._build_evaluator(workload, constraint)
        if evaluator is None:
            return None
        tracer = trace.get_tracer()
        span = tracer.start_span("es.enumerate", path="batch")
        started = time.perf_counter()
        deadline = (
            time.monotonic() + self.deadline_s if self.deadline_s is not None else None
        )
        variable_objects = evaluator.variable_objects

        best_toc = float("inf")
        best_row = None
        evaluated = 0
        timed_out = False
        incidents: List[str] = []
        for _, chunk in iter_assignment_chunks(
            len(variable_objects), len(self.system), self.batch_chunk_size
        ):
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                incidents.append(
                    f"deadline of {self.deadline_s}s expired after "
                    f"{evaluated} layouts; returning best-so-far"
                )
                break
            evaluation = evaluator.evaluate_chunk(chunk)
            evaluated += chunk.shape[0]
            index = evaluation.best_index
            if index is not None and evaluation.toc_cents[index] < best_toc:
                best_toc = float(evaluation.toc_cents[index])
                best_row = chunk[index].copy()
        self.last_batch_stats = evaluator.stats

        best_layout: Optional[Layout] = None
        best_report: Optional[TOCReport] = None
        if best_row is not None:
            all_objects = self.objects + self.pinned_objects
            best_layout = Layout(
                all_objects, self.system, evaluator.assignment_for_row(best_row), name="ES"
            )
            best_report = self.toc_model.evaluate(best_layout, workload, mode="estimate")
        elapsed = time.perf_counter() - started
        tracer.end_span(span, evaluated=evaluated, timed_out=timed_out)
        return ExhaustiveSearchResult(
            layout=best_layout,
            toc_report=best_report,
            feasible=best_layout is not None,
            evaluated_layouts=evaluated,
            elapsed_s=elapsed,
            timed_out=timed_out,
            incidents=incidents,
        )

    # ------------------------------------------------------------------
    def _search_parallel(
        self, workload, constraint: Optional[PerformanceConstraint]
    ) -> Optional[ExhaustiveSearchResult]:
        """Sharded, pruned multiprocessing enumeration; None when unsupported.

        The parent builds and fully warms one evaluator (timed as build cost),
        ships its spec -- estimator, workload, read-only estimate cache -- to
        the worker pool, and reduces the shards' ``(TOC, enumeration index)``
        bests, which reproduces the serial batch result bit for bit.
        """
        from repro.core.parallel_search import (
            EnumerationSpec,
            ParallelEnumerationEngine,
            SearchProgress,
        )

        evaluator = self._build_evaluator(workload, constraint)
        if evaluator is None:
            return None
        tracer = trace.get_tracer()
        warm_span = tracer.start_span("es.warm", workers=self.workers)
        warm_started = time.perf_counter()
        spec = EnumerationSpec(
            variable_objects=evaluator.variable_objects,
            system=self.system,
            estimator=self.estimator,
            workload=workload,
            pinned=[(obj, self.pinned_class) for obj in self.pinned_objects],
            constraint=constraint,
            cache=evaluator.cache,
            chunk_size=self.batch_chunk_size,
            kernel=self.kernel,
        )
        engine = ParallelEnumerationEngine.from_evaluator(
            evaluator,
            spec,
            workers=self.workers,
            prefix_depth=self.prefix_depth,
            shards_per_worker=self.shards_per_worker,
            deadline_s=self.deadline_s,
            shard_max_retries=self.shard_max_retries,
            retry_backoff_s=self.retry_backoff_s,
            shard_timeout_s=self.shard_timeout_s,
            fault_plan=self.fault_plan,
            schedule=self.schedule,
            steal_units=self.steal_units,
            use_shared_memory=self.use_shared_memory,
        )
        # Coordinator warm-up (the engine pre-estimates every signature) is
        # its own stats slice -- per-worker boot deltas (build/warm/attach)
        # arrive later through the shard outcomes; the stats object is
        # snapshotted before shard deltas replace it.
        stats = evaluator.stats
        stats.warm_s += time.perf_counter() - warm_started
        stats.workers = self.workers
        tracer.end_span(warm_span, build_s=stats.build_s, warm_s=stats.warm_s)

        span = tracer.start_span(
            "es.enumerate", path="parallel", workers=self.workers,
            shards=len(engine.shard_ranges()), prefix_depth=engine.prefix_depth,
        )
        started = time.perf_counter()
        timed_out = False
        resumed = (
            SearchProgress.load_or_quarantine(self.checkpoint_path)
            if self.checkpoint_path is not None
            else None
        )
        with engine:
            try:
                progress = engine.run(resumed, checkpoint_path=self.checkpoint_path)
            except SolverTimeoutError as exc:
                # Deadline abort: the partial progress travels with the
                # exception and its incumbent is the exact best of the
                # completed shards -- a degraded but honest result.
                if exc.progress is None:
                    raise
                progress = exc.progress
                timed_out = True
        stats.merge(progress.stats)
        self.last_batch_stats = stats

        best_layout: Optional[Layout] = None
        best_report: Optional[TOCReport] = None
        if progress.best_row is not None:
            all_objects = self.objects + self.pinned_objects
            row = np.array(progress.best_row, dtype=np.int64)
            best_layout = Layout(
                all_objects, self.system, evaluator.assignment_for_row(row), name="ES"
            )
            best_report = self.toc_model.evaluate(best_layout, workload, mode="estimate")
        elapsed = time.perf_counter() - started
        tracer.end_span(span, evaluated=progress.evaluated, timed_out=timed_out)
        return ExhaustiveSearchResult(
            layout=best_layout,
            toc_report=best_report,
            feasible=best_layout is not None,
            evaluated_layouts=progress.evaluated,
            elapsed_s=elapsed,
            timed_out=timed_out,
            incidents=list(progress.incidents),
        )

    # ------------------------------------------------------------------
    def _search_scalar(self, workload, checker: FeasibilityChecker) -> ExhaustiveSearchResult:
        """The original per-layout evaluation loop (reference path)."""
        tracer = trace.get_tracer()
        span = tracer.start_span("es.enumerate", path="scalar")
        started = time.perf_counter()
        deadline = (
            time.monotonic() + self.deadline_s if self.deadline_s is not None else None
        )

        best_layout: Optional[Layout] = None
        best_report: Optional[TOCReport] = None
        evaluated = 0
        timed_out = False
        incidents: List[str] = []
        for layout in self._layouts():
            if deadline is not None and time.monotonic() >= deadline:
                timed_out = True
                incidents.append(
                    f"deadline of {self.deadline_s}s expired after "
                    f"{evaluated} layouts; returning best-so-far"
                )
                break
            evaluated += 1
            # Cheap capacity pre-filter before spending an estimate.
            if not layout.satisfies_capacity():
                continue
            report = self.toc_model.evaluate(layout, workload, mode="estimate")
            check = checker.check(layout, report.run_result)
            if not check.feasible:
                continue
            if best_report is None or report.toc_cents < best_report.toc_cents:
                best_layout, best_report = layout, report

        elapsed = time.perf_counter() - started
        tracer.end_span(span, evaluated=evaluated, timed_out=timed_out)
        if best_layout is not None:
            best_layout = best_layout.renamed("ES")
            best_report = self.toc_model.report_from_result(
                best_layout, workload, best_report.run_result
            )
        return ExhaustiveSearchResult(
            layout=best_layout,
            toc_report=best_report,
            feasible=best_layout is not None,
            evaluated_layouts=evaluated,
            elapsed_s=elapsed,
            timed_out=timed_out,
            incidents=incidents,
        )
