"""Move enumeration and priority scores (paper Section 3.2-3.3, Procedure 2).

A *move* ``m(g, p)`` re-places a whole object group ``g`` onto the placement
tuple ``p``.  DOT enumerates every placement combination of every group,
scores each move by how much workload I/O time it adds per cent of layout
cost it saves, and applies the moves in ascending score order (cheapest
performance penalty per unit of saving first).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.layout import Layout
from repro.core.profiles import WorkloadProfileSet
from repro.exceptions import ProfileError
from repro.objects import ObjectGroup
from repro.storage.storage_class import StorageSystem

#: Score assigned to moves that save nothing (they sort last and are skipped
#: by the optimizer unless explicitly requested).
_ZERO_SAVING_SCORE = float("inf")


@dataclass(frozen=True)
class Move:
    """A candidate move of one object group to a placement tuple."""

    group: ObjectGroup
    placement: Tuple[str, ...]
    #: Workload I/O time added by the move relative to the initial layout (ms).
    time_penalty_ms: float = 0.0
    #: Layout cost saved by the move relative to the initial layout (cents/hour).
    cost_saving_cents_per_hour: float = 0.0

    @property
    def score(self) -> float:
        """Priority score ``sigma = delta_time / delta_cost`` (lower is better)."""
        if self.cost_saving_cents_per_hour <= 0:
            return _ZERO_SAVING_SCORE
        return self.time_penalty_ms / self.cost_saving_cents_per_hour

    @property
    def saves_cost(self) -> bool:
        """True if the move actually reduces the layout cost."""
        return self.cost_saving_cents_per_hour > 0

    def apply_to(self, layout: Layout) -> Layout:
        """Apply the move to a layout, returning the new layout ``m(L)``."""
        return layout.with_group_placement(self.group, self.placement)

    def describe(self) -> str:
        """Human readable one-liner used in optimizer traces."""
        placement = ", ".join(
            f"{member.name}->{class_name}"
            for member, class_name in zip(self.group.members, self.placement)
        )
        return (
            f"move[{self.group.key}] ({placement}) "
            f"penalty={self.time_penalty_ms:.1f} ms saving={self.cost_saving_cents_per_hour:.4f} c/h "
            f"score={self.score:.4g}"
        )


def group_cost_cents_per_hour(group: ObjectGroup, placement: Sequence[str],
                              system: StorageSystem) -> float:
    """Hourly storage cost of one group under a placement."""
    total = 0.0
    for member, class_name in zip(group.members, placement):
        total += system[class_name].storage_cost_cents_per_hour(member.size_gb)
    return total


def enumerate_moves(
    groups: Sequence[ObjectGroup],
    system: StorageSystem,
    profiles: WorkloadProfileSet,
    initial_class: Optional[str] = None,
    include_non_saving: bool = False,
) -> List[Move]:
    """Enumerate and sort all candidate moves (Procedure 2).

    Parameters
    ----------
    groups:
        The object groups ``G``.
    system:
        The storage system ``D`` with prices ``P``.
    profiles:
        Workload profiles ``X`` used to compute the performance penalty.
    initial_class:
        The storage class of the initial layout ``L_0`` (defaults to the most
        expensive class, as in the paper).
    include_non_saving:
        Keep moves whose cost saving is zero or negative (they sort last);
        by default they are dropped because applying them can only hurt.
    """
    initial = initial_class or system.most_expensive().name
    moves: List[Move] = []
    for group in groups:
        initial_placement = tuple([initial] * len(group))
        try:
            initial_time = profiles.io_time_share_ms(group, initial_placement)
        except ProfileError:
            initial_time = 0.0
        initial_cost = group_cost_cents_per_hour(group, initial_placement, system)

        for combo in itertools.product(system.class_names, repeat=len(group)):
            placement = tuple(combo)
            if placement == initial_placement:
                continue
            try:
                new_time = profiles.io_time_share_ms(group, placement)
            except ProfileError:
                new_time = initial_time
            new_cost = group_cost_cents_per_hour(group, placement, system)
            move = Move(
                group=group,
                placement=placement,
                time_penalty_ms=new_time - initial_time,
                cost_saving_cents_per_hour=initial_cost - new_cost,
            )
            if move.saves_cost or include_non_saving:
                moves.append(move)

    moves.sort(key=lambda move: (move.score, -move.cost_saving_cents_per_hour))
    return moves
