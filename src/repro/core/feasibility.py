"""Feasibility checking: capacity constraints plus SLA performance constraints.

The ``feasible({L_new, C}, {T', T})`` test of Procedure 1 has two parts: the
candidate layout must fit the storage capacities, and the workload's estimated
performance under it must satisfy the SLA.  This module wraps both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.layout import Layout
from repro.sla.constraints import (
    ConstraintCheck,
    PerformanceConstraint,
    ResponseTimeConstraint,
    ThroughputConstraint,
)


def constraint_signature(
    constraint: Optional[PerformanceConstraint],
) -> Optional[Tuple[str, object]]:
    """Classify a constraint for vectorized (batch) feasibility checking.

    Returns ``("none", None)``, ``("response_time", caps_ms_dict)`` or
    ``("throughput", floor_tpm)`` for the two concrete paper constraint
    types, and ``None`` for anything else -- including *subclasses* of the
    known types, whose overridden ``check`` could read arbitrary fields of
    the run result; callers seeing ``None`` must fall back to scalar
    checking.
    """
    if constraint is None:
        return ("none", None)
    if type(constraint) is ResponseTimeConstraint:
        return ("response_time", dict(constraint.caps_ms))
    if type(constraint) is ThroughputConstraint:
        return ("throughput", constraint.min_transactions_per_minute)
    return None


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of checking one layout against capacity and SLA constraints."""

    capacity_ok: bool
    performance_ok: bool
    capacity_violations: Dict[str, Tuple[float, float]]
    performance_check: Optional[ConstraintCheck]

    @property
    def feasible(self) -> bool:
        """True when both capacity and performance constraints hold."""
        return self.capacity_ok and self.performance_ok

    def describe(self) -> str:
        """One-line summary for optimizer traces."""
        parts = []
        if self.capacity_ok:
            parts.append("capacity ok")
        else:
            worst = ", ".join(
                f"{name} {used:.1f}/{cap:.1f} GB"
                for name, (used, cap) in self.capacity_violations.items()
            )
            parts.append(f"capacity violated ({worst})")
        if self.performance_check is None:
            parts.append("no SLA")
        elif self.performance_ok:
            parts.append("SLA ok")
        else:
            parts.append(f"SLA violated ({self.performance_check.detail})")
        return "; ".join(parts)


class FeasibilityChecker:
    """Checks layouts against capacity constraints and an optional SLA."""

    def __init__(self, constraint: Optional[PerformanceConstraint] = None):
        self.constraint = constraint

    def check_capacity(self, layout: Layout) -> FeasibilityResult:
        """Capacity-only check (used before any workload estimate exists)."""
        violations = layout.capacity_violations()
        return FeasibilityResult(
            capacity_ok=not violations,
            performance_ok=True,
            capacity_violations=violations,
            performance_check=None,
        )

    def check(self, layout: Layout, run_result=None) -> FeasibilityResult:
        """Full check of a layout given a workload estimate/run for it."""
        violations = layout.capacity_violations()
        performance_check: Optional[ConstraintCheck] = None
        performance_ok = True
        if self.constraint is not None and run_result is not None:
            performance_check = self.constraint.check(run_result)
            performance_ok = performance_check.satisfied
        return FeasibilityResult(
            capacity_ok=not violations,
            performance_ok=performance_ok,
            capacity_violations=violations,
            performance_check=performance_check,
        )

    def with_constraint(self, constraint: Optional[PerformanceConstraint]) -> "FeasibilityChecker":
        """A copy of the checker with a different performance constraint."""
        return FeasibilityChecker(constraint)
