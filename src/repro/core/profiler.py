"""The profiling phase of DOT (paper Section 3.4, Figure 2).

The profiler runs (or estimates) the workload on a small set of *baseline
layouts* and records the per-object I/O counts.  Two modes mirror the paper:

* ``"estimate"`` -- the extended query optimizer predicts the I/O counts
  without executing anything (used for the TPC-H experiments, Section 4.4);
* ``"testrun"`` -- a short simulated test run provides actual I/O statistics
  (used for the TPC-C experiments, Section 4.5.1, where a single baseline
  layout suffices because the plans never change).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.layout import Layout
from repro.core.profiles import (
    BaselinePlacement,
    WorkloadProfileSet,
    baseline_placements,
    placement_for_group,
)
from repro.exceptions import ProfileError
from repro.objects import DatabaseObject, ObjectGroup, group_objects
from repro.storage.storage_class import StorageSystem


class WorkloadProfiler:
    """Produces :class:`WorkloadProfileSet` instances from baseline layouts.

    Parameters
    ----------
    objects:
        The placeable database objects.
    system:
        The storage system (the baseline layouts enumerate its classes).
    estimator:
        A workload estimator exposing ``estimate_workload(workload, placement)``
        and ``run_workload(workload, placement)`` (duck-typed; normally a
        :class:`repro.dbms.executor.WorkloadEstimator`).
    """

    def __init__(self, objects: Sequence[DatabaseObject], system: StorageSystem, estimator):
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.groups: List[ObjectGroup] = group_objects(self.objects)

    # ------------------------------------------------------------------
    @property
    def max_group_size(self) -> int:
        """The largest object-group size ``K`` (determines the ``M^K`` baselines)."""
        return max(len(group) for group in self.groups)

    def baseline_layout(self, pattern: BaselinePlacement, name: Optional[str] = None) -> Layout:
        """Build the baseline layout ``L(p)``: member k of every group goes to ``p[k]``."""
        assignment = {}
        for group in self.groups:
            placement = placement_for_group(pattern, group)
            for member, class_name in zip(group.members, placement):
                assignment[member.name] = class_name
        return Layout(
            self.objects,
            self.system,
            assignment,
            name=name or f"baseline{tuple(pattern)!r}",
        )

    def baseline_patterns(self, max_group_size: Optional[int] = None) -> List[BaselinePlacement]:
        """The ``M^K`` baseline placement patterns to profile."""
        size = max_group_size if max_group_size is not None else self.max_group_size
        return baseline_placements(self.system, size)

    # ------------------------------------------------------------------
    def profile(
        self,
        workload,
        mode: str = "estimate",
        patterns: Optional[Sequence[BaselinePlacement]] = None,
        max_group_size: Optional[int] = None,
    ) -> WorkloadProfileSet:
        """Profile the workload over baseline layouts.

        ``patterns`` overrides the default ``M^K`` enumeration; passing a
        single pattern reproduces the paper's pruned TPC-C profiling where
        one baseline layout is enough.
        """
        if mode not in ("estimate", "testrun"):
            raise ProfileError(f"unknown profiling mode {mode!r}")
        chosen = (
            [tuple(pattern) for pattern in patterns]
            if patterns is not None
            else self.baseline_patterns(max_group_size)
        )
        if not chosen:
            raise ProfileError("no baseline placement patterns to profile")

        profile_set = WorkloadProfileSet(
            system=self.system, concurrency=getattr(workload, "concurrency", 1)
        )
        runner = (
            self.estimator.estimate_workload if mode == "estimate" else self.estimator.run_workload
        )
        for pattern in chosen:
            layout = self.baseline_layout(pattern)
            result = runner(workload, layout.placement())
            profile_set.add(pattern, result.io_by_object)
        return profile_set

    def single_baseline_pattern(self, class_name: Optional[str] = None) -> BaselinePlacement:
        """A single baseline pattern placing everything on one class.

        Defaults to the most expensive class (All H-SSD in the paper's
        TPC-C profiling).
        """
        chosen = class_name or self.system.most_expensive().name
        return tuple([chosen] * self.max_group_size)
