"""The profiling phase of DOT (paper Section 3.4, Figure 2).

The profiler runs (or estimates) the workload on a small set of *baseline
layouts* and records the per-object I/O counts.  Two modes mirror the paper:

* ``"estimate"`` -- the extended query optimizer predicts the I/O counts
  without executing anything (used for the TPC-H experiments, Section 4.4);
* ``"testrun"`` -- a short simulated test run provides actual I/O statistics
  (used for the TPC-C experiments, Section 4.5.1, where a single baseline
  layout suffices because the plans never change).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.batch_eval import (
    QueryEstimateCache,
    UnsupportedBatchEvaluation,
    _adopt_cache,
    _replay_mix,
)
from repro.core.layout import Layout
from repro.core.profiles import (
    BaselinePlacement,
    WorkloadProfileSet,
    baseline_placements,
    placement_for_group,
)
from repro.dbms.plan import merge_io_counts
from repro.exceptions import ProfileError
from repro.objects import DatabaseObject, ObjectGroup, group_objects
from repro.storage.storage_class import StorageSystem


class WorkloadProfiler:
    """Produces :class:`WorkloadProfileSet` instances from baseline layouts.

    Parameters
    ----------
    objects:
        The placeable database objects.
    system:
        The storage system (the baseline layouts enumerate its classes).
    estimator:
        A workload estimator exposing ``estimate_workload(workload, placement)``
        and ``run_workload(workload, placement)`` (duck-typed; normally a
        :class:`repro.dbms.executor.WorkloadEstimator`).
    estimate_cache:
        Optional shared :class:`~repro.core.batch_eval.QueryEstimateCache`.
        Estimate-mode profiling resolves per-query estimates through it, so
        the ``M^K`` baseline enumeration re-estimates a query only when its
        touched-placement signature is new -- and an optimizer/search sharing
        the cache starts with every baseline estimate already in its table.
    """

    def __init__(self, objects: Sequence[DatabaseObject], system: StorageSystem, estimator,
                 estimate_cache: Optional[QueryEstimateCache] = None):
        self.objects = list(objects)
        self.system = system
        self.estimator = estimator
        self.estimate_cache = estimate_cache
        self.groups: List[ObjectGroup] = group_objects(self.objects)

    # ------------------------------------------------------------------
    @property
    def max_group_size(self) -> int:
        """The largest object-group size ``K`` (determines the ``M^K`` baselines)."""
        return max(len(group) for group in self.groups)

    def baseline_layout(self, pattern: BaselinePlacement, name: Optional[str] = None) -> Layout:
        """Build the baseline layout ``L(p)``: member k of every group goes to ``p[k]``."""
        assignment = {}
        for group in self.groups:
            placement = placement_for_group(pattern, group)
            for member, class_name in zip(group.members, placement):
                assignment[member.name] = class_name
        return Layout(
            self.objects,
            self.system,
            assignment,
            name=name or f"baseline{tuple(pattern)!r}",
        )

    def baseline_patterns(self, max_group_size: Optional[int] = None) -> List[BaselinePlacement]:
        """The ``M^K`` baseline placement patterns to profile."""
        size = max_group_size if max_group_size is not None else self.max_group_size
        return baseline_placements(self.system, size)

    # ------------------------------------------------------------------
    def profile(
        self,
        workload,
        mode: str = "estimate",
        patterns: Optional[Sequence[BaselinePlacement]] = None,
        max_group_size: Optional[int] = None,
        fast: bool = True,
    ) -> WorkloadProfileSet:
        """Profile the workload over baseline layouts.

        ``patterns`` overrides the default ``M^K`` enumeration; passing a
        single pattern reproduces the paper's pruned TPC-C profiling where
        one baseline layout is enough.

        Estimate-mode profiling goes through the per-(query,
        touched-placement-signature) estimate tables of
        :mod:`repro.core.batch_eval` by default: baseline patterns that a
        query cannot distinguish (its signature objects land on the same
        classes) share one optimizer estimate, and the per-object I/O counts
        are re-accumulated from the cached executions in the scalar
        estimator's exact merge order -- the resulting profiles are bitwise
        identical.  ``fast=False`` forces the scalar reference path; test
        runs always take it (their noise and buffer state are stateful).
        """
        if mode not in ("estimate", "testrun"):
            raise ProfileError(f"unknown profiling mode {mode!r}")
        chosen = (
            [tuple(pattern) for pattern in patterns]
            if patterns is not None
            else self.baseline_patterns(max_group_size)
        )
        if not chosen:
            raise ProfileError("no baseline placement patterns to profile")

        profile_set = WorkloadProfileSet(
            system=self.system, concurrency=getattr(workload, "concurrency", 1)
        )
        if mode == "estimate" and fast:
            try:
                return self._profile_estimate_fast(workload, chosen, profile_set)
            except UnsupportedBatchEvaluation:
                pass
        runner = (
            self.estimator.estimate_workload if mode == "estimate" else self.estimator.run_workload
        )
        for pattern in chosen:
            layout = self.baseline_layout(pattern)
            result = runner(workload, layout.placement())
            profile_set.add(pattern, result.io_by_object)
        return profile_set

    def _profile_estimate_fast(
        self,
        workload,
        chosen: Sequence[BaselinePlacement],
        profile_set: WorkloadProfileSet,
    ) -> WorkloadProfileSet:
        """Estimate-mode profiling through the shared estimate tables.

        Replays ``WorkloadEstimator._run_stream`` / ``_run_mix``'s I/O
        accumulation (same per-query order, same dict-merge order) from
        cached :class:`~repro.dbms.executor.ExecutionResult`s, so each
        distinct (query, signature) pair is estimated once across all
        baseline patterns instead of once per pattern.
        """
        kind = getattr(workload, "kind", "dss")
        if kind not in ("dss", "oltp"):
            raise UnsupportedBatchEvaluation(f"unsupported workload kind {kind!r}")
        concurrency = getattr(workload, "concurrency", 1)
        cache = _adopt_cache(self.estimate_cache, self.estimator, concurrency)
        if kind == "oltp":
            mix = list(workload.transaction_mix)
            total_weight = sum(weight for _, weight in mix)
            if total_weight <= 0:
                raise UnsupportedBatchEvaluation(
                    "transaction mix weights must sum to a positive value"
                )
        for pattern in chosen:
            placement = self.baseline_layout(pattern).placement()
            if kind == "oltp":
                io_by_object, _, _, _ = _replay_mix(
                    mix, total_weight, lambda query: cache.get(query, placement)
                )
            else:
                io_by_object = {}
                for query in workload.queries:
                    merge_io_counts(io_by_object, cache.get(query, placement).io_counts)
            profile_set.add(pattern, io_by_object)
        return profile_set

    def single_baseline_pattern(self, class_name: Optional[str] = None) -> BaselinePlacement:
        """A single baseline pattern placing everything on one class.

        Defaults to the most expensive class (All H-SSD in the paper's
        TPC-C profiling).
        """
        chosen = class_name or self.system.most_expensive().name
        return tuple([chosen] * self.max_group_size)
