"""Workload profiles over baseline layouts (paper Section 3.4).

A workload profile records, for one *baseline placement pattern* ``p``, how
many I/Os of each type the workload performs against every object:
``chi_r^p[o]``.  Baseline placements follow the paper's ``L(i, j)`` scheme --
the k-th member of every object group (table first, then its indexes) is
placed on the k-th storage class of the pattern -- so ``M^K`` profiles cover
all within-group placement combinations while assuming independence across
groups.

The profiles feed the priority score of Section 3.3: the I/O time share of a
group under a placement (Eq. 1) is the sum over its members and I/O types of
``chi * tau``, where ``tau`` is the per-I/O service time of the member's
storage class.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ProfileError
from repro.objects import ObjectGroup
from repro.storage.io_profile import IOType
from repro.storage.storage_class import StorageSystem

#: A baseline placement pattern: storage-class names by group-member position.
BaselinePlacement = Tuple[str, ...]

#: Per-object, per-I/O-type counts.
ObjectIOProfile = Dict[str, Dict[IOType, float]]


def baseline_placements(system: StorageSystem, group_size: int) -> List[BaselinePlacement]:
    """All ``M^K`` baseline placement patterns for groups of size ``group_size``."""
    if group_size < 1:
        raise ProfileError("group size must be >= 1")
    return [tuple(combo) for combo in itertools.product(system.class_names, repeat=group_size)]


def placement_for_group(pattern: BaselinePlacement, group: ObjectGroup) -> BaselinePlacement:
    """Project a baseline pattern onto one group.

    Groups smaller than the pattern take its prefix; groups larger repeat the
    final class for the remaining members (only relevant when a group has
    more indexes than the profiled maximum).
    """
    placement = []
    for position in range(len(group.members)):
        if position < len(pattern):
            placement.append(pattern[position])
        else:
            placement.append(pattern[-1])
    return tuple(placement)


@dataclass
class WorkloadProfileSet:
    """The set of workload profiles ``X = {chi_r^p[o]}`` keyed by baseline pattern."""

    system: StorageSystem
    concurrency: int = 1
    profiles: Dict[BaselinePlacement, ObjectIOProfile] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, pattern: BaselinePlacement, io_counts: Mapping[str, Mapping[IOType, float]]) -> None:
        """Record the I/O counts observed/estimated under one baseline pattern."""
        self.profiles[tuple(pattern)] = {
            object_name: dict(by_type) for object_name, by_type in io_counts.items()
        }

    @property
    def patterns(self) -> Tuple[BaselinePlacement, ...]:
        """The profiled baseline patterns."""
        return tuple(self.profiles)

    def io_counts(self, pattern: BaselinePlacement, object_name: str) -> Dict[IOType, float]:
        """``chi_r^p[o]`` for one object under one baseline pattern."""
        profile = self._lookup(pattern)
        return dict(profile.get(object_name, {}))

    def profile_for(self, pattern: BaselinePlacement) -> ObjectIOProfile:
        """The full per-object I/O profile for one placement pattern.

        Resolves the pattern with the same prefix/fallback rules as every
        other accessor and returns the *internal* profile dict (read-only by
        convention); batch coefficient builders use it to avoid one lookup
        per (object, pattern) pair.
        """
        return self._lookup(pattern)

    def _lookup(self, pattern: BaselinePlacement) -> ObjectIOProfile:
        key = tuple(pattern)
        if key in self.profiles:
            return self.profiles[key]
        # Fall back to the closest shorter/longer pattern: a profile keyed by
        # a prefix of the requested pattern (used when a single baseline was
        # profiled, as in the paper's TPC-C experiment).
        for candidate, profile in self.profiles.items():
            if candidate == key[: len(candidate)] or key == candidate[: len(key)]:
                return profile
        if len(self.profiles) == 1:
            return next(iter(self.profiles.values()))
        raise ProfileError(f"no workload profile recorded for placement pattern {pattern!r}")

    # ------------------------------------------------------------------
    def io_time_share_ms(self, group: ObjectGroup, placement: Sequence[str]) -> float:
        """The I/O time share ``T^p[g]`` of Eq. 1 for a group under a placement.

        The profile used is the one measured with this placement pattern
        (object interactions within the group are therefore honoured); the
        service time of each member comes from the storage class the
        placement assigns to it.
        """
        placement = tuple(placement)
        if len(placement) != len(group.members):
            raise ProfileError(
                f"placement of length {len(placement)} does not match group {group.key!r} "
                f"of size {len(group)}"
            )
        profile = self._lookup(placement)
        total_ms = 0.0
        for member, class_name in zip(group.members, placement):
            storage_class = self.system[class_name]
            by_type = profile.get(member.name, {})
            for io_type, count in by_type.items():
                total_ms += count * storage_class.service_time_ms(io_type, self.concurrency)
        return total_ms

    def object_io_time_ms(self, object_name: str, pattern: BaselinePlacement,
                          class_name: str) -> float:
        """I/O time of one object under a pattern if it were stored on ``class_name``."""
        storage_class = self.system[class_name]
        total_ms = 0.0
        for io_type, count in self.io_counts(pattern, object_name).items():
            total_ms += count * storage_class.service_time_ms(io_type, self.concurrency)
        return total_ms

    def objects_profiled(self) -> Tuple[str, ...]:
        """All object names appearing in any profile."""
        names: List[str] = []
        for profile in self.profiles.values():
            for object_name in profile:
                if object_name not in names:
                    names.append(object_name)
        return tuple(names)
