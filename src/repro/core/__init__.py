"""The paper's contribution: TOC-minimising data placement (DOT) and baselines.

This package implements everything in Sections 2, 3 and 5 of the paper:

* the layout / capacity / cost model (:mod:`repro.core.layout`,
  :mod:`repro.core.toc`),
* workload profiles over baseline layouts (:mod:`repro.core.profiles`,
  :mod:`repro.core.profiler`),
* the DOT heuristic itself -- move enumeration with priority scores and the
  greedy optimization walk (:mod:`repro.core.moves`, :mod:`repro.core.dot`),
* the evaluated baselines: simple layouts, the Object Advisor, and exhaustive
  search (:mod:`repro.core.simple_layouts`, :mod:`repro.core.object_advisor`,
  :mod:`repro.core.exhaustive`, with the sharded/pruned parallel enumeration
  engine in :mod:`repro.core.parallel_search`),
* the extensions of Section 5: the generalized provisioning problem and the
  discrete-sized storage cost model, plus a MILP reference formulation,
* the uniform solver layer: :class:`~repro.core.context.EvaluationContext`
  (shared problem state: system, workload, TOC model, constraint, estimate
  cache) and the ``Solver.solve(context) -> SolveResult`` protocol that all
  four solvers -- DOT, ES, MILP, Object Advisor -- implement
  (:mod:`repro.core.context`, :mod:`repro.core.solver`).
"""

from repro.objects import DatabaseObject, ObjectGroup, ObjectKind, group_objects
from repro.core.batch_eval import (
    BatchEvalStats,
    BatchLayoutEvaluator,
    IncrementalWorkloadEvaluator,
    QueryEstimateCache,
    UnsupportedBatchEvaluation,
    iter_assignment_chunks,
)
from repro.core.context import (
    EvaluationContext,
    make_batch_evaluator,
    make_incremental_evaluator,
)
from repro.core.kernels import HAVE_NUMBA, Kernel, describe_kernels, get_kernel
from repro.core.layout import Layout
from repro.core.toc import TOCModel, TOCReport
from repro.core.profiles import BaselinePlacement, WorkloadProfileSet
from repro.core.profiler import WorkloadProfiler
from repro.core.moves import Move, enumerate_moves
from repro.core.feasibility import FeasibilityChecker, FeasibilityResult
from repro.core.dot import DOTOptimizer, DOTResult
from repro.core.exhaustive import ExhaustiveSearch, ExhaustiveSearchResult
from repro.core.parallel_search import (
    EnumerationSpec,
    ParallelEnumerationEngine,
    SearchProgress,
)
from repro.core.shm_tables import SharedEstimateTables
from repro.core.object_advisor import ObjectAdvisor
from repro.core.simple_layouts import all_on, index_data_split, simple_layouts
from repro.core.ilp import MILPPlacement, MILPResult
from repro.core.solver import (
    SOLVERS,
    DOTSolver,
    ExhaustiveSolver,
    FallbackSolver,
    MILPSolver,
    ObjectAdvisorSolver,
    SolveResult,
    SolveStats,
    Solver,
    get_solver,
    register_solver,
    solver_names,
)
from repro.core.discrete_cost import DiscreteCostModel
from repro.core.provisioning import GeneralizedProvisioner, ProvisioningOption
from repro.core.advisor import ProvisioningAdvisor, Recommendation

__all__ = [
    "DatabaseObject",
    "ObjectGroup",
    "ObjectKind",
    "group_objects",
    "BatchEvalStats",
    "BatchLayoutEvaluator",
    "IncrementalWorkloadEvaluator",
    "QueryEstimateCache",
    "UnsupportedBatchEvaluation",
    "iter_assignment_chunks",
    "EvaluationContext",
    "make_batch_evaluator",
    "make_incremental_evaluator",
    "Solver",
    "SolveResult",
    "SolveStats",
    "SOLVERS",
    "DOTSolver",
    "ExhaustiveSolver",
    "FallbackSolver",
    "MILPSolver",
    "ObjectAdvisorSolver",
    "get_solver",
    "register_solver",
    "solver_names",
    "Layout",
    "TOCModel",
    "TOCReport",
    "BaselinePlacement",
    "WorkloadProfileSet",
    "WorkloadProfiler",
    "Move",
    "enumerate_moves",
    "FeasibilityChecker",
    "FeasibilityResult",
    "DOTOptimizer",
    "DOTResult",
    "ExhaustiveSearch",
    "ExhaustiveSearchResult",
    "EnumerationSpec",
    "ParallelEnumerationEngine",
    "SearchProgress",
    "SharedEstimateTables",
    "HAVE_NUMBA",
    "Kernel",
    "describe_kernels",
    "get_kernel",
    "ObjectAdvisor",
    "all_on",
    "index_data_split",
    "simple_layouts",
    "MILPPlacement",
    "MILPResult",
    "DiscreteCostModel",
    "GeneralizedProvisioner",
    "ProvisioningOption",
    "ProvisioningAdvisor",
    "Recommendation",
]
