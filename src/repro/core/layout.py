"""Data layouts: the mapping from database objects to storage classes.

A layout ``L`` assigns every object to exactly one storage class (paper
Section 2.2).  The layout knows how to compute the space it uses on each
class, whether it satisfies the capacity constraints, and its hourly storage
cost ``C(L) = sum_j p_j * S_j`` (Section 2.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import CapacityError, ConfigurationError, UnknownObjectError, UnknownStorageClassError
from repro.objects import DatabaseObject, ObjectGroup, objects_by_name
from repro.storage.storage_class import StorageClass, StorageSystem


class Layout:
    """An assignment of database objects to storage classes.

    Layouts are value-like: mutating operations (:meth:`assign`,
    :meth:`with_assignment`, :meth:`with_group_placement`) return new layouts
    and never modify the original, which keeps DOT's search loop free of
    aliasing surprises.
    """

    def __init__(
        self,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        assignment: Mapping[str, str],
        name: str = "layout",
    ):
        self._objects = objects_by_name(objects)
        self.system = system
        self.name = name
        missing = [obj_name for obj_name in self._objects if obj_name not in assignment]
        if missing:
            raise ConfigurationError(f"layout {name!r} misses assignments for {sorted(missing)}")
        unknown_objects = [obj_name for obj_name in assignment if obj_name not in self._objects]
        if unknown_objects:
            raise UnknownObjectError(sorted(unknown_objects)[0])
        self._assignment: Dict[str, str] = {}
        for obj_name, class_name in assignment.items():
            if class_name not in system:
                raise UnknownStorageClassError(class_name)
            self._assignment[obj_name] = class_name
        # Layouts are immutable, so the object -> StorageClass mapping the
        # DBMS cost model consumes can be built once and shared; DOT and the
        # batch evaluators call placement() on every candidate evaluation.
        self._placement: Optional[Dict[str, StorageClass]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        objects: Sequence[DatabaseObject],
        system: StorageSystem,
        class_name: str,
        name: Optional[str] = None,
    ) -> "Layout":
        """Place every object on one storage class (the "All X" layouts)."""
        assignment = {obj.name: class_name for obj in objects}
        return cls(objects, system, assignment, name=name or f"All {class_name}")

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def objects(self) -> Tuple[DatabaseObject, ...]:
        """The placed objects."""
        return tuple(self._objects.values())

    @property
    def object_names(self) -> Tuple[str, ...]:
        """Names of the placed objects."""
        return tuple(self._objects)

    def storage_class_of(self, object_name: str) -> StorageClass:
        """The storage class an object is assigned to."""
        try:
            class_name = self._assignment[object_name]
        except KeyError:
            raise UnknownObjectError(object_name) from None
        return self.system[class_name]

    def class_name_of(self, object_name: str) -> str:
        """The storage class *name* an object is assigned to."""
        try:
            return self._assignment[object_name]
        except KeyError:
            raise UnknownObjectError(object_name) from None

    def assignment(self) -> Dict[str, str]:
        """A copy of the raw object -> class-name mapping."""
        return dict(self._assignment)

    def placement(self) -> Dict[str, StorageClass]:
        """The object -> StorageClass mapping consumed by the DBMS cost model.

        The mapping is computed once and cached (layouts are immutable), so
        repeated calls return the same dict object; treat it as read-only.
        """
        if self._placement is None:
            self._placement = {
                obj_name: self.system[class_name]
                for obj_name, class_name in self._assignment.items()
            }
        return self._placement

    def objects_on(self, class_name: str) -> List[DatabaseObject]:
        """All objects assigned to one storage class (the paper's ``O_j``)."""
        if class_name not in self.system:
            raise UnknownStorageClassError(class_name)
        return [
            self._objects[obj_name]
            for obj_name, assigned in self._assignment.items()
            if assigned == class_name
        ]

    # ------------------------------------------------------------------
    # Space and cost
    # ------------------------------------------------------------------
    def space_used_gb(self) -> Dict[str, float]:
        """Space used on each storage class (the paper's ``S_j``), in GB."""
        used = {class_name: 0.0 for class_name in self.system.class_names}
        for obj_name, class_name in self._assignment.items():
            used[class_name] += self._objects[obj_name].size_gb
        return used

    def storage_cost_cents_per_hour(self) -> float:
        """The layout cost ``C(L) = sum_j p_j * S_j`` in cents per hour."""
        total = 0.0
        for class_name, used_gb in self.space_used_gb().items():
            total += self.system[class_name].storage_cost_cents_per_hour(used_gb)
        return total

    def capacity_violations(self) -> Dict[str, Tuple[float, float]]:
        """Classes over capacity: ``{class: (used_gb, capacity_gb)}``."""
        violations = {}
        for class_name, used_gb in self.space_used_gb().items():
            capacity = self.system[class_name].capacity_gb
            if used_gb > capacity:
                violations[class_name] = (used_gb, capacity)
        return violations

    def excess_gb(self) -> float:
        """Total gigabytes by which capacity constraints are exceeded."""
        return sum(used - cap for used, cap in self.capacity_violations().values())

    def satisfies_capacity(self) -> bool:
        """True if every storage class holds no more than its capacity."""
        return not self.capacity_violations()

    def validate_capacity(self) -> None:
        """Raise :class:`CapacityError` for the first violated storage class."""
        for class_name, (used_gb, capacity_gb) in self.capacity_violations().items():
            raise CapacityError(class_name, used_gb, capacity_gb)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def with_assignment(self, object_name: str, class_name: str,
                        name: Optional[str] = None) -> "Layout":
        """Return a new layout with one object moved to a different class."""
        if object_name not in self._objects:
            raise UnknownObjectError(object_name)
        if class_name not in self.system:
            raise UnknownStorageClassError(class_name)
        assignment = dict(self._assignment)
        assignment[object_name] = class_name
        return Layout(self.objects, self.system, assignment, name=name or self.name)

    def with_group_placement(self, group: ObjectGroup, placement: Sequence[str],
                             name: Optional[str] = None) -> "Layout":
        """Return a new layout with a whole object group re-placed.

        ``placement`` is a tuple of storage-class names parallel to
        ``group.members`` -- the paper's ``m(g, p)`` move application.
        """
        if len(placement) != len(group.members):
            raise ConfigurationError(
                f"placement of length {len(placement)} does not match group of size {len(group)}"
            )
        assignment = dict(self._assignment)
        for member, class_name in zip(group.members, placement):
            if member.name not in self._objects:
                raise UnknownObjectError(member.name)
            if class_name not in self.system:
                raise UnknownStorageClassError(class_name)
            assignment[member.name] = class_name
        return Layout(self.objects, self.system, assignment, name=name or self.name)

    def renamed(self, name: str) -> "Layout":
        """Return a copy of the layout with a different display name."""
        return Layout(self.objects, self.system, self._assignment, name=name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def group_placement(self, group: ObjectGroup) -> Tuple[str, ...]:
        """The current placement tuple of an object group."""
        return tuple(self.class_name_of(member.name) for member in group.members)

    def describe(self) -> str:
        """Multi-line description: objects per storage class with sizes."""
        lines = [f"Layout {self.name!r} ({self.storage_cost_cents_per_hour():.4f} cents/hour)"]
        for class_name in self.system.class_names:
            members = self.objects_on(class_name)
            used = sum(obj.size_gb for obj in members)
            capacity = self.system[class_name].capacity_gb
            lines.append(f"  {class_name}: {used:.2f}/{capacity:.0f} GB")
            for obj in sorted(members, key=lambda o: -o.size_gb):
                lines.append(f"    {obj.name:<24s} {obj.size_gb:8.2f} GB ({obj.kind.value})")
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Layout):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._assignment.items())))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Layout({self.name!r}, {len(self._objects)} objects)"
